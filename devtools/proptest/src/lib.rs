//! Offline stand-in for the crates.io `proptest` crate.
//!
//! This build environment has no network access, so the workspace vendors
//! the small API subset its property tests use: the [`Strategy`] trait over
//! ranges, tuples, `Just`, `any::<bool>()`, mapped and union strategies, the
//! `proptest::collection` generators, and the `proptest!` / `prop_assert*` /
//! `prop_oneof!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * no shrinking — a failing case panics with the generated inputs left to
//!   the assertion message;
//! * the case count is fixed (64) and the RNG seed derives from the test
//!   name, so failures are reproducible run-to-run.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values — the object-safe core of proptest's trait.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Rounding in start + u*(end-start) can land exactly on the
        // exclusive end; fold that case back onto start.
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything" strategy (only what the workspace uses).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection generators (`proptest::collection::{vec, btree_map, btree_set}`).
pub mod collection {
    use super::*;

    /// Vec of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeMap with ~`size` entries (key collisions may shrink it).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            let mut map = BTreeMap::new();
            // Draw extra candidates so collisions rarely land below the
            // requested minimum.
            for _ in 0..n.saturating_mul(2) {
                if map.len() >= n {
                    break;
                }
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// BTreeSet with ~`size` entries (collisions may shrink it).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.generate(rng);
            let mut set = BTreeSet::new();
            for _ in 0..n.saturating_mul(2) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test body runs 64 times with fresh draws from a name-seeded RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..64u32 {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #[test]
        fn macro_generates_collections(v in crate::collection::vec(0u32..10, 1..5),
                                       m in crate::collection::btree_map(0u32..50, 0u64..9, 1..4)) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(!m.is_empty() && m.len() < 4);
        }
    }
}
