//! Validates a tashkent JSONL trace artifact.
//!
//! Checks, per line: well-formed JSON (a minimal hand-rolled parser — this
//! workspace has no network access, so no serde), an object at the top
//! level, a known `"k"` kind tag, and a non-negative integer `"t"`
//! timestamp on every event line. The final line must be the
//! `{"k":"summary",...}` trailer; with `--require-zero-drops` its
//! `dropped` count must be 0 (CI's trace-smoke gate).
//!
//! ```sh
//! tracecheck [--require-zero-drops] <trace.jsonl>
//! ```
//!
//! Exit status 0 on success; 1 with a diagnostic on the first violation.

use std::process::ExitCode;

/// Event kinds the cluster's tracer emits (`crates/cluster/src/trace.rs`
/// `KIND_NAMES`), plus the `summary` trailer.
const KNOWN_KINDS: [&str; 18] = [
    "arrive",
    "dispatch",
    "step",
    "certify",
    "complete",
    "gaveup",
    "util",
    "fault",
    "lb",
    "rebalance",
    "backfill_chunk",
    "backfill_done",
    "suspect",
    "unsuspect",
    "heartbeat_miss",
    "redo_start",
    "redo_done",
    "summary",
];

/// A parsed JSON value (only the shapes the trace schema uses).
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Minimal strict JSON parser over one line.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-UTF-8 \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Validates one line; returns the kind tag on success.
fn check_line(line: &str) -> Result<String, String> {
    let v = Parser::new(line).parse()?;
    if !matches!(v, Json::Obj(_)) {
        return Err("top level is not an object".to_string());
    }
    let kind = match v.get("k") {
        Some(Json::Str(k)) => k.clone(),
        Some(_) => return Err("\"k\" is not a string".to_string()),
        None => return Err("missing \"k\" kind tag".to_string()),
    };
    if !KNOWN_KINDS.contains(&kind.as_str()) {
        return Err(format!("unknown kind {kind:?}"));
    }
    if kind != "summary" {
        match v.get("t") {
            Some(Json::Num(t)) if *t >= 0.0 && t.fract() == 0.0 => {}
            Some(_) => return Err("\"t\" is not a non-negative integer".to_string()),
            None => return Err("missing \"t\" timestamp".to_string()),
        }
    }
    Ok(kind)
}

fn run(path: &str, require_zero_drops: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut last: Option<(usize, Json)> = None;
    let mut events = 0u64;
    for (i, line) in text.lines().enumerate() {
        let kind = check_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if kind == "summary" {
            last = Some((i, Parser::new(line).parse()?));
        } else {
            if last.is_some() {
                return Err(format!(
                    "{path}:{}: event line after the summary trailer",
                    i + 1
                ));
            }
            events += 1;
        }
    }
    let (line_no, summary) = last.ok_or_else(|| format!("{path}: missing the summary trailer"))?;
    let field = |key: &str| -> Result<u64, String> {
        match summary.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            _ => Err(format!(
                "{path}:{}: summary field {key:?} missing or not an integer",
                line_no + 1
            )),
        }
    };
    let recorded = field("recorded")?;
    let dropped = field("dropped")?;
    if recorded != events {
        return Err(format!(
            "{path}: summary says {recorded} recorded events, file has {events}"
        ));
    }
    if require_zero_drops && dropped > 0 {
        return Err(format!(
            "{path}: {dropped} events dropped by the ring buffer (cap too small)"
        ));
    }
    println!("{path}: OK ({events} events, {dropped} dropped)");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_zero_drops = args.iter().any(|a| a == "--require-zero-drops");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: tracecheck [--require-zero-drops] <trace.jsonl>...");
        return ExitCode::FAILURE;
    }
    for path in paths {
        if let Err(e) = run(path, require_zero_drops) {
            eprintln!("tracecheck: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_event_lines() {
        assert_eq!(
            check_line(r#"{"k":"dispatch","t":100,"txn":7,"replica":1}"#).unwrap(),
            "dispatch"
        );
        assert_eq!(
            check_line(r#"{"k":"util","t":0,"cpu":0.500000,"disk":0.000000}"#).unwrap(),
            "util"
        );
        assert_eq!(
            check_line(r#"{"k":"suspect","t":500000,"replica":2,"misses":2}"#).unwrap(),
            "suspect"
        );
        assert_eq!(
            check_line(r#"{"k":"redo_done","t":9,"replica":0,"bytes":4096,"us":120}"#).unwrap(),
            "redo_done"
        );
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(check_line("not json").is_err());
        assert!(check_line(r#"{"t":1}"#).is_err(), "missing kind");
        assert!(check_line(r#"{"k":"nope","t":1}"#).is_err(), "unknown kind");
        assert!(check_line(r#"{"k":"arrive"}"#).is_err(), "missing t");
        assert!(
            check_line(r#"{"k":"arrive","t":-5}"#).is_err(),
            "negative t"
        );
        assert!(
            check_line(r#"{"k":"arrive","t":1} extra"#).is_err(),
            "trailing bytes"
        );
    }

    #[test]
    fn parses_escapes_and_nested_values() {
        let v = Parser::new(r#"{"a":"x\"yA","b":[1,true,null]}"#)
            .parse()
            .unwrap();
        assert_eq!(v.get("a"), Some(&Json::Str("x\"yA".to_string())));
        match v.get("b") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_summary_accounting() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tracecheck-test-{}.jsonl", std::process::id()));
        let good = "{\"k\":\"arrive\",\"t\":1,\"txn\":0}\n\
                    {\"k\":\"complete\",\"t\":9,\"txn\":0}\n\
                    {\"k\":\"summary\",\"events\":2,\"recorded\":2,\"dropped\":0}\n";
        std::fs::write(&path, good).unwrap();
        let p = path.to_str().unwrap();
        assert!(run(p, true).is_ok());
        let dropped = good.replace("\"dropped\":0", "\"dropped\":3");
        std::fs::write(&path, dropped).unwrap();
        assert!(run(p, false).is_ok(), "drops allowed without the flag");
        assert!(run(p, true).is_err(), "drops rejected with the flag");
        let _ = std::fs::remove_file(&path);
    }
}
