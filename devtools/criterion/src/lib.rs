//! Offline stand-in for the crates.io `criterion` crate.
//!
//! No network access in this build environment, so the workspace vendors the
//! API subset its microbenchmarks use: `Criterion::bench_function`, the
//! `Bencher::{iter, iter_batched}` timing loops, `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock mean over a fixed-duration measurement loop — no outlier
//! analysis, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Benchmark driver: names benchmarks and prints per-iteration timings.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and calibrate iterations per sample from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh values from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<40} median {:>12} mean {:>12} ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Groups benchmark functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut x = 0u64;
        c.bench_function("spin", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
