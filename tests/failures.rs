//! Failure-injection integration tests: replica crash/recovery, certifier
//! failover, and balancer soft state (§3 recovery, §4.2.1 fault tolerance).

use tashkent::certifier::{Certifier, CertifierGroup, CertifyOutcome, GroupEvent};
use tashkent::core::LoadBalancer;
use tashkent::engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent::replica::{ReplicaConfig, ReplicaNode};
use tashkent::sim::{SimRng, SimTime};
use tashkent::storage::{Catalog, RelationId};

fn mini_catalog() -> Catalog {
    let mut c = Catalog::new();
    let t = c.add_table("t", 64, 6_400);
    c.add_index("t_pk", t, 8, 6_400);
    c
}

fn commit_n(cert: &mut Certifier, n: u64) {
    for i in 0..n {
        let ws = Writeset::new(
            TxnId(i),
            TxnTypeId(0),
            Snapshot::at(Version(cert.version().0)),
            vec![WritesetItem {
                rel: RelationId(0),
                row: i,
            }],
        );
        assert!(matches!(
            cert.certify(SimTime::from_millis(i), ws),
            CertifyOutcome::Committed { .. }
        ));
    }
}

#[test]
fn replica_recovers_from_certifier_log() {
    let mut cert = Certifier::default();
    let mut node = ReplicaNode::new(
        mini_catalog(),
        ReplicaConfig::default(),
        SimRng::seed_from(1),
    );
    commit_n(&mut cert, 40);
    node.apply_writesets(SimTime::from_secs(1), cert.writesets_since(Version(0)));
    assert_eq!(node.applied(), Version(40));

    // Crash loses the cache and in-flight work, not durable state.
    node.crash();
    node.recover(Version(25)); // restored from a checkpointed copy
    let missed = cert.writesets_since(node.applied());
    assert_eq!(missed.len(), 15);
    node.apply_writesets(SimTime::from_secs(2), missed);
    assert_eq!(node.applied(), cert.version());
}

#[test]
fn recovered_replica_rereads_pages_cold() {
    let mut cert = Certifier::default();
    let mut node = ReplicaNode::new(
        mini_catalog(),
        ReplicaConfig::default(),
        SimRng::seed_from(2),
    );
    commit_n(&mut cert, 10);
    node.apply_writesets(SimTime::from_secs(1), cert.writesets_since(Version(0)));
    let reads_before = node.disk_stats().read_pages;
    node.crash();
    node.recover(Version(0));
    // Re-applying after the crash must hit disk again (cold cache).
    node.apply_writesets(SimTime::from_secs(2), cert.writesets_since(Version(0)));
    assert!(node.disk_stats().read_pages > reads_before);
}

#[test]
fn certifier_group_survives_two_failures() {
    let mut g = CertifierGroup::paper_default();
    match g.kill(SimTime::from_secs(1), 0) {
        Some(GroupEvent::FailedOver { leader, .. }) => assert_eq!(leader, 1),
        other => panic!("unexpected {other:?}"),
    }
    match g.kill(SimTime::from_secs(2), 1) {
        Some(GroupEvent::FailedOver { leader, .. }) => assert_eq!(leader, 2),
        other => panic!("unexpected {other:?}"),
    }
    assert!(g.is_available());
    assert_eq!(g.failovers(), 2);
    // Third failure exhausts the group.
    assert_eq!(
        g.kill(SimTime::from_secs(3), 2),
        Some(GroupEvent::Unavailable)
    );
    // A restart restores service as a backup-elect.
    g.restart(0);
    assert_eq!(g.live_members(), 1);
}

#[test]
fn balancer_soft_state_is_reconstructible() {
    // §4.2.1: the backup balancer starts from scratch; clients reconnect
    // and the connection counts rebuild naturally.
    let mut primary = LoadBalancer::least_connections(4);
    for _ in 0..8 {
        primary.dispatch(TxnTypeId(0));
    }
    // Fail over: a fresh balancer with zero soft state.
    let mut backup = LoadBalancer::least_connections(4);
    let choices: Vec<usize> = (0..8).map(|_| backup.dispatch(TxnTypeId(0)).0).collect();
    // It spreads evenly immediately — no dependence on lost state.
    for r in 0..4 {
        assert_eq!(choices.iter().filter(|c| **c == r).count(), 2);
    }
}

#[test]
fn certification_still_correct_across_checkpointing() {
    // Pruning the conflict index must never lose conflicts newer than the
    // horizon.
    let mut cert = Certifier::default();
    commit_n(&mut cert, 30);
    cert.prune_index(Version(20));
    // A stale snapshot writing a recently-written row conflicts.
    let ws = Writeset::new(
        TxnId(99),
        TxnTypeId(0),
        Snapshot::at(Version(22)),
        vec![WritesetItem {
            rel: RelationId(0),
            row: 25,
        }],
    );
    assert_eq!(
        cert.certify(SimTime::from_secs(1), ws),
        CertifyOutcome::Conflict
    );
}
