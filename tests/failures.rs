//! Failure-injection integration tests: replica crash/recovery, certifier
//! failover, and balancer soft state (§3 recovery, §4.2.1 fault tolerance)
//! — both at the component level and end-to-end through the `failover`
//! scenario in the shared harness.

use tashkent::certifier::{Certifier, CertifierGroup, CertifyOutcome, GroupEvent};
use tashkent::cluster::{
    run, ClusterConfig, Detection, Ev, Failover, FaultKind, PartialReplication, PolicySpec,
    ReplicaHealth, ReplicationPlanner, RunResult, Scenario, ScenarioKnobs, World, CONTROL_NODE,
};
use tashkent::core::LoadBalancer;
use tashkent::engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent::replica::{ReplicaConfig, ReplicaNode};
use tashkent::sim::{SimRng, SimTime};
use tashkent::storage::{Catalog, RelationId};
use tashkent::workloads::tpcw::{self, TpcwScale};

fn mini_catalog() -> Catalog {
    let mut c = Catalog::new();
    let t = c.add_table("t", 64, 6_400);
    c.add_index("t_pk", t, 8, 6_400);
    c
}

fn commit_n(cert: &mut Certifier, n: u64) {
    for i in 0..n {
        let ws = Writeset::new(
            TxnId(i),
            TxnTypeId(0),
            Snapshot::at(Version(cert.version().0)),
            vec![WritesetItem {
                rel: RelationId(0),
                row: i,
            }],
        );
        assert!(matches!(
            cert.certify(SimTime::from_millis(i), ws),
            CertifyOutcome::Committed { .. }
        ));
    }
}

#[test]
fn replica_recovers_from_certifier_log() {
    let mut cert = Certifier::default();
    let mut node = ReplicaNode::new(
        mini_catalog(),
        ReplicaConfig::default(),
        SimRng::seed_from(1),
    );
    commit_n(&mut cert, 40);
    node.apply_writesets(SimTime::from_secs(1), cert.writesets_since(Version(0)));
    assert_eq!(node.applied(), Version(40));

    // Crash loses the cache and in-flight work, not durable state.
    node.crash();
    node.recover(Version(25)); // restored from a checkpointed copy
    let missed = cert.writesets_since(node.applied());
    assert_eq!(missed.len(), 15);
    node.apply_writesets(SimTime::from_secs(2), missed);
    assert_eq!(node.applied(), cert.version());
}

#[test]
fn recovered_replica_rereads_pages_cold() {
    let mut cert = Certifier::default();
    let mut node = ReplicaNode::new(
        mini_catalog(),
        ReplicaConfig::default(),
        SimRng::seed_from(2),
    );
    commit_n(&mut cert, 10);
    node.apply_writesets(SimTime::from_secs(1), cert.writesets_since(Version(0)));
    let reads_before = node.disk_stats().read_pages;
    node.crash();
    node.recover(Version(0));
    // Re-applying after the crash must hit disk again (cold cache).
    node.apply_writesets(SimTime::from_secs(2), cert.writesets_since(Version(0)));
    assert!(node.disk_stats().read_pages > reads_before);
}

#[test]
fn certifier_group_survives_two_failures() {
    let mut g = CertifierGroup::paper_default();
    match g.kill(SimTime::from_secs(1), 0) {
        Some(GroupEvent::FailedOver { leader, .. }) => assert_eq!(leader, 1),
        other => panic!("unexpected {other:?}"),
    }
    match g.kill(SimTime::from_secs(2), 1) {
        Some(GroupEvent::FailedOver { leader, .. }) => assert_eq!(leader, 2),
        other => panic!("unexpected {other:?}"),
    }
    assert!(g.is_available());
    assert_eq!(g.failovers(), 2);
    // Third failure exhausts the group.
    assert_eq!(
        g.kill(SimTime::from_secs(3), 2),
        Some(GroupEvent::Unavailable)
    );
    // A restart restores service as a backup-elect.
    g.restart(0);
    assert_eq!(g.live_members(), 1);
}

#[test]
fn balancer_soft_state_is_reconstructible() {
    // §4.2.1: the backup balancer starts from scratch; clients reconnect
    // and the connection counts rebuild naturally.
    let mut primary = LoadBalancer::least_connections(4);
    for _ in 0..8 {
        primary.dispatch(TxnTypeId(0));
    }
    // Fail over: a fresh balancer with zero soft state.
    let mut backup = LoadBalancer::least_connections(4);
    let choices: Vec<usize> = (0..8).map(|_| backup.dispatch(TxnTypeId(0)).0).collect();
    // It spreads evenly immediately — no dependence on lost state.
    for r in 0..4 {
        assert_eq!(choices.iter().filter(|c| **c == r).count(), 2);
    }
}

/// Knobs sized so the `failover` scenario has real plateaus on both sides
/// of the outage: enough warm-up for steady state, enough post-recovery
/// tail to measure.
fn failover_knobs() -> ScenarioKnobs {
    ScenarioKnobs {
        replicas: 3,
        clients_per_replica: 4,
        warmup_secs: 15,
        measured_secs: 80,
        ..ScenarioKnobs::smoke()
    }
}

#[test]
fn failover_scenario_recovers_throughput() {
    // Crash at warmup + measured/4 = 35 s, recover at 45 s, leader kill at
    // 65 s. Post-recovery throughput must return to within 10 % of the
    // pre-crash steady state — the scenario's headline assertion.
    let knobs = failover_knobs();
    let sched = Failover::schedule(&knobs);
    let r = Failover::default()
        .run(&knobs)
        .expect("failover scenario runs to its End event");

    let pre = r.plateau(5.0, knobs.warmup_secs as f64, sched.crash_at_secs as f64);
    // Leave one settle bucket after recovery before measuring.
    let post = r.plateau(
        5.0,
        sched.recover_at_secs as f64 + 5.0,
        (knobs.warmup_secs + knobs.measured_secs) as f64,
    );
    assert!(pre > 1.0, "pre-crash steady state too idle: {pre} tps");
    assert!(
        post >= 0.9 * pre,
        "post-recovery throughput {post:.1} tps did not return to within \
         10% of the pre-crash steady state {pre:.1} tps"
    );

    // The fault log carries the exact schedule.
    let kinds: Vec<FaultKind> = r.faults.iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        vec![
            FaultKind::ReplicaCrash(2),
            FaultKind::ReplicaRecover(2),
            FaultKind::CertifierFailover {
                group: 0,
                leader: 1
            },
        ]
    );
    assert_eq!(r.faults[0].at, SimTime::from_secs(sched.crash_at_secs));
    assert_eq!(r.faults[1].at, SimTime::from_secs(sched.recover_at_secs));
}

#[test]
fn crashed_replica_rejoins_consistent_through_the_harness() {
    // Drive the crash/recover pair through World directly and stop right
    // at the recovery instant: the victim must have replayed the certifier
    // log exactly to its head, with a cold cache doing real reads.
    let exp = Failover::default().experiment(&failover_knobs());
    let mut world = World::new(exp.config, exp.workload, vec![exp.phases[0].1.clone()]);
    world.prime();
    world.schedule(SimTime::from_secs(4), Ev::ReplicaCrash { replica: 2 });
    world.schedule(SimTime::from_secs(9), Ev::ReplicaRecover { replica: 2 });
    world.schedule(SimTime::from_secs(9), Ev::End);
    world.run_to_end().expect("End event scheduled");
    assert!(world.node(2).is_up());
    assert_eq!(
        world.replica(2).applied(),
        world.certifier().version(),
        "recovery replays the certifier log to its head"
    );
    assert!(
        world.certifier().version().0 > 0,
        "the outage window must have committed updates to replay"
    );
}

#[test]
fn certifier_leader_kill_through_the_harness_fails_over() {
    let exp = Failover::default().experiment(&failover_knobs());
    let mut world = World::new(exp.config, exp.workload, vec![exp.phases[0].1.clone()]);
    world.prime();
    world.schedule(
        SimTime::from_secs(3),
        Ev::CertifierKill {
            group: 0,
            member: 0,
        },
    );
    world.schedule(SimTime::from_secs(10), Ev::End);
    world.run_to_end().expect("End event scheduled");
    let group = world.certifier_group();
    assert_eq!(group.leader(), Some(1), "backup elected");
    assert_eq!(group.failovers(), 1);
    assert!(
        world.certifier().version().0 > 0,
        "certification keeps serving after the failover delay"
    );
}

/// Runs a world with every member of certifier group 0 killed at 3 s,
/// optionally restarting member 0 at `restart_at_secs`, ending at
/// `end_secs`.
fn full_certifier_outage(end_secs: u64, restart_at_secs: Option<u64>) -> World {
    let exp = Failover::default().experiment(&failover_knobs());
    let mut world = World::new(exp.config, exp.workload, vec![exp.phases[0].1.clone()]);
    world.prime();
    world.schedule(SimTime::from_secs(1), Ev::EndWarmup);
    for member in 0..3 {
        world.schedule(
            SimTime::from_secs(3),
            Ev::CertifierKill { group: 0, member },
        );
    }
    if let Some(at) = restart_at_secs {
        world.schedule(
            SimTime::from_secs(at),
            Ev::CertifierRestart {
                group: 0,
                member: 0,
            },
        );
    }
    world.schedule(SimTime::from_secs(end_secs), Ev::End);
    world.run_to_end().expect("End event scheduled");
    world
}

#[test]
fn dead_certifier_parks_requests_instead_of_aborting() {
    // Queue-and-wait back-pressure: with the whole group dead, new
    // certification requests park at the link — they are *not* failed like
    // conflicts. No outcome of any kind can originate from the dead
    // certifier, so the abort count must be frozen at its kill-time value:
    // two truncations of the same outage, 1 s and 3 s in, see identical
    // aborts (the no-spurious-aborts assertion), while requests pile up.
    let short = full_certifier_outage(4, None);
    let long = full_certifier_outage(6, None);
    assert!(
        !long.certifier_group().is_available(),
        "all three members dead leaves the group unavailable"
    );
    assert!(
        long.cert_link().waiting_certs() > 0,
        "an unavailable certifier must park requests, not fail them"
    );
    assert_eq!(
        short.finish_result().aborts,
        long.finish_result().aborts,
        "two extra seconds of total certifier outage produced aborts — \
         a dead certifier must never fail requests like conflicts"
    );
}

#[test]
fn certifier_restart_drains_parked_requests_in_arrival_order() {
    // The drain half: restarting one member elects it leader after the
    // failover delay and the parked requests go through it — committing
    // normally, in arrival order, with nothing left waiting.
    let outage = full_certifier_outage(6, None);
    let drained = full_certifier_outage(20, Some(6));
    assert_eq!(
        drained.cert_link().waiting_certs(),
        0,
        "queue fully drained"
    );
    assert!(drained.certifier_group().is_available());
    assert!(
        drained.certifier().version() > outage.certifier().version(),
        "drained requests must commit after the restart"
    );
    assert!(
        drained.finish_result().committed > outage.finish_result().committed,
        "throughput resumes after the restart"
    );
}

/// Runs a quiet partial-replication schedule (no crash faults) with the
/// rebalancer ticking every 2 s and one bandwidth-capped re-replication of
/// `group` injected at 6 s, ending at `warmup + measured_secs`. The tight
/// 512 B/s cap keeps the injected copy in flight for seconds of simulated
/// time.
fn migration_truncation(measured_secs: u64, group: usize) -> RunResult {
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 3,
        measured_secs,
        ..ScenarioKnobs::smoke()
    }
    .with_backfill_cap(Some(512));
    let mut exp = PartialReplication {
        faults: false,
        ..PartialReplication::default()
    }
    .experiment(&knobs);
    exp.config.migration_period = Some(SimTime::from_secs(2));
    run(exp.with_injection(SimTime::from_secs(6), Ev::Rereplicate { group }))
        .expect("partial run completes")
}

#[test]
fn migration_window_introduces_no_spurious_aborts() {
    // Truncation equality, same shape as the dead-certifier test: the two
    // runs share one deterministic schedule and differ only in when End
    // fires, so the short run is an exact prefix of the long one and any
    // abort-count difference could only originate in the extra window —
    // which here contains the capped copy's completion (filter widening
    // finalised, dispatch eligibility flipped, holder set changed) plus
    // further rebalancer ticks. Rebalancing must never fail client
    // requests, so the counts must match.
    const SHORT_MEASURED: u64 = 3; // ends at 8 s — the copy still in flight
    const LONG_MEASURED: u64 = 10; // ends at 15 s — completion + more ticks
    let short_end = SimTime::from_secs(ScenarioKnobs::smoke().warmup_secs + SHORT_MEASURED);
    // Pick a group whose injected copy ships real bytes and completes only
    // inside the extra window; overlap can make some groups' copies free.
    let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
    let groups = ReplicationPlanner::new(2).plan(&workload, 4).group_count();
    let (group, long) = (0..groups)
        .find_map(|g| {
            let r = migration_truncation(LONG_MEASURED, g);
            r.faults
                .iter()
                .any(|f| {
                    f.at > short_end
                        && matches!(f.kind, FaultKind::Rereplicate { bytes, .. } if bytes > 0)
                })
                .then_some((g, r))
        })
        .expect("some group's capped copy completes inside the extra window");
    let short = migration_truncation(SHORT_MEASURED, group);
    assert!(
        !short
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Rereplicate { .. })),
        "the injected copy must still be in flight when the short run ends"
    );
    assert!(
        long.migration_bytes > short.migration_bytes,
        "the extra window must ship migration traffic"
    );
    assert_eq!(
        short.aborts, long.aborts,
        "completing a migration in the extra window changed the abort \
         count — rebalancing must never fail in-flight requests"
    );
}

#[test]
fn sharded_group_outage_parks_only_its_own_groups_requests() {
    // Per-group back-pressure under sharded certification: killing every
    // member of one group parks only the transactions touching it; the
    // other groups keep certifying and the cluster keeps committing.
    let knobs = failover_knobs().with_cert_groups(Some(4));
    let exp = tashkent::cluster::TpcwSteadyState::default().experiment(&knobs);
    let mut world = World::new(exp.config, exp.workload, vec![exp.phases[0].1.clone()]);
    world.prime();
    world.schedule(SimTime::from_secs(1), Ev::EndWarmup);
    for member in 0..3 {
        world.schedule(
            SimTime::from_secs(3),
            Ev::CertifierKill { group: 1, member },
        );
    }
    world.schedule(SimTime::from_secs(10), Ev::End);
    world.run_to_end().expect("End event scheduled");
    assert!(!world.cert_link().group_of(1).is_available());
    assert!(
        world.cert_link().waiting_certs() > 0,
        "requests touching the dead group must park"
    );
    let commits = world.cert_link().cert_group_commits();
    let dead_head = commits[1].last().copied().unwrap_or(0);
    assert!(
        commits
            .iter()
            .enumerate()
            .any(|(g, log)| g != 1 && log.last().copied().unwrap_or(0) > dead_head),
        "the surviving groups must keep committing past the dead group's head"
    );
}

#[test]
fn crash_and_recover_are_idempotent_through_the_harness() {
    // Double crash and double recover must be no-ops: only one fault pair
    // lands in the log, and the run still completes.
    let exp = Failover::default().experiment(&failover_knobs());
    let mut world = World::new(exp.config, exp.workload, vec![exp.phases[0].1.clone()]);
    world.prime();
    world.schedule(SimTime::from_secs(3), Ev::ReplicaCrash { replica: 1 });
    world.schedule(SimTime::from_secs(4), Ev::ReplicaCrash { replica: 1 });
    world.schedule(SimTime::from_secs(6), Ev::ReplicaRecover { replica: 1 });
    world.schedule(SimTime::from_secs(7), Ev::ReplicaRecover { replica: 1 });
    world.schedule(SimTime::from_secs(10), Ev::End);
    world.run_to_end().expect("End event scheduled");
    let kinds: Vec<FaultKind> = world.metrics().faults().iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        vec![FaultKind::ReplicaCrash(1), FaultKind::ReplicaRecover(1)]
    );
}

/// Knobs sized like [`failover_knobs`] for the `detection` scenario: with
/// warmup 15 s / measured 80 s its schedule is partition at 25 s, heal at
/// 27 s, crash at 55 s, recover at 65 s, end at 95 s.
fn detection_knobs() -> ScenarioKnobs {
    ScenarioKnobs {
        replicas: 3,
        clients_per_replica: 4,
        warmup_secs: 15,
        measured_secs: 80,
        ..ScenarioKnobs::smoke()
    }
}

#[test]
fn false_suspicion_rejoins_with_zero_rereplication() {
    // A partitioned-then-healed replica under partial replication: the
    // detector suspects it (so its in-flight work is retried on survivors)
    // but the heal beats the dead threshold, so rejoining is a cheap
    // filter-widen — no relation group may move.
    let knobs = detection_knobs().with_min_copies(Some(2));
    let mut config = knobs.config(PolicySpec::malb_sc());
    config.heartbeat_period_us = 500_000;
    config.client_timeout_us = 3_000_000;
    let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
    let mut world = World::new(config, workload, vec![mix]);
    world.prime();
    let end = knobs.warmup_secs + knobs.measured_secs;
    world.schedule(SimTime::from_secs(knobs.warmup_secs), Ev::EndWarmup);
    world.schedule(
        SimTime::from_secs(25),
        Ev::LinkPartition {
            a: CONTROL_NODE,
            b: 2,
            heal_at: SimTime::from_secs(27),
        },
    );
    world.schedule(SimTime::from_secs(end), Ev::End);
    world.run_to_end().expect("End event scheduled");

    let r = world.finish_result();
    let kinds: Vec<FaultKind> = r.faults.iter().map(|f| f.kind).collect();
    // Suspected during the outage, trusted after the heal, never dead.
    assert!(kinds.contains(&FaultKind::ReplicaSuspected(2)));
    assert!(kinds.contains(&FaultKind::ReplicaTrusted(2)));
    assert!(!kinds.contains(&FaultKind::ReplicaDead(2)));
    assert!(world.node(2).is_up());
    assert_eq!(world.replica_health(2), ReplicaHealth::Live);
    // The rejoin cost nothing: no re-replication, no migration, no bytes.
    assert!(
        !kinds
            .iter()
            .any(|k| matches!(k, FaultKind::Rereplicate { .. } | FaultKind::Migrate { .. })),
        "a false suspicion must never move data: {kinds:?}"
    );
    assert_eq!(
        r.migration_bytes, 0,
        "re-replication is deferred until a replica is declared dead"
    );
    // The suspicion records its detection latency back to the injection.
    let suspect = r
        .faults
        .iter()
        .find(|f| f.kind == FaultKind::ReplicaSuspected(2))
        .expect("suspicion recorded");
    assert_eq!(suspect.injected_at, SimTime::from_secs(25));
    assert!(suspect.at > suspect.injected_at);
    // Throughput returns to within 10 % of the pre-partition steady state
    // (settle one 5 s bucket after the heal before measuring).
    let pre = r.plateau(5.0, knobs.warmup_secs as f64, 25.0);
    let post = r.plateau(5.0, 32.0, end as f64);
    assert!(pre > 1.0, "pre-partition steady state too idle: {pre} tps");
    assert!(
        post >= 0.9 * pre,
        "post-heal throughput {post:.1} tps did not return to within 10% \
         of the pre-partition steady state {pre:.1} tps"
    );
}

#[test]
fn detection_scenario_discovers_the_crash_and_recovers_throughput() {
    // End-to-end through the `detection` scenario: nobody tells the
    // balancer about the crash — the detector walks the victim through
    // Suspected to Dead on missed heartbeats, recovery replays the
    // checkpoint-lag redo window, and trust (plus throughput) returns.
    let knobs = detection_knobs();
    let sched = Detection::schedule(&knobs);
    let r = Detection::default()
        .run(&knobs)
        .expect("detection scenario runs to its End event");

    let kinds: Vec<FaultKind> = r.faults.iter().map(|f| f.kind).collect();
    let cv = Detection::crash_victim();
    let pos = |k: FaultKind| {
        kinds
            .iter()
            .position(|x| *x == k)
            .unwrap_or_else(|| panic!("missing {k:?} in {kinds:?}"))
    };
    assert!(pos(FaultKind::ReplicaCrash(cv)) < pos(FaultKind::ReplicaSuspected(cv)));
    assert!(pos(FaultKind::ReplicaSuspected(cv)) < pos(FaultKind::ReplicaDead(cv)));
    assert!(pos(FaultKind::ReplicaDead(cv)) < pos(FaultKind::ReplicaRecover(cv)));
    assert!(pos(FaultKind::ReplicaRecover(cv)) < pos(FaultKind::ReplicaTrusted(cv)));
    // The dead verdict measures its latency from the real crash instant.
    let dead = r
        .faults
        .iter()
        .find(|f| f.kind == FaultKind::ReplicaDead(cv))
        .expect("dead verdict recorded");
    assert_eq!(dead.injected_at, SimTime::from_secs(sched.crash_at_secs));
    assert!(dead.detection_latency_us() > 0);
    // Checkpoint-lag recovery replayed a real redo window.
    assert!(r.redo_bytes > 0, "redo window shipped bytes");
    assert!(r.redo_us > 0, "redo replay took time");
    // Throughput recovers within 10 % of the steady state between the
    // partition heal and the crash.
    let end = (knobs.warmup_secs + knobs.measured_secs) as f64;
    let pre = r.plateau(
        5.0,
        (sched.partition_at_secs + 7) as f64,
        sched.crash_at_secs as f64,
    );
    let post = r.plateau(5.0, (sched.recover_at_secs + 10) as f64, end);
    assert!(pre > 1.0, "pre-crash steady state too idle: {pre} tps");
    assert!(
        post >= 0.9 * pre,
        "post-recovery throughput {post:.1} tps did not return to within \
         10% of the pre-crash steady state {pre:.1} tps"
    );
}

/// Runs a two-replica cluster with the detector off and a 25 s control-link
/// partition on replica 1, under the given client request timeout.
fn partitioned_run(client_timeout_us: u64) -> RunResult {
    let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
    let config = ClusterConfig {
        replicas: 2,
        clients: 8,
        think_mean_us: 200_000,
        client_timeout_us,
        ..ClusterConfig::paper_default()
    };
    let mut world = World::new(config, workload, vec![mix]);
    world.prime();
    world.schedule(SimTime::from_secs(2), Ev::EndWarmup);
    // Heartbeats are off, so no sweep ever rescues the victims' in-flight
    // work — only the clients' own timers can.
    world.schedule(
        SimTime::from_secs(5),
        Ev::LinkPartition {
            a: CONTROL_NODE,
            b: 1,
            heal_at: SimTime::from_secs(30),
        },
    );
    world.schedule(SimTime::from_secs(35), Ev::End);
    world.run_to_end().expect("End event scheduled");
    world.finish_result()
}

#[test]
fn client_timeouts_rescue_updates_stranded_by_a_partition() {
    // An update whose certification request is dropped by the partition
    // leaves its client waiting forever: without a request timeout the
    // client is wedged for the rest of the run, with one it abandons the
    // request and retries elsewhere under capped exponential backoff.
    let with_timeout = partitioned_run(2_000_000);
    let without = partitioned_run(0);
    assert!(
        with_timeout.committed > without.committed,
        "client timeouts must rescue stranded updates: {} committed with \
         a 2 s timeout vs {} without",
        with_timeout.committed,
        without.committed
    );
}

#[test]
fn certification_still_correct_across_checkpointing() {
    // Pruning the conflict index must never lose conflicts newer than the
    // horizon.
    let mut cert = Certifier::default();
    commit_n(&mut cert, 30);
    cert.prune_index(Version(20));
    // A stale snapshot writing a recently-written row conflicts.
    let ws = Writeset::new(
        TxnId(99),
        TxnTypeId(0),
        Snapshot::at(Version(22)),
        vec![WritesetItem {
            rel: RelationId(0),
            row: 25,
        }],
    );
    assert_eq!(
        cert.certify(SimTime::from_secs(1), ws),
        CertifyOutcome::Conflict
    );
}
