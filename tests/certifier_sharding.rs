//! Sharded-certification integration tests: atomicity across certifier
//! groups, per-group log contiguity, decide-order determinism under random
//! per-group leader kills, and the degenerate single-group configuration
//! reproducing the unified certifier bit for bit — on both drivers.

use tashkent::cluster::{
    run, run_scenario, DriverKind, Ev, FaultKind, RunResult, Scenario, ScenarioKnobs,
    TpcwSteadyState,
};
use tashkent::sim::SimTime;

/// The observable result of a run under sharded certification, exact to
/// the bit: the base commit/abort/timing counters plus the per-group
/// commit logs (global versions, ascending per group).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    committed: u64,
    updates: u64,
    aborts: u64,
    retries_exhausted: u64,
    mean_response_us: u64,
    completions: usize,
    faults: Vec<tashkent::cluster::FaultEvent>,
    cert_group_commits: Vec<Vec<u64>>,
}

impl Fingerprint {
    fn of(r: &RunResult) -> Self {
        Fingerprint {
            committed: r.committed,
            updates: r.updates,
            aborts: r.aborts,
            retries_exhausted: r.retries_exhausted,
            mean_response_us: (r.mean_response_s * 1e6).round() as u64,
            completions: r.completions.len(),
            faults: r.faults.clone(),
            cert_group_commits: r.cert_group_commits.clone(),
        }
    }
}

fn sharded_knobs(seed: u64) -> ScenarioKnobs {
    ScenarioKnobs::smoke()
        .with_seed(seed)
        .with_cert_groups(Some(4))
}

#[test]
fn sharded_runs_agree_across_drivers_and_widths() {
    for (scenario, seed) in [
        ("tpcw-steady-state", 1),
        ("tpcw-steady-state", 42),
        ("rubis-auction", 11),
    ] {
        let knobs = sharded_knobs(seed);
        let sequential = run_scenario(scenario, &knobs.clone().with_driver(DriverKind::Sequential))
            .expect("sequential sharded run completes");
        assert!(
            sequential.cert_group_commits.len() >= 2,
            "the workload must shard into multiple certifier groups"
        );
        for threads in [2, 4, 8] {
            let parallel = run_scenario(
                scenario,
                &knobs.clone().with_driver(DriverKind::Parallel { threads }),
            )
            .expect("parallel sharded run completes");
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "drivers diverged on {scenario} seed {seed} at {threads} threads"
            );
            assert_eq!(sequential.completions, parallel.completions);
        }
    }
}

#[test]
fn no_partial_commit_across_groups() {
    // Atomic commitment: a cross-group transaction's commit lands in every
    // touched group's log under the same global version, or in none. The
    // per-group logs must each be strictly ascending (group-log
    // contiguity), and their union must cover the global commit sequence
    // 1..=head with no gaps — a partially-committed cross-group txn would
    // leave its version missing from some touched group and the gap check
    // would not see it, so also require every version's holder set to be
    // non-empty and consistent across both drivers.
    for driver in [DriverKind::Sequential, DriverKind::Parallel { threads: 2 }] {
        let r = run_scenario("tpcw-steady-state", &sharded_knobs(42).with_driver(driver))
            .expect("sharded run completes");
        let mut all: Vec<u64> = Vec::new();
        for (g, log) in r.cert_group_commits.iter().enumerate() {
            assert!(
                log.windows(2).all(|w| w[0] < w[1]),
                "group {g} log is not strictly ascending under {driver:?}"
            );
            all.extend_from_slice(log);
        }
        all.sort_unstable();
        all.dedup();
        let head = *all.last().expect("updates committed");
        assert_eq!(
            all,
            (1..=head).collect::<Vec<u64>>(),
            "global commit sequence has gaps under {driver:?}: some group \
             recorded a version another group's atomic round aborted"
        );
    }
}

#[test]
fn cross_group_transactions_actually_occur() {
    // The atomicity assertion above would be vacuous if no transaction ever
    // spanned groups: pin that the TPC-W ordering mix produces versions
    // recorded by more than one group (the cross-group decide path).
    let r = run_scenario("tpcw-steady-state", &sharded_knobs(42)).expect("sharded run completes");
    let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for log in &r.cert_group_commits {
        for &v in log {
            *seen.entry(v).or_insert(0) += 1;
        }
    }
    assert!(
        seen.values().any(|&n| n >= 2),
        "no commit version was recorded by multiple groups — the \
         cross-group atomic-commitment path never ran"
    );
}

#[test]
fn decide_order_is_deterministic_under_random_group_kill_schedules() {
    // Random per-group leader-kill schedules (deterministic LCG per seed):
    // both drivers must agree on every commit decision and on the decide
    // order within every group, fault log included.
    for seed in [3u64, 17] {
        let mut lcg = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let knobs = sharded_knobs(seed);
        let base = TpcwSteadyState::default().experiment(&knobs);
        let groups = 4u64;
        let mut injections = Vec::new();
        for _ in 0..3 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let group = (lcg >> 33) % groups;
            let at = 6 + (lcg >> 17) % 12; // inside the measured window
            injections.push((
                SimTime::from_secs(at),
                Ev::CertifierKill {
                    group: group as usize,
                    member: 0,
                },
            ));
        }
        let build = |driver: DriverKind| {
            let mut exp = base.clone().with_driver(driver);
            for (at, ev) in &injections {
                exp = exp.with_injection(*at, ev.clone());
            }
            run(exp).expect("killed-leader sharded run completes")
        };
        let sequential = build(DriverKind::Sequential);
        assert!(
            sequential
                .faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::CertifierFailover { .. })),
            "the kill schedule must actually fail a leader over"
        );
        for threads in [2, 4] {
            let parallel = build(DriverKind::Parallel { threads });
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "decide order diverged under kill schedule seed {seed} at {threads} threads"
            );
        }
    }
}

#[test]
fn degenerate_single_group_matches_unified_bit_for_bit() {
    // `max_groups = 1` routes every transaction through one group with no
    // atomic-commitment rounds: the observable results must be identical
    // to the unified certifier's, on both drivers.
    for driver in [DriverKind::Sequential, DriverKind::Parallel { threads: 2 }] {
        let knobs = ScenarioKnobs::smoke().with_driver(driver);
        let unified = run_scenario("tpcw-steady-state", &knobs).expect("unified run completes");
        let one_group = run_scenario(
            "tpcw-steady-state",
            &knobs.clone().with_cert_groups(Some(1)),
        )
        .expect("single-group sharded run completes");
        assert_eq!(one_group.cert_group_commits.len(), 1);
        let mut uni = Fingerprint::of(&unified);
        let mut one = Fingerprint::of(&one_group);
        // The per-group log is the sharded mode's extra observable; the
        // single group's log must be the full commit sequence.
        let log = std::mem::take(&mut one.cert_group_commits).remove(0);
        let head = *log.last().expect("updates committed");
        assert_eq!(log, (1..=head).collect::<Vec<u64>>());
        uni.cert_group_commits = Vec::new();
        assert_eq!(
            uni, one,
            "max_groups = 1 diverged from the unified certifier under {driver:?}"
        );
        assert_eq!(unified.completions, one_group.completions);
    }
}

#[test]
fn pooled_windows_shard_certification_checks() {
    // The tentpole's accounting: with the pool forced on, single-group
    // checks must execute on pool workers (`certifier_sharded > 0`), and
    // the merge-inline certifier replays must be strictly fewer than the
    // same configuration and seed with dispatch disabled (`min_dispatch`
    // maxed: identical windows, identical results, every cert send
    // replayed inline) — the sharded path actually moves certification
    // work off the merge thread.
    // Smoke density rarely overlaps certification with other activity;
    // use a denser cluster so windows actually carry cert sends.
    let dense = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 8,
        think_mean_us: 30_000,
        ..ScenarioKnobs::smoke()
    }
    .with_cert_groups(Some(4));
    let pooled = run_scenario(
        "tpcw-steady-state",
        &dense.clone().with_driver(DriverKind::ParallelTuned {
            threads: 2,
            min_dispatch: 0,
        }),
    )
    .expect("sharded pooled run completes");
    let inline_only = run_scenario(
        "tpcw-steady-state",
        &dense.with_driver(DriverKind::ParallelTuned {
            threads: 2,
            min_dispatch: usize::MAX,
        }),
    )
    .expect("sharded inline run completes");
    assert_eq!(
        Fingerprint::of(&pooled),
        Fingerprint::of(&inline_only),
        "the dispatch threshold must never change results"
    );
    let p = pooled.driver_stats.expect("parallel runs record stats");
    let i = inline_only
        .driver_stats
        .expect("parallel runs record stats");
    assert!(
        p.certifier_sharded > 0,
        "no certification checks ran on pool workers: {p:?}"
    );
    assert!(
        p.certifier_inline < i.certifier_inline,
        "worker dispatch must strictly reduce merge-inline certifier \
         replays: pooled {} vs inline-only {}",
        p.certifier_inline,
        i.certifier_inline
    );
}
