//! Property tests for partial replication (the placement subsystem):
//!
//! * **durability** — at every event boundary of a run, including across
//!   the failover fault schedule, every relation group has at least
//!   `min(min_copies, live replicas)` live holders, and every live holder
//!   keeps the group's relations current (its update filter accepts them) —
//!   together: every committed writeset stays durable on `min_copies` live
//!   replicas, the crash handler re-replicating synchronously before any
//!   client is retried;
//! * **dispatch safety** — dispatch never routes a transaction to a
//!   non-holder. The routing invariant is a hard assertion inside
//!   `ClusterState::submit_txn`, so every run below doubles as a dispatch
//!   property check across random fault schedules;
//! * **re-replication** — the injectable `Ev::Rereplicate` widens a group's
//!   holder set via certifier-log backfill, and recovery catch-up under
//!   partial replication still lands the victim exactly on the certifier's
//!   version (held groups as pages, the rest as version ticks).

use proptest::prelude::*;
use tashkent::cluster::{
    ClusterState, Ev, Experiment, FaultKind, PartialReplication, Scenario, ScenarioKnobs,
};
use tashkent::sim::{EventQueue, SimTime};

/// Builds the runnable state + queue for an experiment, mirroring what the
/// experiment runner schedules (single-phase experiments only).
fn build(exp: Experiment) -> (ClusterState, EventQueue<Ev>) {
    assert_eq!(exp.phases.len(), 1, "helper supports single-phase runs");
    let mixes = vec![exp.phases[0].1.clone()];
    let total = exp.phases[0].0;
    let mut state = ClusterState::new(exp.config, exp.workload, mixes);
    let mut queue = EventQueue::new();
    state.prime(&mut queue);
    queue.schedule(SimTime::from_secs(exp.warmup_secs), Ev::EndWarmup);
    queue.schedule(SimTime::from_secs(total), Ev::End);
    for (at, ev) in exp.injections {
        queue.schedule(at, ev);
    }
    (state, queue)
}

/// Checks the durability invariant on a state snapshot; `deep` also
/// verifies that every live holder's filter keeps the group current.
fn assert_durable(state: &ClusterState, deep: bool) {
    let p = state.placement().expect("partial run has a placement");
    let n = state.replica_count();
    let live = (0..n).filter(|r| state.node(*r).is_up()).count();
    let need = p.min_copies().min(live);
    for g in 0..p.group_count() {
        let live_holders = p
            .holders(g)
            .iter()
            .filter(|r| state.node(**r).is_up())
            .count();
        assert!(
            live_holders >= need,
            "group {g}: {live_holders} live holders < {need}"
        );
        if deep {
            for &r in p.holders(g) {
                if !state.node(r).is_up() {
                    continue;
                }
                for rel in &p.groups()[g].relations {
                    assert!(
                        state.replica(r).filter().accepts(*rel),
                        "live holder {r} filters out {rel} of its group {g}"
                    );
                }
            }
        }
    }
}

/// Drives the partial-replication scenario event by event and checks the
/// durability invariant at every boundary — the crash handler must
/// re-replicate synchronously, so there is never a window in which a group
/// sits below its constraint.
#[test]
fn durability_holds_at_every_event_across_the_failover_schedule() {
    for seed in [1, 42] {
        let knobs = ScenarioKnobs {
            replicas: 4,
            clients_per_replica: 3,
            ..ScenarioKnobs::smoke()
        }
        .with_seed(seed);
        let exp = PartialReplication::default().experiment(&knobs);
        let (mut state, mut queue) = build(exp);
        assert_durable(&state, true);
        let mut faults_seen = 0;
        while !state.ended() {
            let (now, ev) = queue.pop().expect("End event scheduled");
            state.handle(now, ev, &mut queue);
            // The deep (filter) check runs whenever the fault log grows;
            // the holder-count check runs at every single event boundary.
            let faults = state.metrics.faults().len();
            assert_durable(&state, faults != faults_seen);
            faults_seen = faults;
        }
        assert!(
            state
                .metrics
                .faults()
                .iter()
                .any(|f| matches!(f.kind, FaultKind::Rereplicate { .. })),
            "seed {seed}: the crash must have forced re-replication"
        );
        assert_durable(&state, true);
        // Convergence: the post-recovery shrink pass drops the surplus
        // copies the crash-time re-replication added, so placement returns
        // to exactly `min_copies` holders per group instead of ratcheting
        // wider with every crash/recover cycle.
        let p = state.placement().expect("partial run has a placement");
        for g in 0..p.group_count() {
            assert_eq!(
                p.holders(g).len(),
                p.min_copies(),
                "seed {seed}: group {g} still over-replicated after recovery"
            );
        }
        assert!(
            state
                .metrics
                .faults()
                .iter()
                .any(|f| matches!(f.kind, FaultKind::ShrinkHolder { .. })),
            "seed {seed}: the recovery must have shed the surplus holder"
        );
    }
}

/// The injectable `Ev::Rereplicate` widens the holder set mid-run: the new
/// holder becomes eligible for the group's types, its filter accepts the
/// group's relations, and the fault log records the copy.
#[test]
fn rereplicate_event_widens_the_holder_set() {
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 3,
        ..ScenarioKnobs::smoke()
    };
    let scenario = PartialReplication {
        faults: false,
        ..PartialReplication::default()
    };
    let exp = scenario
        .experiment(&knobs)
        .with_injection(SimTime::from_secs(3), Ev::Rereplicate { group: 0 });
    let (mut state, mut queue) = build(exp);
    while !state.ended() {
        let (now, ev) = queue.pop().expect("End event scheduled");
        state.handle(now, ev, &mut queue);
    }

    let p = state.placement().expect("partial run has a placement");
    assert_eq!(
        p.holders(0).len(),
        p.min_copies() + 1,
        "the event must add exactly one holder"
    );
    let added = state
        .metrics
        .faults()
        .iter()
        .find_map(|f| match f.kind {
            FaultKind::Rereplicate { group: 0, to, .. } => Some(to),
            _ => None,
        })
        .expect("re-replication recorded in the fault log");
    assert!(p.holds_group(added, 0));
    for t in &p.groups()[0].types {
        assert!(p.eligible(*t, added), "new holder not eligible for {t}");
    }
    for rel in &p.groups()[0].relations {
        assert!(state.replica(added).filter().accepts(*rel));
    }
}

/// MALB with update filtering on top of partial replication: MALB's filter
/// lists are placement-unaware, so they must never narrow a holder below
/// its held set — placement subsumes them. Regression for a bug where the
/// composed filter let live holders reject their own groups' relations,
/// silently voiding the durability invariant once MALB stabilized and
/// installed its lists.
#[test]
fn malb_update_filtering_never_narrows_a_holder_below_its_held_set() {
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 3,
        warmup_secs: 5,
        // Long enough for MALB to stabilize (10 rebalance rounds at the 5 s
        // period) and install its filter lists mid-run.
        measured_secs: 120,
        ..ScenarioKnobs::smoke()
    }
    .with_policy(tashkent::cluster::PolicySpec::malb_sc_uf());
    let scenario = PartialReplication {
        faults: false,
        ..PartialReplication::default()
    };
    let (mut state, mut queue) = build(scenario.experiment(&knobs));
    while !state.ended() {
        let (now, ev) = queue.pop().expect("End event scheduled");
        state.handle(now, ev, &mut queue);
    }
    assert!(
        state.balancer().filters_installed(),
        "MALB must have installed its update filters for the regression to bite"
    );
    // Every live holder still keeps every relation of its groups current.
    assert_durable(&state, true);
}

proptest! {
    /// Random fault schedules over a partially-replicated cluster: the run
    /// completes (dispatch safety is asserted inside the cluster on every
    /// submit), the durability invariant holds at the end, and the
    /// recovered victim has applied exactly the certifier's version — the
    /// run ends the instant recovery completes, so catch-up under partial
    /// replication (held pages + version ticks) cannot hide a partial
    /// replay.
    #[test]
    fn random_faults_preserve_durability_and_catch_up(
        seed in 1u64..200,
        min_copies in 1usize..4,
        crash_at in 2u64..5,
        downtime in 1u64..3,
        victim in 0usize..3,
    ) {
        let knobs = ScenarioKnobs {
            replicas: 3,
            clients_per_replica: 3,
            warmup_secs: 1,
            measured_secs: crash_at + downtime,
            ..ScenarioKnobs::smoke()
        }
        .with_seed(seed)
        .with_min_copies(Some(min_copies));
        let exp = PartialReplication {
            faults: false,
            ..PartialReplication::default()
        }
        .experiment(&knobs);
        let (mut state, mut queue) = build(exp);
        let recover_at = crash_at + downtime;
        queue.schedule(SimTime::from_secs(crash_at), Ev::ReplicaCrash { replica: victim });
        queue.schedule(SimTime::from_secs(recover_at), Ev::ReplicaRecover { replica: victim });
        // Same instant, scheduled after the recovery: FIFO ends the run the
        // moment catch-up finishes (the build()-scheduled End never fires).
        queue.schedule(SimTime::from_secs(recover_at), Ev::End);
        while !state.ended() {
            let (now, ev) = queue.pop().expect("End event scheduled");
            state.handle(now, ev, &mut queue);
        }
        assert_durable(&state, true);
        prop_assert!(state.node(victim).is_up());
        prop_assert_eq!(
            state.replica(victim).applied(),
            state.certifier().version(),
            "partial-replication catch-up must land on the certifier version (seed {})",
            seed
        );
    }
}
