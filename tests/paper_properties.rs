//! Property-based integration tests over the paper's core invariants.

use proptest::prelude::*;
use tashkent::certifier::{Certifier, CertifyOutcome};
use tashkent::core::GroupId;
use tashkent::core::{pack_groups, EstimationMode, WorkingSet};
use tashkent::core::{AllocationConfig, Allocator, GroupLoads};
use tashkent::engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent::sim::SimTime;
use tashkent::storage::RelationId;

fn working_set_strategy(max_types: u32) -> impl Strategy<Value = Vec<WorkingSet>> {
    proptest::collection::vec(
        proptest::collection::btree_map(0u32..20, 1u64..5_000, 1..5),
        1..max_types as usize,
    )
    .prop_map(|maps| {
        maps.into_iter()
            .enumerate()
            .map(|(i, m)| WorkingSet {
                txn_type: TxnTypeId(i as u32),
                relations: m.into_iter().map(|(r, p)| (RelationId(r), p)).collect(),
                scanned: Default::default(),
            })
            .collect()
    })
}

proptest! {
    /// Bin packing: every type appears exactly once; non-overflow bins
    /// respect capacity; overlap-aware estimates never exceed the sum of
    /// sizes.
    #[test]
    fn packing_invariants(sets in working_set_strategy(16), capacity in 1_000u64..20_000) {
        for mode in [EstimationMode::Size, EstimationMode::SizeContent] {
            let groups = pack_groups(&sets, mode, capacity);
            let mut seen: Vec<u32> = groups.iter().flat_map(|g| g.types.iter().map(|t| t.0)).collect();
            seen.sort_unstable();
            let expected: Vec<u32> = (0..sets.len() as u32).collect();
            prop_assert_eq!(seen, expected, "each type in exactly one group");
            for g in &groups {
                if !g.overflow {
                    prop_assert!(g.estimate_pages <= capacity);
                }
                let sum: u64 = g
                    .types
                    .iter()
                    .map(|t| sets[t.0 as usize].pages_for(mode))
                    .sum();
                prop_assert!(g.estimate_pages <= sum, "overlap can only shrink");
            }
        }
    }

    /// Balance equations conserve the replica total and give every group at
    /// least one replica, for arbitrary load vectors.
    #[test]
    fn balance_equations_conserve(loads in proptest::collection::vec((0.0f64..2.5, 1usize..8), 1..8),
                                  extra in 0usize..16) {
        let gl: Vec<GroupLoads> = loads
            .iter()
            .enumerate()
            .map(|(i, (load, replicas))| GroupLoads {
                group: GroupId(i),
                load: *load,
                replicas: *replicas,
            })
            .collect();
        let total = gl.len() + extra;
        let a = Allocator::new(AllocationConfig::default());
        let result = a.solve_balance(&gl, total);
        prop_assert_eq!(result.iter().map(|(_, n)| n).sum::<usize>(), total);
        prop_assert!(result.iter().all(|(_, n)| *n >= 1));
        // Determinism.
        prop_assert_eq!(result.clone(), a.solve_balance(&gl, total));
    }

    /// GSI certification: serially committed disjoint writesets never
    /// conflict; any writeset intersecting a later commit does.
    #[test]
    fn certification_soundness(rows in proptest::collection::vec(0u64..50, 2..30)) {
        let mut cert = Certifier::default();
        let mut committed: Vec<(u64, Version)> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let snapshot = cert.version();
            let ws = Writeset::new(
                TxnId(i as u64),
                TxnTypeId(0),
                Snapshot::at(snapshot),
                vec![WritesetItem { rel: RelationId(0), row: *row }],
            );
            // Fresh snapshot ⇒ certification must succeed.
            match cert.certify(SimTime::from_micros(i as u64), ws) {
                CertifyOutcome::Committed { version, .. } => committed.push((*row, version)),
                CertifyOutcome::Conflict => prop_assert!(false, "fresh snapshot conflicted"),
            }
        }
        // A stale snapshot conflicts iff some later commit wrote its row.
        for (row, version) in &committed {
            let stale = Version(version.0.saturating_sub(1));
            let ws = Writeset::new(
                TxnId(9_999),
                TxnTypeId(0),
                Snapshot::at(stale),
                vec![WritesetItem { rel: RelationId(0), row: *row }],
            );
            let outcome = cert.certify(SimTime::from_secs(1), ws);
            let later_write = committed.iter().any(|(r, v)| r == row && v.0 > stale.0);
            if later_write {
                prop_assert_eq!(outcome, CertifyOutcome::Conflict);
            } else {
                let committed_ok = matches!(outcome, CertifyOutcome::Committed { .. });
                prop_assert!(committed_ok, "stale-but-unconflicted snapshot must commit");
            }
        }
    }

    /// Writeset conflicts are symmetric and reflexive on overlap.
    #[test]
    fn conflict_symmetry(a in proptest::collection::btree_set((0u32..4, 0u64..40), 1..10),
                         b in proptest::collection::btree_set((0u32..4, 0u64..40), 1..10)) {
        let mk = |items: &std::collections::BTreeSet<(u32, u64)>| Writeset::new(
            TxnId(0),
            TxnTypeId(0),
            Snapshot::at(Version(0)),
            items.iter().map(|(r, row)| WritesetItem { rel: RelationId(*r), row: *row }).collect(),
        );
        let wa = mk(&a);
        let wb = mk(&b);
        prop_assert_eq!(wa.conflicts_with(&wb), wb.conflicts_with(&wa));
        let overlap = a.intersection(&b).count() > 0;
        prop_assert_eq!(wa.conflicts_with(&wb), overlap);
    }
}
