//! End-to-end integration tests: whole clusters under every policy.

use tashkent::prelude::*;
use tashkent_cluster::Experiment;

fn small_config(policy: PolicySpec) -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        clients: 24,
        think_mean_us: 300_000,
        ..ClusterConfig::paper_default()
    }
    .with_policy(policy)
}

#[test]
fn every_policy_completes_transactions() {
    let (workload, mix) = tpcw::workload_with_mix(tpcw::TpcwScale::Small, "shopping");
    for policy in [
        PolicySpec::RoundRobin,
        PolicySpec::LeastConnections,
        PolicySpec::Lard,
        PolicySpec::malb_sc(),
        PolicySpec::malb_sc_uf(),
    ] {
        let r = run(
            Experiment::new(small_config(policy), workload.clone(), mix.clone())
                .with_window(10, 30),
        )
        .expect("experiment runs to its End event");
        assert!(r.tps > 1.0, "{}: tps {}", policy.label(), r.tps);
        assert!(
            r.mean_response_s > 0.0 && r.mean_response_s < 30.0,
            "{}: response {}",
            policy.label(),
            r.mean_response_s
        );
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let (workload, mix) = tpcw::workload_with_mix(tpcw::TpcwScale::Small, "ordering");
    let go = |seed| {
        let mut config = small_config(PolicySpec::malb_sc());
        config.seed = seed;
        let r = run(Experiment::new(config, workload.clone(), mix.clone()).with_window(10, 30))
            .expect("experiment runs to its End event");
        (r.committed, r.aborts, r.updates)
    };
    assert_eq!(go(1), go(1), "same seed, same run");
    assert_ne!(go(1), go(2), "different seeds diverge");
}

#[test]
fn updates_commit_and_propagate_consistently() {
    let (workload, mix) = tpcw::workload_with_mix(tpcw::TpcwScale::Small, "ordering");
    let r = run(
        Experiment::new(small_config(PolicySpec::LeastConnections), workload, mix)
            .with_window(10, 40),
    )
    .expect("experiment runs to its End event");
    // Ordering mix is ~50 % updates.
    let frac = r.updates as f64 / r.committed.max(1) as f64;
    assert!(
        (0.40..0.60).contains(&frac),
        "update fraction {frac} should be ~0.5"
    );
    // Conflicts exist but are rare under session-local write patterns.
    assert!(r.abort_fraction() < 0.05, "aborts {}", r.abort_fraction());
}

#[test]
fn malb_beats_least_connections_on_contrived_thrash() {
    // Two transaction types whose working sets each fit a replica but
    // thrash when colocated: the textbook MALB case. Both types carry heavy
    // scans of disjoint tables sized just over half of memory.
    use tashkent_engine::{Access, PlanStep, TxnPlan, TxnType};
    use tashkent_storage::Catalog;
    use tashkent_workloads::{Mix, Workload};

    let mut catalog = Catalog::new();
    // Two ~250 MB tables; pool is 442 MB → one fits, two overflow it.
    let a = catalog.add_table("table_a", 31_500, 3_150_000);
    let b = catalog.add_table("table_b", 31_500, 3_150_000);
    let scan = |rel| {
        TxnPlan::new(vec![PlanStep::Read {
            rel,
            access: Access::RangeScan {
                fraction: 0.95,
                recent: true,
            },
        }])
    };
    let workload = Workload {
        name: "thrash".into(),
        catalog,
        types: vec![
            TxnType::new(tashkent_engine::TxnTypeId(0), "ScanA", scan(a)),
            TxnType::new(tashkent_engine::TxnTypeId(1), "ScanB", scan(b)),
        ],
    };
    let mix = Mix {
        name: "even".into(),
        weights: vec![1.0, 1.0],
    };

    let mk = |policy| {
        ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 500_000,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy)
    };

    let lc = run(Experiment::new(
        mk(PolicySpec::LeastConnections),
        workload.clone(),
        mix.clone(),
    )
    .with_window(30, 90))
    .expect("experiment runs to its End event");
    let malb = run(Experiment::new(mk(PolicySpec::malb_sc()), workload, mix).with_window(30, 90))
        .expect("experiment runs to its End event");
    assert!(
        malb.tps > 1.5 * lc.tps,
        "MALB {} vs LC {}: separation must beat colocation",
        malb.tps,
        lc.tps
    );
    // And the mechanism: MALB's separation runs from memory while LC's
    // colocation thrashes — in the extreme, LC completes (almost) nothing.
    assert!(malb.committed > 50, "MALB committed {}", malb.committed);
    assert!(
        malb.read_kb_per_txn < 50.0,
        "MALB must run from memory, reads {}",
        malb.read_kb_per_txn
    );
    assert!(
        lc.committed == 0 || lc.read_kb_per_txn > 2.0 * malb.read_kb_per_txn.max(1.0),
        "LC committed {} with reads {}",
        lc.committed,
        lc.read_kb_per_txn
    );
}

#[test]
fn update_filtering_reduces_applied_items() {
    // Two disjoint update types; with filtering each replica only applies
    // its own group's tables.
    use tashkent_engine::{PlanStep, TxnPlan, TxnType, WriteKind, WriteSpec};
    use tashkent_storage::Catalog;
    use tashkent_workloads::{Mix, Workload};

    let mut catalog = Catalog::new();
    let a = catalog.add_table("upd_a", 20_000, 2_000_000);
    let b = catalog.add_table("upd_b", 20_000, 2_000_000);
    let upd = |rel| {
        TxnPlan::new(vec![PlanStep::Write(WriteSpec {
            rel,
            rows: 2,
            kind: WriteKind::UpdateTail { window: 50_000 },
            theta: 0.0,
        })])
    };
    let workload = Workload {
        name: "updates".into(),
        catalog,
        types: vec![
            TxnType::new(tashkent_engine::TxnTypeId(0), "UpdA", upd(a)),
            TxnType::new(tashkent_engine::TxnTypeId(1), "UpdB", upd(b)),
        ],
    };
    let mix = Mix {
        name: "even".into(),
        weights: vec![1.0, 1.0],
    };
    let mut config = ClusterConfig {
        replicas: 4,
        clients: 16,
        think_mean_us: 300_000,
        stable_rounds_for_filter: 3,
        min_copies: 2,
        ..ClusterConfig::paper_default()
    }
    .with_policy(PolicySpec::malb_sc_uf());
    config.seed = 9;
    let r = run(Experiment::new(config, workload, mix).with_window(60, 60))
        .expect("experiment runs to its End event");
    assert!(r.lb.filters_installed, "filters must install once stable");
    assert!(r.tps > 1.0);
}

#[test]
fn rubis_bidding_runs_under_malb() {
    let (workload, mix) = rubis::workload_with_mix("bidding");
    let config = ClusterConfig {
        replicas: 4,
        clients: 20,
        think_mean_us: 300_000,
        ..ClusterConfig::paper_default()
    }
    .with_policy(PolicySpec::malb_sc());
    let r = run(Experiment::new(config, workload, mix).with_window(15, 45))
        .expect("experiment runs to its End event");
    assert!(r.tps > 1.0, "tps {}", r.tps);
    // AboutMe exists in some group.
    assert!(r
        .assignments
        .iter()
        .any(|g| g.types.iter().any(|t| t == "AboutMe")));
}

#[test]
fn standalone_calibration_produces_85_percent_point() {
    let (workload, mix) = tpcw::workload_with_mix(tpcw::TpcwScale::Small, "browsing");
    let base = ClusterConfig {
        think_mean_us: 300_000,
        ..ClusterConfig::paper_default()
    };
    let cal = calibrate_standalone(&base, &workload, &mix, &[2, 6, 12], 5, 15);
    assert_eq!(cal.sweep.len(), 3);
    assert!(cal.peak_tps > 0.0);
    let target = 0.85 * cal.peak_tps;
    let (_, tps_at) = cal
        .sweep
        .iter()
        .find(|(n, _)| *n == cal.clients_at_85)
        .unwrap();
    assert!(*tps_at >= target * 0.99);
}
