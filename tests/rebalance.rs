//! Integration tests for the live placement-rebalancing lifecycle:
//!
//! * **capped backfill is observable** — a bandwidth-capped copy completes
//!   later than an uncapped one, and quartering the cap pushes completion
//!   further out (the regression target: backfill used to be charged
//!   instantaneously, so `add_holder` had no cost no matter the volume);
//! * **pending holders are invisible to dispatch** — between the filter
//!   widening and [`FaultKind::Rereplicate`] landing in the fault log, the
//!   new holder stays ineligible for the group's types. The routing
//!   invariant is also a hard assertion inside `ClusterState::submit_txn`,
//!   so every capped run doubles as a "never dispatched mid-backfill"
//!   check;
//! * **the rebalance scenario converges** — the registered scenario keeps
//!   serving while groups migrate, and migrated groups never leave a group
//!   under `min_copies` holders.

use tashkent::cluster::{
    run, ClusterState, Ev, Experiment, FaultKind, PartialReplication, ReplicationPlanner, Scenario,
    ScenarioKnobs,
};
use tashkent::sim::{EventQueue, SimTime};
use tashkent::workloads::tpcw::{self, TpcwScale};

const REPLICAS: usize = 4;
const MIN_COPIES: usize = 2;
const INJECT_AT_SECS: u64 = 8;

/// Knobs for a quiet partial-replication run (no crash schedule, no
/// rebalancer ticks) with one injected re-replication — the isolated
/// backfill under test.
fn knobs(cap: Option<u64>) -> ScenarioKnobs {
    ScenarioKnobs {
        replicas: REPLICAS,
        clients_per_replica: 3,
        ..ScenarioKnobs::smoke()
    }
    .with_backfill_cap(cap)
}

/// Picks a relation group whose injected re-replication actually ships
/// bytes. Overlap through other groups can make a copy free, and a group
/// whose relations the mix never writes has nothing in the certifier log —
/// either would make the timing tests vacuous — so probe each candidate
/// with a deterministic uncapped run and take the first that ships.
fn group_that_ships_bytes() -> usize {
    let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
    let p = ReplicationPlanner::new(MIN_COPIES).plan(&workload, REPLICAS);
    (0..p.group_count())
        .find(|g| {
            let r = run(experiment(None, *g)).expect("probe run completes");
            r.faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::Rereplicate { bytes, .. } if bytes > 0))
        })
        .expect("some group's re-replication ships bytes")
}

fn experiment(cap: Option<u64>, group: usize) -> Experiment {
    PartialReplication {
        faults: false,
        ..PartialReplication::default()
    }
    .experiment(&knobs(cap))
    .with_injection(
        SimTime::from_secs(INJECT_AT_SECS),
        Ev::Rereplicate { group },
    )
}

/// The simulated time at which the injected backfill completed (the fault
/// is recorded at completion, not at injection).
fn completion_us(cap: Option<u64>, group: usize) -> u64 {
    let r = run(experiment(cap, group)).expect("run completes");
    let f = r
        .faults
        .iter()
        .find(|f| matches!(f.kind, FaultKind::Rereplicate { .. }))
        .expect("injected re-replication recorded");
    if let FaultKind::Rereplicate { bytes, .. } = f.kind {
        assert!(bytes > 0, "the chosen group must ship bytes");
    }
    assert!(r.migration_bytes > 0);
    f.at.as_micros()
}

#[test]
fn backfill_completion_scales_inversely_with_the_bandwidth_cap() {
    let group = group_that_ships_bytes();
    let instant = completion_us(None, group);
    let fast = completion_us(Some(64 * 1024), group);
    let slow = completion_us(Some(16 * 1024), group);
    let injected = SimTime::from_secs(INJECT_AT_SECS).as_micros();
    assert!(instant >= injected);
    assert!(
        fast > instant,
        "a capped copy must finish later than an instantaneous one: {fast} vs {instant}"
    );
    assert!(
        slow > fast,
        "quartering the cap must push completion further out: {slow} vs {fast}"
    );
}

#[test]
fn still_backfilling_holder_is_never_eligible_for_dispatch() {
    let group = group_that_ships_bytes();
    // A tight cap keeps the copy in flight across many events.
    let exp = experiment(Some(2 * 1024), group);
    assert_eq!(exp.phases.len(), 1, "helper supports single-phase runs");
    let mixes = vec![exp.phases[0].1.clone()];
    let total = exp.phases[0].0;
    let mut state = ClusterState::new(exp.config, exp.workload, mixes);
    let mut queue = EventQueue::new();
    state.prime(&mut queue);
    queue.schedule(SimTime::from_secs(exp.warmup_secs), Ev::EndWarmup);
    queue.schedule(SimTime::from_secs(total), Ev::End);
    for (at, ev) in exp.injections {
        queue.schedule(at, ev);
    }
    let before: Vec<usize> = state
        .placement()
        .expect("partial run has a placement")
        .holders(group)
        .to_vec();
    let types = state
        .placement()
        .expect("partial run has a placement")
        .groups()[group]
        .types
        .clone();
    let mut pending_boundaries = 0u64;
    while !state.ended() {
        let (now, ev) = queue.pop().expect("End event scheduled");
        // submit_txn hard-asserts dispatch eligibility on every submission,
        // so simply driving the run is the "never dispatched" regression
        // check; on top of that, pin the mask-level reason at every event
        // boundary while the copy is in flight.
        state.handle(now, ev, &mut queue);
        let p = state.placement().expect("partial run has a placement");
        if let Some(target) = p
            .holders(group)
            .iter()
            .copied()
            .find(|r| !before.contains(r))
        {
            if !p.pending_relations(target).is_empty() {
                pending_boundaries += 1;
                for t in &types {
                    assert!(
                        !p.eligible(*t, target),
                        "still-backfilling holder {target} eligible for type {t:?} at {now:?}"
                    );
                }
            }
        }
    }
    assert!(
        pending_boundaries > 100,
        "the capped copy must stay in flight across many events (got {pending_boundaries})"
    );
    // And after completion the holder is eligible — the gate lifts.
    let p = state.placement().expect("partial run has a placement");
    let target = p
        .holders(group)
        .iter()
        .copied()
        .find(|r| !before.contains(r))
        .expect("injected re-replication added a holder");
    assert!(p.pending_relations(target).is_empty());
    for t in &types {
        assert!(p.eligible(*t, target), "completed holder stays barred");
    }
}

#[test]
fn rebalance_scenario_keeps_groups_durable_while_migrating() {
    let k = ScenarioKnobs {
        replicas: REPLICAS,
        clients_per_replica: 3,
        ..ScenarioKnobs::smoke()
    };
    let r = tashkent::cluster::run_scenario("rebalance", &k).expect("scenario completes");
    assert!(r.committed > 0, "cluster kept serving while migrating");
    assert!(r.migration_bytes > 0, "migrations must ship bytes");
    // Donors are only dropped at copy completion and never below
    // min_copies, so every migration in the log is a safe handoff.
    for f in &r.faults {
        if let FaultKind::Migrate { from, to, .. } = f.kind {
            assert_ne!(from, to, "a migration must actually move the group");
        }
    }
}
