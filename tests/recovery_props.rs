//! Property-based recovery invariants (§3 recovery, §4.2.1 fault
//! tolerance), via the offline `proptest` stand-in:
//!
//! * **catch-up**: however far behind a recovered replica restarts, one
//!   log replay from the certifier's persistent log brings it exactly to
//!   the certifier's version — and the log itself never loses a committed
//!   transaction (versions are a contiguous prefix);
//! * **harness catch-up**: the same invariant through the event loop — a
//!   `ReplicaCrash`/`ReplicaRecover` pair injected at arbitrary times
//!   leaves the victim at the certifier's version the instant recovery
//!   completes;
//! * **dispatch safety**: whatever subset of replicas is dead (short of
//!   all of them), no policy ever dispatches to a crashed replica, and
//!   every replica serves again after recovery;
//! * **transient partitions are free**: whenever a control-link partition
//!   heals before the detector's dead threshold, the victim is re-trusted
//!   with zero re-replication — false suspicion never moves data.

use proptest::prelude::*;
use tashkent::certifier::Certifier;
use tashkent::cluster::{
    ClusterConfig, Ev, FaultKind, PlacementSpec, PolicySpec, ReplicaHealth, World, CONTROL_NODE,
};
use tashkent::core::{LardConfig, LoadBalancer, MalbConfig, ReplicaId, WorkingSet};
use tashkent::engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent::replica::{ReplicaConfig, ReplicaNode};
use tashkent::sim::{SimRng, SimTime};
use tashkent::storage::{Catalog, RelationId};
use tashkent::workloads::tpcw::{self, TpcwScale};

fn mini_catalog() -> Catalog {
    let mut c = Catalog::new();
    let t = c.add_table("t", 64, 6_400);
    c.add_index("t_pk", t, 8, 6_400);
    c
}

fn commit_n(cert: &mut Certifier, n: u64) {
    for i in 0..n {
        let ws = Writeset::new(
            TxnId(i),
            TxnTypeId(0),
            Snapshot::at(Version(cert.version().0)),
            vec![WritesetItem {
                rel: RelationId(0),
                row: i % 97,
            }],
        );
        cert.certify(SimTime::from_millis(i), ws);
    }
}

proptest! {
    /// Log replay from an arbitrary checkpoint reaches exactly the
    /// certifier's version, and the log holds every committed transaction
    /// as a contiguous version prefix (none lost).
    #[test]
    fn replay_catches_up_from_any_checkpoint(
        commits in 1u64..80,
        checkpoint_permille in 0u64..1000,
        seed in 1u64..1000,
    ) {
        let mut cert = Certifier::default();
        commit_n(&mut cert, commits);
        // No committed transaction is lost: the persistent log is a
        // contiguous prefix 1..=commits.
        let log = cert.writesets_since(Version(0));
        prop_assert_eq!(log.len() as u64, commits);
        for (i, cw) in log.iter().enumerate() {
            prop_assert_eq!(cw.version, Version(i as u64 + 1));
        }

        let mut node = ReplicaNode::new(
            mini_catalog(),
            ReplicaConfig::default(),
            SimRng::seed_from(seed),
        );
        node.apply_writesets(SimTime::from_secs(1), log);
        prop_assert_eq!(node.applied(), cert.version());

        // Crash, restart from an arbitrary earlier checkpoint, replay.
        node.crash();
        let checkpoint = Version(commits * checkpoint_permille / 1000);
        node.recover(checkpoint);
        node.apply_writesets(SimTime::from_secs(2), cert.writesets_since(checkpoint));
        prop_assert_eq!(node.applied(), cert.version());
        prop_assert_eq!(node.outstanding(), 0, "crash drained the admission queue");
    }

    /// Through the event loop: crash and recover a replica at arbitrary
    /// times; the instant recovery completes, the victim has applied
    /// exactly the certifier's version (the run ends at that instant so
    /// later commits cannot mask a partial replay).
    #[test]
    fn harness_recovery_applies_the_certifier_version(
        seed in 1u64..500,
        crash_at in 2u64..6,
        downtime in 1u64..4,
        victim in 0usize..2,
    ) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 2,
            clients: 8,
            think_mean_us: 200_000,
            seed,
            ..ClusterConfig::paper_default()
        };
        let mut world = World::new(config, workload, vec![mix]);
        world.prime();
        let recover_at = crash_at + downtime;
        world.schedule(SimTime::from_secs(crash_at), Ev::ReplicaCrash { replica: victim });
        world.schedule(SimTime::from_secs(recover_at), Ev::ReplicaRecover { replica: victim });
        // Same instant, scheduled after the recovery: FIFO runs it second.
        world.schedule(SimTime::from_secs(recover_at), Ev::End);
        world.run_to_end().expect("End event scheduled");
        prop_assert!(world.node(victim).is_up());
        prop_assert_eq!(
            world.replica(victim).applied(),
            world.certifier().version(),
            "log replay must catch the replica up, seed {}", seed
        );
    }

    /// No dispatch policy ever selects a crashed replica, and a recovered
    /// replica serves again.
    #[test]
    fn dispatch_never_selects_a_crashed_replica(
        replicas in 2usize..8,
        dead_mask in any::<u32>(),
        policy in 0u8..4,
        dispatches in 1usize..60,
    ) {
        let mut lb = match policy {
            0 => LoadBalancer::round_robin(replicas),
            1 => LoadBalancer::least_connections(replicas),
            2 => LoadBalancer::lard(replicas, LardConfig::default()),
            _ => {
                // Two disjoint working sets over however many replicas.
                let sets = vec![
                    WorkingSet {
                        txn_type: TxnTypeId(0),
                        relations: [(RelationId(0), 80u64)].into_iter().collect(),
                        scanned: [RelationId(0)].into_iter().collect(),
                    },
                    WorkingSet {
                        txn_type: TxnTypeId(1),
                        relations: [(RelationId(1), 80u64)].into_iter().collect(),
                        scanned: [RelationId(1)].into_iter().collect(),
                    },
                ];
                let cfg = MalbConfig::paper_default(
                    tashkent::core::EstimationMode::SizeContent,
                    100,
                );
                LoadBalancer::malb(replicas, sets, cfg)
            }
        };
        // Kill an arbitrary subset, always leaving replica 0 alive.
        let dead: Vec<usize> = (1..replicas).filter(|r| dead_mask & (1 << r) != 0).collect();
        for &r in &dead {
            lb.replica_failed(ReplicaId(r));
        }
        for i in 0..dispatches {
            let choice = lb.dispatch(TxnTypeId((i % 2) as u32));
            prop_assert!(
                !dead.contains(&choice.0),
                "policy {} dispatched to dead replica {}", policy, choice.0
            );
        }
        // Recovery: every replica is eligible again, and sustained load
        // reaches the recovered ones under the connection-counting
        // policies.
        for &r in &dead {
            lb.replica_recovered(ReplicaId(r));
        }
        if policy == 1 {
            for _ in 0..replicas * 3 {
                lb.dispatch(TxnTypeId(0));
            }
            for &r in &dead {
                prop_assert!(
                    lb.connections()[r] > 0,
                    "recovered replica {} never served again", r
                );
            }
        }
    }

    /// A control-link partition healed before the detector's dead
    /// threshold never triggers re-replication: wherever and whenever it
    /// strikes, the victim stays up, is re-trusted after the heal, and no
    /// relation group moves. With the default 500 ms heartbeat and dead
    /// threshold of 5 misses, any outage under 2 s covers at most 4 ticks.
    #[test]
    fn transient_partitions_cost_no_rereplication(
        seed in 1u64..200,
        partition_at_ms in 2_000u64..6_000,
        partition_len_ms in 100u64..1_900,
        victim in 0usize..3,
    ) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let mut config = ClusterConfig {
            replicas: 3,
            clients: 9,
            think_mean_us: 200_000,
            seed,
            heartbeat_period_us: 500_000,
            client_timeout_us: 1_000_000,
            ..ClusterConfig::paper_default().with_policy(PolicySpec::malb_sc())
        };
        config.placement = PlacementSpec::Partial { min_copies: 2 };
        let mut world = World::new(config, workload, vec![mix]);
        world.prime();
        world.schedule(SimTime::from_secs(1), Ev::EndWarmup);
        world.schedule(
            SimTime::from_millis(partition_at_ms),
            Ev::LinkPartition {
                a: CONTROL_NODE,
                b: victim,
                heal_at: SimTime::from_millis(partition_at_ms + partition_len_ms),
            },
        );
        world.schedule(SimTime::from_secs(12), Ev::End);
        world.run_to_end().expect("End event scheduled");
        prop_assert!(world.node(victim).is_up(), "a partition never downs a node");
        let r = world.finish_result();
        let kinds: Vec<FaultKind> = r.faults.iter().map(|f| f.kind).collect();
        prop_assert!(!kinds.contains(&FaultKind::ReplicaDead(victim)));
        prop_assert!(
            !kinds.iter().any(|k| matches!(
                k,
                FaultKind::Rereplicate { .. } | FaultKind::Migrate { .. }
            )),
            "a transient partition moved data, seed {}: {:?}", seed, kinds
        );
        prop_assert_eq!(r.migration_bytes, 0);
        // If the detector got as far as suspicion, the heal restored trust.
        if kinds.contains(&FaultKind::ReplicaSuspected(victim)) {
            prop_assert!(kinds.contains(&FaultKind::ReplicaTrusted(victim)));
        }
        prop_assert_eq!(world.replica_health(victim), ReplicaHealth::Live);
    }
}
