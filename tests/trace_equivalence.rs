//! Cross-driver *trace* equivalence: with tracing enabled, the JSONL
//! artifact must be byte-identical between the sequential reference driver
//! and every parallel configuration.
//!
//! This is a strictly stronger check than the result fingerprints in
//! `driver_equivalence`: it pins not just the outcome of every transaction
//! but the full interleaving of lifecycle events — arrivals, dispatches,
//! execution steps, certification decisions, completions, faults,
//! utilization samples — at their exact simulated timestamps. Any
//! divergence in the parallel driver's shard-local buffering or merge
//! replay order shows up as a byte diff here before it could ever corrupt
//! a result.

use std::path::PathBuf;

use tashkent::cluster::{run_scenario, DriverKind, ScenarioKnobs, TraceConfig};

/// A unique temp path per (test, label) so concurrent test binaries and
/// threads never collide.
fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tashkent-trace-{}-{label}.jsonl",
        std::process::id()
    ))
}

/// The parallel configurations of the acceptance matrix: the 2/4/8 worker
/// widths plus the stress mode that forces even tiny windows through the
/// pool's SPSC lanes.
fn parallel_kinds() -> Vec<DriverKind> {
    let mut kinds: Vec<DriverKind> = [2, 4, 8]
        .into_iter()
        .map(|threads| DriverKind::Parallel { threads })
        .collect();
    kinds.push(DriverKind::ParallelTuned {
        threads: 2,
        min_dispatch: 0,
    });
    kinds
}

/// Runs `scenario` traced under `kind` and returns the raw JSONL bytes.
fn traced_jsonl(scenario: &str, knobs: &ScenarioKnobs, kind: DriverKind, label: &str) -> Vec<u8> {
    let path = tmp(label);
    let knobs = knobs
        .clone()
        .with_driver(kind)
        .with_trace(path.to_str().expect("temp path is valid UTF-8"));
    let result = run_scenario(scenario, &knobs).expect("traced run completes");
    let summary = result
        .trace_summary
        .expect("tracing was enabled, so the result carries a summary");
    assert_eq!(summary.dropped, 0, "smoke-scale runs fit the ring buffer");
    assert!(summary.recorded > 0, "a traced run records events");
    let bytes = std::fs::read(&path).expect("trace file was written");
    let chrome = path.with_extension("jsonl.chrome.json");
    assert!(chrome.exists(), "Chrome export written alongside JSONL");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&chrome);
    bytes
}

fn assert_traces_byte_equal(scenario: &str, knobs: ScenarioKnobs) {
    let seed = knobs.seed;
    let sequential = traced_jsonl(
        scenario,
        &knobs,
        DriverKind::Sequential,
        &format!("{scenario}-{seed}-seq"),
    );
    assert!(
        sequential.ends_with(b"\n"),
        "JSONL artifact is newline-terminated"
    );
    for kind in parallel_kinds() {
        let label = format!("{scenario}-{seed}-{kind:?}").replace([' ', '{', '}', ':', ','], "");
        let parallel = traced_jsonl(scenario, &knobs, kind, &label);
        assert!(
            sequential == parallel,
            "trace diverged on {scenario} seed {seed} under {kind:?}: \
             sequential {} bytes, parallel {} bytes, first differing line {}",
            sequential.len(),
            parallel.len(),
            first_diff_line(&sequential, &parallel),
        );
    }
}

/// 1-based line number of the first differing JSONL line (diagnostics).
fn first_diff_line(a: &[u8], b: &[u8]) -> usize {
    let la = a.split(|&c| c == b'\n');
    let lb = b.split(|&c| c == b'\n');
    la.zip(lb).take_while(|(x, y)| x == y).count() + 1
}

#[test]
fn failover_traces_are_byte_equal_across_drivers_and_seeds() {
    // Replica crash + recovery + certifier leader kill: the trace carries
    // fault instants, gave-up clients, and retry arrivals.
    for seed in [42, 7] {
        assert_traces_byte_equal("failover", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn rebalance_traces_are_byte_equal_across_drivers_and_seeds() {
    // Partial replication with capped backfill and rebalancer ticks: the
    // trace carries backfill chunks, rebalance decisions, and migrations,
    // all of which must merge back deterministically.
    for seed in [42, 7] {
        assert_traces_byte_equal("rebalance", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn detection_traces_are_byte_equal_across_drivers_and_seeds() {
    // Suspicion-based detection: heartbeat misses, suspect/unsuspect
    // verdicts, redo-replay spans, and timeout-retry arrivals all land in
    // the trace, and heartbeat ticks are window barriers — the merged
    // interleaving must still be byte-identical.
    for seed in [42, 7] {
        assert_traces_byte_equal("detection", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn oracle_mode_traces_carry_no_detection_kinds() {
    // With the detector off (every non-detection scenario), none of the
    // detector's trace kinds may appear: default runs stay byte-compatible
    // with the pre-detector tracer.
    let path = tmp("oracle-kinds");
    let knobs = ScenarioKnobs::smoke().with_trace(path.to_str().expect("temp path is valid UTF-8"));
    run_scenario("failover", &knobs).expect("traced oracle-mode run completes");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    for kind in [
        "\"k\":\"suspect\"",
        "\"k\":\"unsuspect\"",
        "\"k\":\"heartbeat_miss\"",
        "\"k\":\"redo_start\"",
        "\"k\":\"redo_done\"",
    ] {
        assert!(
            !text.contains(kind),
            "oracle-mode trace leaked a detector event: {kind}"
        );
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("jsonl.chrome.json"));
}

#[test]
fn untraced_runs_carry_no_summary() {
    let r = run_scenario("failover", &ScenarioKnobs::smoke()).expect("untraced run completes");
    assert!(r.trace_summary.is_none(), "tracing is off by default");
}

#[test]
fn ring_buffer_cap_is_honored_and_drops_are_accounted() {
    use tashkent::cluster::{run, Failover, Scenario};
    let path = tmp("capped");
    let mut exp = Failover::default().experiment(&ScenarioKnobs::smoke());
    exp.config.trace = TraceConfig {
        jsonl_path: Some(path.to_str().expect("temp path is valid UTF-8").to_string()),
        chrome_path: None,
        max_events: 100,
    };
    let r = run(exp).expect("capped traced run completes");
    let summary = r.trace_summary.expect("tracing enabled");
    assert!(summary.emitted > 100, "the run emits more than the cap");
    assert_eq!(summary.recorded, 100, "ring buffer keeps exactly the cap");
    assert_eq!(
        summary.dropped,
        summary.emitted - 100,
        "every overflow is accounted"
    );
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let trailer = text.lines().last().expect("summary trailer present");
    assert!(
        trailer.contains("\"k\":\"summary\"") && trailer.contains("\"dropped\":"),
        "trailer surfaces the drop count: {trailer}"
    );
    assert_eq!(
        text.lines().count(),
        101,
        "100 recorded events + the summary trailer"
    );
    let _ = std::fs::remove_file(&path);
}
