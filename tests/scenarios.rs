//! The scenario registry as the single shared harness: every built-in
//! scenario runs end-to-end, deterministically, at smoke scale.

use tashkent::prelude::*;

/// The fields a run's `Metrics` summary boils down to for comparison.
fn summary(r: &RunResult) -> (u64, u64, u64, u64, String, String) {
    (
        r.committed,
        r.updates,
        r.aborts,
        r.retries_exhausted,
        format!("{:.6}/{:.6}", r.tps, r.mean_response_s),
        format!("{:.3}/{:.3}", r.read_kb_per_txn, r.write_kb_per_txn),
    )
}

#[test]
fn every_registered_scenario_runs_at_smoke_scale() {
    let knobs = ScenarioKnobs::smoke();
    let scenarios = registry();
    assert!(
        scenarios.len() >= 5,
        "registry must hold the three paper scenarios plus failover and partial replication"
    );
    for s in &scenarios {
        let r = s.run(&knobs).expect("scenario runs to its End event");
        assert!(r.committed > 0, "{}: nothing committed", s.name());
        assert!(r.tps > 0.1, "{}: tps {}", s.name(), r.tps);
        assert!(
            r.mean_response_s > 0.0 && r.mean_response_s < 60.0,
            "{}: response {}",
            s.name(),
            r.mean_response_s
        );
    }
}

#[test]
fn registry_covers_the_built_in_scenarios() {
    for name in [
        "tpcw-steady-state",
        "rubis-auction",
        "dynamic-reconfig",
        "failover",
        "partial-replication",
    ] {
        let s = scenario(name).unwrap_or_else(|| panic!("{name} missing from registry"));
        assert_eq!(s.name(), name);
        assert!(!s.summary().is_empty());
    }
}

#[test]
fn same_seed_same_metrics_summary() {
    // The deterministic-seed smoke test: two runs of the same scenario with
    // the same knobs must produce identical Metrics summaries.
    for name in [
        "tpcw-steady-state",
        "rubis-auction",
        "dynamic-reconfig",
        "failover",
        "partial-replication",
    ] {
        let knobs = ScenarioKnobs::smoke().with_seed(1234);
        let a = run_scenario(name, &knobs).expect("scenario runs to its End event");
        let b = run_scenario(name, &knobs).expect("scenario runs to its End event");
        assert_eq!(summary(&a), summary(&b), "{name}: runs diverged");
        assert_eq!(
            a.completions, b.completions,
            "{name}: completion timestamps diverged"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_scenario("tpcw-steady-state", &ScenarioKnobs::smoke().with_seed(1))
        .expect("scenario runs to its End event");
    let b = run_scenario("tpcw-steady-state", &ScenarioKnobs::smoke().with_seed(2))
        .expect("scenario runs to its End event");
    assert_ne!(
        summary(&a),
        summary(&b),
        "different seeds must produce different runs"
    );
}

#[test]
fn policy_knob_reaches_the_cluster() {
    let knobs = ScenarioKnobs::smoke().with_policy(PolicySpec::RoundRobin);
    let r = run_scenario("tpcw-steady-state", &knobs).expect("scenario runs to its End event");
    // Round-robin has no MALB groups; the MALB default would produce some.
    assert!(r.assignments.is_empty());
    let malb = run_scenario("tpcw-steady-state", &ScenarioKnobs::smoke())
        .expect("scenario runs to its End event");
    assert!(!malb.assignments.is_empty());
}

#[test]
fn dynamic_reconfig_switches_mixes() {
    // With browsing (5 % updates) as the middle phase, update fraction over
    // the whole window sits well under the shopping mix's steady share.
    let knobs = ScenarioKnobs {
        measured_secs: 45,
        ..ScenarioKnobs::smoke()
    };
    let r = run_scenario("dynamic-reconfig", &knobs).expect("scenario runs to its End event");
    assert!(r.committed > 0);
    let frac = r.updates as f64 / r.committed.max(1) as f64;
    assert!(
        frac < 0.35,
        "update fraction {frac} should reflect the browsing phase"
    );
}
