//! Cross-driver equivalence: the windowed multi-threaded
//! [`ParallelDriver`] must be observationally identical to the sequential
//! reference driver — same committed/abort counts, same disk traffic, same
//! response statistics — for every workload, policy, and seed.
//!
//! This is the contract that makes the driver a pure performance knob: any
//! divergence is a bug in the lookahead window or the deterministic merge,
//! never an acceptable approximation.

use tashkent::cluster::{
    run_scenario, DriverKind, Failover, FaultEvent, PolicySpec, RunResult, Scenario, ScenarioKnobs,
};

/// The fields a run is judged by, exact to the bit.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    committed: u64,
    updates: u64,
    aborts: u64,
    retries_exhausted: u64,
    read_kb_per_txn: u64,
    write_kb_per_txn: u64,
    mean_response_us: u64,
    completions: usize,
    /// Crash/recover/failover/re-replication events with their exact
    /// effect times.
    faults: Vec<FaultEvent>,
    /// Partial-replication propagation accounting, exact to the byte.
    propagated_ws_bytes: u64,
    filtered_ws_bytes: u64,
    /// Placement-backfill traffic (re-replication + skew migration), exact
    /// to the byte — covers the rebalancing lifecycle's copies.
    migration_bytes: u64,
    /// Sharded certification: per-group global commit versions, ascending
    /// — the decide order itself is part of the contract (empty under the
    /// unified certifier).
    cert_group_commits: Vec<Vec<u64>>,
    /// Checkpoint-lag recovery's redo-window accounting, exact to the byte
    /// and microsecond.
    redo_bytes: u64,
    redo_us: u64,
}

impl Fingerprint {
    fn of(r: &RunResult) -> Self {
        Fingerprint {
            committed: r.committed,
            updates: r.updates,
            aborts: r.aborts,
            retries_exhausted: r.retries_exhausted,
            // Exact equality on the underlying byte counters: kb/txn is a
            // pure function of (bytes, committed), both integers.
            read_kb_per_txn: r.read_kb_per_txn.to_bits(),
            write_kb_per_txn: r.write_kb_per_txn.to_bits(),
            mean_response_us: (r.mean_response_s * 1e6).round() as u64,
            completions: r.completions.len(),
            faults: r.faults.clone(),
            propagated_ws_bytes: r.propagated_ws_bytes,
            filtered_ws_bytes: r.filtered_ws_bytes,
            migration_bytes: r.migration_bytes,
            cert_group_commits: r.cert_group_commits.clone(),
            redo_bytes: r.redo_bytes,
            redo_us: r.redo_us,
        }
    }
}

/// Every parallel configuration each scenario is checked under: the worker
/// widths of the acceptance matrix plus the stress mode — `min_dispatch =
/// 0` forces even the tiniest multi-shard window through the persistent
/// worker pool's SPSC lanes, which the production threshold (and the
/// host-parallelism clamp) would keep inline. Widths are forced explicitly
/// so the shard path is exercised even on a single-core host.
fn parallel_kinds() -> Vec<DriverKind> {
    let mut kinds: Vec<DriverKind> = [2, 4, 8]
        .into_iter()
        .map(|threads| DriverKind::Parallel { threads })
        .collect();
    kinds.push(DriverKind::ParallelTuned {
        threads: 2,
        min_dispatch: 0,
    });
    kinds
}

fn assert_drivers_agree(scenario: &str, knobs: ScenarioKnobs) {
    let sequential = run_scenario(scenario, &knobs.clone().with_driver(DriverKind::Sequential))
        .expect("sequential run completes");
    for kind in parallel_kinds() {
        let parallel = run_scenario(scenario, &knobs.clone().with_driver(kind))
            .expect("parallel run completes");
        assert_eq!(
            Fingerprint::of(&sequential),
            Fingerprint::of(&parallel),
            "drivers diverged on {scenario} with seed {} under {kind:?}",
            knobs.seed
        );
        assert_eq!(
            sequential.completions, parallel.completions,
            "completion timestamps diverged on {scenario} with seed {} under {kind:?}",
            knobs.seed
        );
    }
}

#[test]
fn tpcw_runs_identically_under_both_drivers_across_seeds() {
    for seed in [1, 7, 42] {
        assert_drivers_agree("tpcw-steady-state", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn rubis_runs_identically_under_both_drivers_across_seeds() {
    for seed in [3, 11, 42] {
        assert_drivers_agree("rubis-auction", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn equivalence_runs_actually_defer_stoppers() {
    // The bit-exactness above would be vacuous for the deferred-stopper
    // machinery if windows never contained one: pin that the scenarios the
    // suite runs do defer (certifier round-trips, completions, maintenance
    // rounds inside windows).
    let result = run_scenario(
        "tpcw-steady-state",
        &ScenarioKnobs::smoke().with_driver(DriverKind::Parallel { threads: 2 }),
    )
    .expect("parallel run completes");
    let stats = result
        .driver_stats
        .expect("parallel runs record window stats");
    assert!(
        stats.deferred > 0,
        "smoke runs must defer stoppers into the merge: {stats:?}"
    );
}

#[test]
fn malb_with_filtering_runs_identically_under_both_drivers() {
    // Update filtering exercises the certifier round-trip and filter
    // installs — the paths with the trickiest window barriers.
    assert_drivers_agree(
        "tpcw-steady-state",
        ScenarioKnobs::smoke().with_policy(PolicySpec::malb_sc_uf()),
    );
}

#[test]
fn wider_cluster_runs_identically_under_both_drivers() {
    // More replicas per window: multi-shard merges every window.
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 4,
        ..ScenarioKnobs::smoke()
    };
    assert_drivers_agree("tpcw-steady-state", knobs);
}

#[test]
fn failover_runs_identically_under_both_drivers_across_seeds_and_threads() {
    // The failure path is the trickiest window territory: crash events
    // orphan queued steps (which must merge to nothing), recovery replays
    // the certifier log between windows, and the fault log's timing is part
    // of the fingerprint. 3+ seeds, and every parallel width against the
    // same sequential reference.
    for seed in [5, 21, 42] {
        let knobs = ScenarioKnobs::smoke().with_seed(seed);
        let sequential = run_scenario(
            "failover",
            &knobs.clone().with_driver(DriverKind::Sequential),
        )
        .expect("sequential failover run completes");
        assert!(
            !sequential.faults.is_empty(),
            "failover scenario must inject faults"
        );
        for kind in parallel_kinds() {
            let parallel = run_scenario("failover", &knobs.clone().with_driver(kind))
                .expect("parallel failover run completes");
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "drivers diverged on failover with seed {seed} under {kind:?}"
            );
            assert_eq!(
                sequential.completions, parallel.completions,
                "completion timestamps diverged on failover with seed {seed} under {kind:?}"
            );
        }
    }
}

#[test]
fn multi_victim_failover_on_a_wider_cluster_runs_identically() {
    // More replicas → multi-shard windows straddle the crash/recover
    // barriers; crash half the cluster at once so several shards carry
    // stale steps into the same windows (the registered scenario's default
    // crashes only one replica, which can't cover the multi-shard stale
    // merge).
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 4,
        ..ScenarioKnobs::smoke()
    };
    let scenario = Failover {
        crashes: 2,
        ..Failover::default()
    };
    let sequential = scenario
        .run(&knobs.clone().with_driver(DriverKind::Sequential))
        .expect("sequential multi-victim run completes");
    assert_eq!(
        sequential
            .faults
            .iter()
            .filter(|f| matches!(f.kind, tashkent::cluster::FaultKind::ReplicaCrash(_)))
            .count(),
        2,
        "both victims must actually crash"
    );
    let parallel = scenario
        .run(
            &knobs
                .clone()
                .with_driver(DriverKind::Parallel { threads: 2 }),
        )
        .expect("parallel multi-victim run completes");
    assert_eq!(
        Fingerprint::of(&sequential),
        Fingerprint::of(&parallel),
        "drivers diverged on the multi-victim failover run"
    );
    assert_eq!(sequential.completions, parallel.completions);
}

#[test]
fn partial_replication_runs_identically_under_both_drivers_across_seeds_and_threads() {
    // Partial replication adds placement-restricted dispatch, holder-only
    // propagation accounting (in the fingerprint, exact to the byte), and
    // crash-triggered re-replication events (in the fault log) on top of
    // the failover machinery. 2+ seeds, every parallel width against the
    // same sequential reference.
    for seed in [9, 42] {
        let knobs = ScenarioKnobs {
            replicas: 4,
            clients_per_replica: 4,
            ..ScenarioKnobs::smoke()
        }
        .with_seed(seed);
        let sequential = run_scenario(
            "partial-replication",
            &knobs.clone().with_driver(DriverKind::Sequential),
        )
        .expect("sequential partial-replication run completes");
        assert!(
            sequential
                .faults
                .iter()
                .any(|f| matches!(f.kind, tashkent::cluster::FaultKind::Rereplicate { .. })),
            "the crash must force re-replication events into the fingerprint"
        );
        assert!(sequential.filtered_ws_bytes > 0, "placement must filter");
        for kind in parallel_kinds() {
            let parallel = run_scenario("partial-replication", &knobs.clone().with_driver(kind))
                .expect("parallel partial-replication run completes");
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "drivers diverged on partial-replication with seed {seed} under {kind:?}"
            );
            assert_eq!(
                sequential.completions, parallel.completions,
                "completion timestamps diverged on partial-replication with seed {seed} under {kind:?}"
            );
        }
    }
}

#[test]
fn rebalance_runs_identically_under_both_drivers_across_seeds_and_threads() {
    // Live rebalancing exercises the newest window territory: bandwidth-
    // capped backfill chunks interleave with foreground propagation,
    // eligibility masks flip at BackfillDone, the rebalancer reads balancer
    // loads at its tick, and migration drops donors mid-run. The fault log
    // (with exact bytes), migration_bytes, and completion timestamps are
    // all in the fingerprint. 2 seeds, every parallel width against the
    // same sequential reference.
    for seed in [13, 42] {
        let knobs = ScenarioKnobs {
            replicas: 4,
            clients_per_replica: 4,
            ..ScenarioKnobs::smoke()
        }
        .with_seed(seed);
        let sequential = run_scenario(
            "rebalance",
            &knobs.clone().with_driver(DriverKind::Sequential),
        )
        .expect("sequential rebalance run completes");
        assert!(
            sequential.faults.iter().any(|f| matches!(
                f.kind,
                tashkent::cluster::FaultKind::Rereplicate { .. }
                    | tashkent::cluster::FaultKind::Migrate { .. }
            )),
            "the rebalance scenario must put backfill events into the fingerprint"
        );
        for kind in parallel_kinds() {
            let parallel = run_scenario("rebalance", &knobs.clone().with_driver(kind))
                .expect("parallel rebalance run completes");
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "drivers diverged on rebalance with seed {seed} under {kind:?}"
            );
            assert_eq!(
                sequential.completions, parallel.completions,
                "completion timestamps diverged on rebalance with seed {seed} under {kind:?}"
            );
        }
    }
}

#[test]
fn min_copies_at_cluster_size_reproduces_full_replication_bit_for_bit() {
    // The degenerate `min_copies = cluster size` placement must be
    // indistinguishable from full replication: same dispatch choices, same
    // propagation, same bytes — for the existing scenarios, same seeds,
    // both drivers, and with §3 update filtering still applying unchanged.
    for (scenario, policy) in [
        ("tpcw-steady-state", None),
        ("tpcw-steady-state", Some(PolicySpec::malb_sc_uf())),
        ("rubis-auction", None),
    ] {
        for driver in [DriverKind::Sequential, DriverKind::Parallel { threads: 2 }] {
            let mut knobs = ScenarioKnobs::smoke().with_driver(driver);
            knobs.policy = policy;
            let full = run_scenario(scenario, &knobs).expect("full-replication run completes");
            let degenerate = run_scenario(
                scenario,
                &knobs.clone().with_min_copies(Some(knobs.replicas)),
            )
            .expect("degenerate partial run completes");
            assert_eq!(
                Fingerprint::of(&full),
                Fingerprint::of(&degenerate),
                "min_copies = n diverged from full replication on {scenario} ({driver:?}, {policy:?})"
            );
            assert_eq!(full.completions, degenerate.completions);
            assert_eq!(degenerate.filtered_ws_bytes, 0);
        }
    }
}

#[test]
fn pooled_lease_runs_split_at_true_barriers_and_stay_bit_exact() {
    // With the pool forced on (`min_dispatch = 0`), nodes stay leased to
    // their workers across consecutive windows; global events (warmup end,
    // maintenance rounds) demand every node and must split those runs. The
    // run/recall accounting proves the lease machinery actually engaged,
    // and the fingerprint proves it never changed a single result.
    let knobs = ScenarioKnobs::smoke();
    let sequential = run_scenario(
        "tpcw-steady-state",
        &knobs.clone().with_driver(DriverKind::Sequential),
    )
    .expect("sequential run completes");
    let parallel = run_scenario(
        "tpcw-steady-state",
        &knobs.clone().with_driver(DriverKind::ParallelTuned {
            threads: 2,
            min_dispatch: 0,
        }),
    )
    .expect("pooled run completes");
    assert_eq!(
        Fingerprint::of(&sequential),
        Fingerprint::of(&parallel),
        "lease runs changed results"
    );
    let stats = parallel.driver_stats.expect("parallel runs record stats");
    assert!(
        stats.pooled > 0,
        "min_dispatch 0 must pool windows: {stats:?}"
    );
    assert!(
        stats.runs >= 2,
        "true barriers must split the pooled windows into multiple lease runs: {stats:?}"
    );
    assert!(
        stats.recalls > 0,
        "between-window node demands must recall leases: {stats:?}"
    );
}

#[test]
fn deferred_stoppers_stay_exact_while_transcripts_stream() {
    // The pipelined merge starts replaying before every shard transcript
    // has arrived; a deferred stopper that lands mid-replay must still run
    // at its exact sequential rank, with its node recalled first. Force the
    // pool on so the full deferred load of the run rides the streaming
    // path, across seeds.
    for seed in [7, 42] {
        let knobs = ScenarioKnobs::smoke().with_seed(seed);
        let sequential = run_scenario(
            "tpcw-steady-state",
            &knobs.clone().with_driver(DriverKind::Sequential),
        )
        .expect("sequential run completes");
        let parallel = run_scenario(
            "tpcw-steady-state",
            &knobs.clone().with_driver(DriverKind::ParallelTuned {
                threads: 2,
                min_dispatch: 0,
            }),
        )
        .expect("pooled run completes");
        assert_eq!(
            Fingerprint::of(&sequential),
            Fingerprint::of(&parallel),
            "streaming merge diverged with seed {seed}"
        );
        let stats = parallel.driver_stats.expect("parallel runs record stats");
        assert!(
            stats.deferred > 0 && stats.pooled > 0,
            "the streaming path must carry deferred stoppers: {stats:?}"
        );
    }
}

#[test]
fn sharded_certification_runs_identically_under_both_drivers() {
    // Sharded certification across the scenario matrix: per-group commit
    // logs and every commit decision are in the bit-exact fingerprint.
    // Cert sends become window starters and (when eligible) worker-side
    // checks under the parallel driver — none of which may change a single
    // decision. The failover scenario adds a group-0 leader kill mid-run.
    for (scenario, seed) in [
        ("tpcw-steady-state", 1),
        ("tpcw-steady-state", 42),
        ("rubis-auction", 11),
        ("failover", 5),
    ] {
        let knobs = ScenarioKnobs::smoke()
            .with_seed(seed)
            .with_cert_groups(Some(4));
        let sequential = run_scenario(scenario, &knobs.clone().with_driver(DriverKind::Sequential))
            .expect("sequential sharded run completes");
        assert!(
            !sequential.cert_group_commits.is_empty(),
            "sharded runs must expose per-group commit logs"
        );
        for kind in parallel_kinds() {
            let parallel = run_scenario(scenario, &knobs.clone().with_driver(kind))
                .expect("parallel sharded run completes");
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "drivers diverged on sharded {scenario} with seed {seed} under {kind:?}"
            );
            assert_eq!(
                sequential.completions, parallel.completions,
                "completion timestamps diverged on sharded {scenario} with seed {seed} under {kind:?}"
            );
        }
    }
}

#[test]
fn detection_runs_identically_under_both_drivers_across_seeds_and_threads() {
    // The detector's window territory: heartbeat ticks and partition
    // events are global barriers, partitions drop certification sends
    // mid-window (the pooled path must skip those inline), client timeouts
    // re-dispatch abandoned work, and checkpoint-lag recovery's redo
    // accounting (bytes and microseconds) is in the fingerprint along with
    // every detector verdict's injection and detection time.
    for seed in [5, 42] {
        let knobs = ScenarioKnobs {
            replicas: 3,
            clients_per_replica: 4,
            ..ScenarioKnobs::smoke()
        }
        .with_seed(seed);
        let sequential = run_scenario(
            "detection",
            &knobs.clone().with_driver(DriverKind::Sequential),
        )
        .expect("sequential detection run completes");
        assert!(
            sequential
                .faults
                .iter()
                .any(|f| matches!(f.kind, tashkent::cluster::FaultKind::ReplicaSuspected(_)))
                && sequential
                    .faults
                    .iter()
                    .any(|f| matches!(f.kind, tashkent::cluster::FaultKind::ReplicaDead(_))),
            "the detection scenario must put detector verdicts into the fingerprint"
        );
        assert!(
            sequential.redo_bytes > 0,
            "recovery must replay a redo window into the fingerprint"
        );
        for kind in parallel_kinds() {
            let parallel = run_scenario("detection", &knobs.clone().with_driver(kind))
                .expect("parallel detection run completes");
            assert_eq!(
                Fingerprint::of(&sequential),
                Fingerprint::of(&parallel),
                "drivers diverged on detection with seed {seed} under {kind:?}"
            );
            assert_eq!(
                sequential.completions, parallel.completions,
                "completion timestamps diverged on detection with seed {seed} under {kind:?}"
            );
        }
    }
}

#[test]
fn detection_with_partial_replication_runs_identically() {
    // A dead verdict under partial replication triggers re-replication of
    // the victim's under-copied groups — backfill traffic interleaved with
    // heartbeat barriers and redo replay, all in the fingerprint.
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 4,
        ..ScenarioKnobs::smoke()
    }
    .with_min_copies(Some(2));
    let sequential = run_scenario(
        "detection",
        &knobs.clone().with_driver(DriverKind::Sequential),
    )
    .expect("sequential run completes");
    assert!(
        sequential
            .faults
            .iter()
            .any(|f| matches!(f.kind, tashkent::cluster::FaultKind::Rereplicate { .. })),
        "the dead verdict must force re-replication events into the fingerprint"
    );
    for kind in parallel_kinds() {
        let parallel = run_scenario("detection", &knobs.clone().with_driver(kind))
            .expect("parallel run completes");
        assert_eq!(
            Fingerprint::of(&sequential),
            Fingerprint::of(&parallel),
            "drivers diverged on detection + partial replication under {kind:?}"
        );
        assert_eq!(sequential.completions, parallel.completions);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let knobs = ScenarioKnobs::smoke();
    let two = run_scenario(
        "tpcw-steady-state",
        &knobs
            .clone()
            .with_driver(DriverKind::Parallel { threads: 2 }),
    )
    .expect("2-thread run completes");
    let four = run_scenario(
        "tpcw-steady-state",
        &knobs
            .clone()
            .with_driver(DriverKind::Parallel { threads: 4 }),
    )
    .expect("4-thread run completes");
    assert_eq!(Fingerprint::of(&two), Fingerprint::of(&four));
}
