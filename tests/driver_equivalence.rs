//! Cross-driver equivalence: the windowed multi-threaded
//! [`ParallelDriver`] must be observationally identical to the sequential
//! reference driver — same committed/abort counts, same disk traffic, same
//! response statistics — for every workload, policy, and seed.
//!
//! This is the contract that makes the driver a pure performance knob: any
//! divergence is a bug in the lookahead window or the deterministic merge,
//! never an acceptable approximation.

use tashkent::cluster::{run_scenario, DriverKind, PolicySpec, RunResult, ScenarioKnobs};

/// The fields a run is judged by, exact to the bit.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    committed: u64,
    updates: u64,
    aborts: u64,
    retries_exhausted: u64,
    read_kb_per_txn: u64,
    write_kb_per_txn: u64,
    mean_response_us: u64,
    completions: usize,
}

impl Fingerprint {
    fn of(r: &RunResult) -> Self {
        Fingerprint {
            committed: r.committed,
            updates: r.updates,
            aborts: r.aborts,
            retries_exhausted: r.retries_exhausted,
            // Exact equality on the underlying byte counters: kb/txn is a
            // pure function of (bytes, committed), both integers.
            read_kb_per_txn: r.read_kb_per_txn.to_bits(),
            write_kb_per_txn: r.write_kb_per_txn.to_bits(),
            mean_response_us: (r.mean_response_s * 1e6).round() as u64,
            completions: r.completions.len(),
        }
    }
}

fn assert_drivers_agree(scenario: &str, knobs: ScenarioKnobs) {
    let sequential = run_scenario(scenario, &knobs.clone().with_driver(DriverKind::Sequential))
        .expect("sequential run completes");
    // Force two workers even on a single-core host so the mpsc shard path
    // (not just the inline fallback) is exercised.
    let parallel = run_scenario(
        scenario,
        &knobs
            .clone()
            .with_driver(DriverKind::Parallel { threads: 2 }),
    )
    .expect("parallel run completes");
    assert_eq!(
        Fingerprint::of(&sequential),
        Fingerprint::of(&parallel),
        "drivers diverged on {scenario} with seed {}",
        knobs.seed
    );
    assert_eq!(
        sequential.completions, parallel.completions,
        "completion timestamps diverged on {scenario} with seed {}",
        knobs.seed
    );
}

#[test]
fn tpcw_runs_identically_under_both_drivers_across_seeds() {
    for seed in [1, 7, 42] {
        assert_drivers_agree("tpcw-steady-state", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn rubis_runs_identically_under_both_drivers_across_seeds() {
    for seed in [3, 11, 42] {
        assert_drivers_agree("rubis-auction", ScenarioKnobs::smoke().with_seed(seed));
    }
}

#[test]
fn malb_with_filtering_runs_identically_under_both_drivers() {
    // Update filtering exercises the certifier round-trip and filter
    // installs — the paths with the trickiest window barriers.
    assert_drivers_agree(
        "tpcw-steady-state",
        ScenarioKnobs::smoke().with_policy(PolicySpec::malb_sc_uf()),
    );
}

#[test]
fn wider_cluster_runs_identically_under_both_drivers() {
    // More replicas per window: multi-shard merges every window.
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 4,
        ..ScenarioKnobs::smoke()
    };
    assert_drivers_agree("tpcw-steady-state", knobs);
}

#[test]
fn thread_count_does_not_change_results() {
    let knobs = ScenarioKnobs::smoke();
    let two = run_scenario(
        "tpcw-steady-state",
        &knobs
            .clone()
            .with_driver(DriverKind::Parallel { threads: 2 }),
    )
    .expect("2-thread run completes");
    let four = run_scenario(
        "tpcw-steady-state",
        &knobs
            .clone()
            .with_driver(DriverKind::Parallel { threads: 4 }),
    )
    .expect("4-thread run completes");
    assert_eq!(Fingerprint::of(&two), Fingerprint::of(&four));
}
