//! RUBiS: the auction-site benchmark (§4.4).
//!
//! The paper's RUBiS database holds 10,000 active items, 1 M users and
//! 500,000 old items, totalling 2.2 GB. It exposes 17 transaction types
//! (Table 4) over two mixes: browsing (read-only) and bidding (15 %
//! updates). The paper's implementation is transactional with primary-key
//! indices; `AboutMe` is the "large, frequent transaction that reads from
//! almost all the tables in the database".

use tashkent_engine::{
    Access, CpuCosts, PlanStep, TxnPlan, TxnType, TxnTypeId, WriteKind, WriteSpec,
};
use tashkent_storage::{Catalog, RelationId, PAGE_SIZE};

use crate::spec::{Mix, Workload};

/// Heap fill factor (same as TPC-W).
const FILL: f64 = 0.85;

fn pages(rows: u64, width: u64) -> u32 {
    (((rows * width) as f64) / (PAGE_SIZE as f64 * FILL)).ceil() as u32
}

/// Relation ids of the RUBiS schema.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct RubisRels {
    pub users: RelationId,
    pub users_pk: RelationId,
    pub users_nick: RelationId,
    pub items: RelationId,
    pub items_pk: RelationId,
    pub old_items: RelationId,
    pub old_items_pk: RelationId,
    pub bids: RelationId,
    pub bids_item: RelationId,
    pub bids_user: RelationId,
    pub comments: RelationId,
    pub comments_to: RelationId,
    pub buy_now: RelationId,
    pub buy_now_pk: RelationId,
    pub categories: RelationId,
    pub regions: RelationId,
}

/// Builds the RUBiS schema (paper scale: 1 M users, 10 k active items,
/// 500 k old items, ≈ 2.2 GB).
pub fn schema() -> (Catalog, RubisRels) {
    let mut c = Catalog::new();
    let n_users: u64 = 1_000_000;
    let n_items: u64 = 10_000;
    let n_old: u64 = 500_000;
    let n_bids: u64 = 4_000_000;
    let n_comments: u64 = 600_000;
    let n_buy_now: u64 = 300_000;

    let users = c.add_table("users", pages(n_users, 450), n_users);
    let users_pk = c.add_index("users_pk", users, pages(n_users, 40), n_users);
    let users_nick = c.add_index("users_nick", users, pages(n_users, 40), n_users);
    let items = c.add_table("items", pages(n_items, 600), n_items);
    let items_pk = c.add_index("items_pk", items, pages(n_items, 40), n_items);
    let old_items = c.add_table("old_items", pages(n_old, 500), n_old);
    let old_items_pk = c.add_index("old_items_pk", old_items, pages(n_old, 40), n_old);
    let bids = c.add_table("bids", pages(n_bids, 130), n_bids);
    let bids_item = c.add_index("bids_item", bids, pages(n_bids, 40), n_bids);
    let bids_user = c.add_index("bids_user", bids, pages(n_bids, 40), n_bids);
    let comments = c.add_table("comments", pages(n_comments, 350), n_comments);
    let comments_to = c.add_index("comments_to", comments, pages(n_comments, 40), n_comments);
    let buy_now = c.add_table("buy_now", pages(n_buy_now, 90), n_buy_now);
    let buy_now_pk = c.add_index("buy_now_pk", buy_now, pages(n_buy_now, 40), n_buy_now);
    let categories = c.add_table("categories", 1, 20);
    let regions = c.add_table("regions", 1, 62);

    let rels = RubisRels {
        users,
        users_pk,
        users_nick,
        items,
        items_pk,
        old_items,
        old_items_pk,
        bids,
        bids_item,
        bids_user,
        comments,
        comments_to,
        buy_now,
        buy_now_pk,
        categories,
        regions,
    };
    (c, rels)
}

fn read(rel: RelationId, access: Access) -> PlanStep {
    PlanStep::Read { rel, access }
}

fn lookups(rel: RelationId, n: u32, theta: f64) -> PlanStep {
    read(rel, Access::IndexLookup { lookups: n, theta })
}

fn update(rel: RelationId, rows: u32, theta: f64) -> PlanStep {
    PlanStep::Write(WriteSpec {
        rel,
        rows,
        kind: WriteKind::Update,
        theta,
    })
}

fn insert(rel: RelationId, rows: u32) -> PlanStep {
    PlanStep::Write(WriteSpec {
        rel,
        rows,
        kind: WriteKind::Insert,
        theta: 0.0,
    })
}

const OLTP_CPU: CpuCosts = CpuCosts {
    base_us: 1_500,
    per_page_us: 25,
    per_write_us: 250,
};

/// AboutMe assembles a user's full history: heavier fixed cost.
const ABOUTME_CPU: CpuCosts = CpuCosts {
    base_us: 30_000,
    per_page_us: 25,
    per_write_us: 250,
};

/// Builds the 17 RUBiS transaction types (Table 4 names).
pub fn transaction_types(r: &RubisRels) -> Vec<TxnType> {
    let mut types = Vec::new();
    let mut add = |name: &str, plan: TxnPlan| {
        let id = TxnTypeId(types.len() as u32);
        types.push(TxnType::new(id, name, plan));
    };

    // AboutMe: the user's bids, sales, purchases and comments — random
    // access across nearly every table.
    add(
        "AboutMe",
        TxnPlan::new(vec![
            lookups(r.users_pk, 1, 0.0),
            lookups(r.bids_user, 80, 0.3),
            lookups(r.comments_to, 25, 0.3),
            lookups(r.old_items_pk, 30, 0.3),
            lookups(r.buy_now_pk, 5, 0.3),
            read(r.items, Access::SeqScan),
        ])
        .with_cpu(ABOUTME_CPU),
    );
    add(
        "PutBid",
        TxnPlan::new(vec![
            lookups(r.items_pk, 1, 0.6),
            lookups(r.bids_item, 5, 0.6),
            lookups(r.users_pk, 1, 0.2),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "StoreComment",
        TxnPlan::new(vec![
            lookups(r.users_pk, 1, 0.2),
            insert(r.comments, 1),
            update(r.users, 1, 0.3),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "ViewBidHistory",
        TxnPlan::new(vec![
            lookups(r.items_pk, 1, 0.6),
            lookups(r.bids_item, 15, 0.4),
            lookups(r.users_pk, 5, 0.2),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "ViewUserInfo",
        TxnPlan::new(vec![
            lookups(r.users_pk, 1, 0.2),
            lookups(r.comments_to, 10, 0.4),
            lookups(r.old_items_pk, 5, 0.4),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "Auth",
        TxnPlan::new(vec![lookups(r.users_nick, 1, 0.2)]).with_cpu(OLTP_CPU),
    );
    add(
        "BrowseCategories",
        TxnPlan::new(vec![read(r.categories, Access::SeqScan)]).with_cpu(OLTP_CPU),
    );
    add(
        "BrowseRegions",
        TxnPlan::new(vec![read(r.regions, Access::SeqScan)]).with_cpu(OLTP_CPU),
    );
    add(
        "BuyNow",
        TxnPlan::new(vec![
            lookups(r.items_pk, 1, 0.6),
            lookups(r.users_pk, 1, 0.2),
            lookups(r.buy_now_pk, 2, 0.3),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "PutComment",
        TxnPlan::new(vec![
            lookups(r.users_pk, 2, 0.2),
            lookups(r.items_pk, 1, 0.6),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "RegisterUser",
        TxnPlan::new(vec![lookups(r.users_nick, 1, 0.0), insert(r.users, 1)]).with_cpu(OLTP_CPU),
    );
    add(
        "SearchItemsByRegion",
        TxnPlan::new(vec![
            read(r.regions, Access::SeqScan),
            read(r.items, Access::SeqScan),
            lookups(r.users_pk, 3, 0.2),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "StoreBuyNow",
        TxnPlan::new(vec![
            lookups(r.items_pk, 1, 0.6),
            insert(r.buy_now, 1),
            update(r.items, 1, 0.5),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "RegisterItem",
        TxnPlan::new(vec![lookups(r.users_pk, 1, 0.2), insert(r.items, 1)]).with_cpu(OLTP_CPU),
    );
    add(
        "SearchItemsByCategory",
        TxnPlan::new(vec![
            read(r.categories, Access::SeqScan),
            read(r.items, Access::SeqScan),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "StoreBid",
        TxnPlan::new(vec![
            lookups(r.items_pk, 1, 0.6),
            lookups(r.bids_item, 3, 0.6),
            insert(r.bids, 1),
            update(r.items, 1, 0.6),
        ])
        .with_cpu(OLTP_CPU),
    );
    add(
        "ViewItem",
        TxnPlan::new(vec![
            lookups(r.items_pk, 1, 0.6),
            lookups(r.bids_item, 5, 0.6),
        ])
        .with_cpu(OLTP_CPU),
    );

    types
}

/// Builds the full RUBiS workload.
pub fn workload() -> Workload {
    let (catalog, rels) = schema();
    Workload {
        name: "rubis".to_string(),
        catalog,
        types: transaction_types(&rels),
    }
}

/// The two RUBiS mixes: bidding (15 % updates, the main mix) and browsing
/// (read-only).
pub fn mixes(w: &Workload) -> (Mix, Mix) {
    let bidding = Mix::from_pairs(
        "bidding",
        w,
        &[
            ("AboutMe", 8.0),
            ("ViewItem", 17.0),
            ("SearchItemsByCategory", 18.0),
            ("SearchItemsByRegion", 7.0),
            ("BrowseCategories", 8.0),
            ("BrowseRegions", 3.0),
            ("ViewUserInfo", 5.0),
            ("ViewBidHistory", 5.0),
            ("Auth", 6.0),
            ("BuyNow", 2.0),
            ("PutBid", 5.0),
            ("PutComment", 1.0),
            ("StoreBid", 10.0),
            ("StoreComment", 2.0),
            ("StoreBuyNow", 1.0),
            ("RegisterUser", 0.8),
            ("RegisterItem", 1.2),
        ],
    );
    let browsing = Mix::from_pairs(
        "browsing",
        w,
        &[
            ("AboutMe", 5.0),
            ("ViewItem", 22.0),
            ("SearchItemsByCategory", 25.0),
            ("SearchItemsByRegion", 8.0),
            ("BrowseCategories", 12.0),
            ("BrowseRegions", 5.0),
            ("ViewUserInfo", 8.0),
            ("ViewBidHistory", 8.0),
            ("Auth", 4.0),
            ("PutBid", 2.0),
            ("PutComment", 1.0),
        ],
    );
    (bidding, browsing)
}

/// Convenience: workload plus a mix by name.
pub fn workload_with_mix(mix: &str) -> (Workload, Mix) {
    let w = workload();
    let (bidding, browsing) = mixes(&w);
    let m = match mix {
        "bidding" => bidding,
        "browsing" => browsing,
        other => panic!("unknown RUBiS mix {other:?}"),
    };
    (w, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn db_size_matches_paper() {
        let size = workload().db_bytes() as f64 / GB;
        assert!(
            (2.0..2.45).contains(&size),
            "RUBiS {size:.2} GB (paper 2.2)"
        );
    }

    #[test]
    fn has_seventeen_types_matching_table4() {
        let w = workload();
        assert_eq!(w.types.len(), 17);
        for name in [
            "AboutMe",
            "PutBid",
            "StoreComment",
            "ViewBidHistory",
            "ViewUserInfo",
            "Auth",
            "BrowseCategories",
            "BrowseRegions",
            "BuyNow",
            "PutComment",
            "RegisterUser",
            "SearchItemsByRegion",
            "StoreBuyNow",
            "RegisterItem",
            "SearchItemsByCategory",
            "StoreBid",
            "ViewItem",
        ] {
            assert!(w.type_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn bidding_has_fifteen_percent_updates_browsing_none() {
        let w = workload();
        let (bidding, browsing) = mixes(&w);
        let bf = bidding.update_fraction(&w);
        assert!((0.13..0.17).contains(&bf), "bidding {bf:.3} (paper 0.15)");
        assert_eq!(browsing.update_fraction(&w), 0.0, "browsing is read-only");
    }

    #[test]
    fn aboutme_references_almost_all_tables() {
        use tashkent_core::WorkingSetEstimator;
        let w = workload();
        let t = w.type_by_name("AboutMe").unwrap();
        let est = WorkingSetEstimator::new(&w.catalog);
        let ws = est.estimate(t.id, &w.explain(t.id));
        // Touches ≥ 10 of the 16 relations (tables + indices).
        assert!(
            ws.relations.len() >= 10,
            "AboutMe references only {} relations",
            ws.relations.len()
        );
        // And its footprint dominates a 442 MB replica.
        let mb = ws.size_bytes() / (1024 * 1024);
        assert!(mb > 442, "AboutMe SC = {mb} MB");
    }

    #[test]
    fn writes_match_table4_update_types() {
        let w = workload();
        for name in [
            "StoreBid",
            "StoreComment",
            "StoreBuyNow",
            "RegisterUser",
            "RegisterItem",
        ] {
            assert!(w.type_by_name(name).unwrap().plan.is_update(), "{name}");
        }
        for name in ["AboutMe", "PutBid", "ViewItem", "PutComment"] {
            assert!(!w.type_by_name(name).unwrap().plan.is_update(), "{name}");
        }
    }

    #[test]
    fn browsing_mix_omits_write_types() {
        let w = workload();
        let (_, browsing) = mixes(&w);
        for t in browsing.active_types() {
            assert!(!w.types[t.0 as usize].plan.is_update());
        }
    }

    #[test]
    #[should_panic(expected = "unknown RUBiS mix")]
    fn unknown_mix_panics() {
        workload_with_mix("ordering");
    }
}
