//! Workload and mix specifications.

use tashkent_engine::{ExplainPlan, TxnType, TxnTypeId};
use tashkent_sim::SimRng;
use tashkent_storage::Catalog;

/// A complete workload: schema plus transaction types.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (`"tpcw"`, `"rubis"`).
    pub name: String,
    /// The database schema and sizes.
    pub catalog: Catalog,
    /// Transaction types; `types[i].id == TxnTypeId(i)`.
    pub types: Vec<TxnType>,
}

impl Workload {
    /// Looks up a transaction type by name.
    pub fn type_by_name(&self, name: &str) -> Option<&TxnType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// The `EXPLAIN` output for a transaction type — the exact information
    /// channel the paper's load balancer uses (§4.2.2).
    pub fn explain(&self, id: TxnTypeId) -> ExplainPlan {
        ExplainPlan::from_plan(&self.types[id.0 as usize].plan, &self.catalog)
    }

    /// Name of a transaction type.
    pub fn type_name(&self, id: TxnTypeId) -> &str {
        &self.types[id.0 as usize].name
    }

    /// Total database size in bytes.
    pub fn db_bytes(&self) -> u64 {
        self.catalog.total_bytes()
    }
}

/// A workload mix: relative frequencies over the workload's types.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix name (`"ordering"`, `"bidding"`, …).
    pub name: String,
    /// Weight per transaction type, parallel to `Workload::types`. Weights
    /// need not sum to 1; they are normalized on sampling.
    pub weights: Vec<f64>,
}

impl Mix {
    /// Creates a mix from `(type name, weight)` pairs against a workload.
    ///
    /// Types not mentioned get weight zero.
    ///
    /// # Panics
    ///
    /// Panics if a name does not exist in the workload.
    pub fn from_pairs(name: &str, workload: &Workload, pairs: &[(&str, f64)]) -> Self {
        let mut weights = vec![0.0; workload.types.len()];
        for (tname, w) in pairs {
            let t = workload
                .type_by_name(tname)
                .unwrap_or_else(|| panic!("unknown transaction type {tname:?}"));
            weights[t.id.0 as usize] = *w;
        }
        Mix {
            name: name.to_string(),
            weights,
        }
    }

    /// Samples a transaction type.
    pub fn pick(&self, rng: &mut SimRng) -> TxnTypeId {
        TxnTypeId(rng.weighted_index(&self.weights) as u32)
    }

    /// Fraction of transactions that are updates under this mix.
    pub fn update_fraction(&self, workload: &Workload) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.weights
            .iter()
            .zip(&workload.types)
            .filter(|(_, t)| t.plan.is_update())
            .map(|(w, _)| w)
            .sum::<f64>()
            / total
    }

    /// Types with non-zero weight (the set MALB packs).
    pub fn active_types(&self) -> Vec<TxnTypeId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(|(i, _)| TxnTypeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_engine::{Access, PlanStep, TxnPlan, WriteKind, WriteSpec};

    fn tiny_workload() -> Workload {
        let mut catalog = Catalog::new();
        let t = catalog.add_table("t", 10, 1_000);
        let read = TxnPlan::new(vec![PlanStep::Read {
            rel: t,
            access: Access::SeqScan,
        }]);
        let write = TxnPlan::new(vec![PlanStep::Write(WriteSpec {
            rel: t,
            rows: 1,
            kind: WriteKind::Update,
            theta: 0.0,
        })]);
        Workload {
            name: "tiny".into(),
            catalog,
            types: vec![
                TxnType::new(TxnTypeId(0), "Read", read),
                TxnType::new(TxnTypeId(1), "Write", write),
            ],
        }
    }

    #[test]
    fn mix_from_pairs_places_weights() {
        let w = tiny_workload();
        let m = Mix::from_pairs("m", &w, &[("Read", 3.0), ("Write", 1.0)]);
        assert_eq!(m.weights, vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "unknown transaction type")]
    fn unknown_type_panics() {
        let w = tiny_workload();
        Mix::from_pairs("m", &w, &[("Nope", 1.0)]);
    }

    #[test]
    fn update_fraction_counts_write_plans() {
        let w = tiny_workload();
        let m = Mix::from_pairs("m", &w, &[("Read", 3.0), ("Write", 1.0)]);
        assert!((m.update_fraction(&w) - 0.25).abs() < 1e-12);
        let ro = Mix::from_pairs("ro", &w, &[("Read", 1.0)]);
        assert_eq!(ro.update_fraction(&w), 0.0);
    }

    #[test]
    fn pick_respects_weights() {
        let w = tiny_workload();
        let m = Mix::from_pairs("m", &w, &[("Read", 9.0), ("Write", 1.0)]);
        let mut rng = SimRng::seed_from(3);
        let writes = (0..10_000)
            .filter(|_| m.pick(&mut rng) == TxnTypeId(1))
            .count();
        assert!((800..1200).contains(&writes), "writes {writes}");
    }

    #[test]
    fn active_types_skips_zero_weights() {
        let w = tiny_workload();
        let m = Mix::from_pairs("m", &w, &[("Write", 1.0)]);
        assert_eq!(m.active_types(), vec![TxnTypeId(1)]);
    }

    #[test]
    fn explain_resolves_through_catalog() {
        let w = tiny_workload();
        let e = w.explain(TxnTypeId(0));
        assert_eq!(e.scanned().collect::<Vec<_>>(), vec!["t"]);
    }
}
