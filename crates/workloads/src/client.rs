//! Closed-loop client model.
//!
//! The paper loads the system with a fixed number of emulated clients per
//! replica (the count that drives a standalone database to 85 % of its peak
//! throughput, §4.4). Each client loops: think, pick a transaction type from
//! the mix, submit, wait for the response, think again. Aborted update
//! transactions are retried by the client.

use tashkent_engine::TxnTypeId;
use tashkent_sim::SimRng;

use crate::spec::Mix;

/// Configuration of a closed-loop client population.
#[derive(Debug, Clone)]
pub struct ClientPool {
    /// Number of concurrent emulated clients.
    pub clients: usize,
    /// Mean think time between transactions, in µs (exponentially
    /// distributed).
    pub think_mean_us: u64,
    /// Maximum retries for an aborted transaction before the client gives
    /// up and picks a new interaction.
    pub max_retries: u32,
}

impl ClientPool {
    /// Creates a pool of `clients` clients with the given mean think time.
    pub fn new(clients: usize, think_mean_us: u64) -> Self {
        ClientPool {
            clients,
            think_mean_us,
            max_retries: 10,
        }
    }

    /// Samples a think time.
    pub fn think(&self, rng: &mut SimRng) -> u64 {
        rng.exp_micros(self.think_mean_us)
    }

    /// Samples the next transaction type from `mix`.
    pub fn next_type(&self, mix: &Mix, rng: &mut SimRng) -> TxnTypeId {
        mix.pick(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn think_times_average_to_mean() {
        let pool = ClientPool::new(10, 1_000_000);
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| pool.think(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (900_000.0..1_100_000.0).contains(&mean),
            "mean think {mean}"
        );
    }

    #[test]
    fn zero_think_time_is_supported() {
        let pool = ClientPool::new(1, 0);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(pool.think(&mut rng), 0);
    }

    #[test]
    fn defaults_allow_retries() {
        let pool = ClientPool::new(1, 1);
        assert!(pool.max_retries > 0);
    }
}
