//! Workload models: TPC-W and RUBiS (§4.4).
//!
//! The paper evaluates Tashkent+ with two e-commerce benchmarks:
//!
//! * **TPC-W** — an online bookstore with three mixes (ordering 50 %
//!   updates, shopping 20 %, browsing 5 %), scaled by its EBS parameter to
//!   0.7 / 1.8 / 2.9 GB databases;
//! * **RUBiS** — an eBay-style auction site (2.2 GB; browsing mix read-only,
//!   bidding mix 15 % updates).
//!
//! Each workload contributes a schema ([`tashkent_storage::Catalog`]), a set
//! of transaction types with execution plans ([`tashkent_engine::TxnPlan`]),
//! and mixes (type frequency vectors). A closed-loop [`client::ClientPool`]
//! model supplies think times and type selection.

pub mod client;
pub mod rubis;
pub mod spec;
pub mod tpcw;

pub use client::ClientPool;
pub use spec::{Mix, Workload};
pub use tpcw::{TpcwScale, TPCW_MIXES};
