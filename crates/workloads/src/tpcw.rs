//! TPC-W: the online-bookstore benchmark (§4.4).
//!
//! The schema and cardinalities follow the TPC-W specification scaled by the
//! EBS parameter (customers = 2880 × EBS, orders = 0.9 × customers, three
//! order lines per order, …) with row widths calibrated so the database
//! sizes match the paper's configurations: ~0.7 GB at 100 EBS (SmallDB),
//! ~1.8 GB at 300 EBS (MidDB), ~2.9 GB at 500 EBS (LargeDB).
//!
//! The paper's implementation exposes 13 transaction types (Table 2);
//! customer registration is folded into `BuyRequest`. The three mixes use
//! the TPC-W interaction frequencies: ordering ≈ 50 % updates, shopping
//! ≈ 20 %, browsing ≈ 5 %.

use tashkent_engine::{
    Access, CpuCosts, PlanStep, TxnPlan, TxnType, TxnTypeId, WriteKind, WriteSpec,
};
use tashkent_storage::{Catalog, RelationId, PAGE_SIZE};

use crate::spec::{Mix, Workload};

/// Database scale presets used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcwScale {
    /// 100 EBS ≈ 0.7 GB ("SmallDB").
    Small,
    /// 300 EBS ≈ 1.8 GB ("MidDB").
    Mid,
    /// 500 EBS ≈ 2.9 GB ("LargeDB").
    Large,
}

impl TpcwScale {
    /// The EBS value of this preset.
    pub fn ebs(self) -> u64 {
        match self {
            TpcwScale::Small => 100,
            TpcwScale::Mid => 300,
            TpcwScale::Large => 500,
        }
    }

    /// The paper's label for this preset.
    pub fn label(self) -> &'static str {
        match self {
            TpcwScale::Small => "SmallDB",
            TpcwScale::Mid => "MidDB",
            TpcwScale::Large => "LargeDB",
        }
    }
}

/// Names of the three TPC-W mixes.
pub const TPCW_MIXES: [&str; 3] = ["ordering", "shopping", "browsing"];

/// Heap fill factor: fraction of each page holding live rows.
const FILL: f64 = 0.85;

/// Pages needed for `rows` rows of `width` bytes.
fn pages(rows: u64, width: u64) -> u32 {
    (((rows * width) as f64) / (PAGE_SIZE as f64 * FILL)).ceil() as u32
}

/// Relation ids of the TPC-W schema, for plan construction.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct TpcwRels {
    pub customer: RelationId,
    pub customer_pk: RelationId,
    pub customer_uname: RelationId,
    pub address: RelationId,
    pub address_pk: RelationId,
    pub country: RelationId,
    pub orders: RelationId,
    pub orders_pk: RelationId,
    pub orders_cust: RelationId,
    pub order_line: RelationId,
    pub order_line_pk: RelationId,
    pub cc_xacts: RelationId,
    pub cc_xacts_pk: RelationId,
    pub item: RelationId,
    pub item_pk: RelationId,
    pub item_title: RelationId,
    pub item_subject: RelationId,
    pub author: RelationId,
    pub author_pk: RelationId,
    pub shopping_cart: RelationId,
    pub shopping_cart_pk: RelationId,
    pub shopping_cart_line: RelationId,
    pub shopping_cart_line_pk: RelationId,
}

/// Builds the TPC-W schema at `ebs` emulated browsers.
pub fn schema(ebs: u64) -> (Catalog, TpcwRels) {
    let mut c = Catalog::new();
    let customers = 2_880 * ebs;
    let addresses = 2 * customers;
    let orders = customers * 9 / 10;
    let order_lines = 3 * orders;
    let items: u64 = 10_000;
    let authors: u64 = 2_500;
    let carts = 720 * ebs;
    let cart_lines = 1_152 * ebs;

    let customer = c.add_table("customer", pages(customers, 180), customers);
    let customer_pk = c.add_index("customer_pk", customer, pages(customers, 40), customers);
    let customer_uname = c.add_index("customer_uname", customer, pages(customers, 40), customers);
    let address = c.add_table("address", pages(addresses, 25), addresses);
    let address_pk = c.add_index("address_pk", address, pages(addresses, 24), addresses);
    let country = c.add_table("country", 2, 92);
    let orders_t = c.add_table("orders", pages(orders, 360), orders);
    let orders_pk = c.add_index("orders_pk", orders_t, pages(orders, 40), orders);
    let orders_cust = c.add_index("orders_cust", orders_t, pages(orders, 40), orders);
    let order_line = c.add_table("order_line", pages(order_lines, 210), order_lines);
    let order_line_pk = c.add_index(
        "order_line_pk",
        order_line,
        pages(order_lines, 40),
        order_lines,
    );
    let cc_xacts = c.add_table("cc_xacts", pages(orders, 220), orders);
    let cc_xacts_pk = c.add_index("cc_xacts_pk", cc_xacts, pages(orders, 40), orders);
    let item = c.add_table("item", pages(items, 900), items);
    let item_pk = c.add_index("item_pk", item, pages(items, 40), items);
    let item_title = c.add_index("item_title", item, pages(items, 40), items);
    let item_subject = c.add_index("item_subject", item, pages(items, 40), items);
    let author = c.add_table("author", pages(authors, 700), authors);
    let author_pk = c.add_index("author_pk", author, pages(authors, 40), authors);
    let shopping_cart = c.add_table("shopping_cart", pages(carts, 80), carts);
    let shopping_cart_pk = c.add_index("shopping_cart_pk", shopping_cart, pages(carts, 40), carts);
    let shopping_cart_line = c.add_table("shopping_cart_line", pages(cart_lines, 90), cart_lines);
    let shopping_cart_line_pk = c.add_index(
        "shopping_cart_line_pk",
        shopping_cart_line,
        pages(cart_lines, 40),
        cart_lines,
    );

    let rels = TpcwRels {
        customer,
        customer_pk,
        customer_uname,
        address,
        address_pk,
        country,
        orders: orders_t,
        orders_pk,
        orders_cust,
        order_line,
        order_line_pk,
        cc_xacts,
        cc_xacts_pk,
        item,
        item_pk,
        item_title,
        item_subject,
        author,
        author_pk,
        shopping_cart,
        shopping_cart_pk,
        shopping_cart_line,
        shopping_cart_line_pk,
    };
    (c, rels)
}

fn read(rel: RelationId, access: Access) -> PlanStep {
    PlanStep::Read { rel, access }
}

fn lookups(rel: RelationId, n: u32, theta: f64) -> PlanStep {
    read(rel, Access::IndexLookup { lookups: n, theta })
}

fn update(rel: RelationId, rows: u32, theta: f64) -> PlanStep {
    PlanStep::Write(WriteSpec {
        rel,
        rows,
        kind: WriteKind::Update,
        theta,
    })
}

/// Session-local update: a client writing its own recent row (cart,
/// customer record) — uniform over the relation's active tail.
fn update_tail(rel: RelationId, rows: u32, window: u64) -> PlanStep {
    PlanStep::Write(WriteSpec {
        rel,
        rows,
        kind: WriteKind::UpdateTail { window },
        theta: 0.0,
    })
}

fn insert(rel: RelationId, rows: u32) -> PlanStep {
    PlanStep::Write(WriteSpec {
        rel,
        rows,
        kind: WriteKind::Insert,
        theta: 0.0,
    })
}

/// CPU model for interactive (index-driven) transactions.
const OLTP_CPU: CpuCosts = CpuCosts {
    base_us: 2_000,
    per_page_us: 25,
    per_write_us: 250,
};

/// CPU model for the heavy analytical transactions (BestSeller,
/// AdminResponse): more per-page work (joins, aggregation, sorting).
const HEAVY_CPU: CpuCosts = CpuCosts {
    base_us: 20_000,
    per_page_us: 24,
    per_write_us: 250,
};

/// CPU model for BuyConfirm: checkout performs payment authorization and
/// order-processing logic beyond its page accesses.
const BUYCONFIRM_CPU: CpuCosts = CpuCosts {
    base_us: 80_000,
    per_page_us: 25,
    per_write_us: 400,
};

/// Builds the 13 TPC-W transaction types over a schema.
pub fn transaction_types(r: &TpcwRels) -> Vec<TxnType> {
    let mut types = Vec::new();
    let mut add = |name: &str, plan: TxnPlan| {
        let id = TxnTypeId(types.len() as u32);
        types.push(TxnType::new(id, name, plan));
    };

    // HomeAction: customer greeting + promotional items.
    add(
        "HomeAction",
        TxnPlan::new(vec![
            lookups(r.customer_pk, 1, 0.0),
            lookups(r.item_pk, 5, 0.2),
        ])
        .with_cpu(OLTP_CPU),
    );
    // NewProduct: newest items in a subject, with authors.
    add(
        "NewProduct",
        TxnPlan::new(vec![
            read(
                r.item,
                Access::RangeScan {
                    fraction: 0.5,
                    recent: true,
                },
            ),
            lookups(r.author_pk, 10, 0.0),
        ])
        .with_cpu(OLTP_CPU),
    );
    // BestSeller: aggregate over the most recent orders' lines joined with
    // item/author — the big analytical read (measured WS ≈ 600 MB in the
    // paper).
    add(
        "BestSeller",
        TxnPlan::new(vec![
            read(
                r.order_line,
                Access::RangeScan {
                    fraction: 0.50,
                    recent: true,
                },
            ),
            read(
                r.orders,
                Access::RangeScan {
                    fraction: 0.20,
                    recent: true,
                },
            ),
            read(r.item, Access::SeqScan),
            read(r.author, Access::SeqScan),
        ])
        .with_cpu(HEAVY_CPU),
    );
    // ProductDetail: one item with its author.
    add(
        "ProducDet",
        TxnPlan::new(vec![
            lookups(r.item_pk, 1, 0.2),
            lookups(r.author_pk, 1, 0.0),
        ])
        .with_cpu(OLTP_CPU),
    );
    // SearchRequest: the search form (a few lookups for defaults).
    add(
        "SearchRequ",
        TxnPlan::new(vec![lookups(r.item_pk, 3, 0.2)]).with_cpu(OLTP_CPU),
    );
    // ExecSearch: title/author/subject search — scans the item table.
    add(
        "ExecSearch",
        TxnPlan::new(vec![
            read(r.item, Access::SeqScan),
            read(r.author, Access::SeqScan),
        ])
        .with_cpu(OLTP_CPU),
    );
    // ShoppingCart: display/update the cart.
    add(
        "ShopinCart",
        TxnPlan::new(vec![
            lookups(r.shopping_cart_pk, 1, 0.0),
            lookups(r.shopping_cart_line_pk, 3, 0.0),
            lookups(r.item_pk, 3, 0.2),
            update_tail(r.shopping_cart, 1, 8_000),
            insert(r.shopping_cart_line, 1),
        ])
        .with_cpu(OLTP_CPU),
    );
    // BuyRequest (includes customer registration): customer + address work.
    add(
        "BuyRequest",
        TxnPlan::new(vec![
            lookups(r.customer_pk, 2, 0.0),
            lookups(r.address_pk, 2, 0.0),
            read(r.country, Access::SeqScan),
            lookups(r.shopping_cart_pk, 1, 0.0),
            update_tail(r.customer, 1, 10_000),
            insert(r.address, 1),
        ])
        .with_cpu(OLTP_CPU),
    );
    // BuyConfirm: checkout — order/cc inserts, stock updates, and a recent
    // purchase-history verification pass.
    add(
        "BuyConfirm",
        TxnPlan::new(vec![
            lookups(r.shopping_cart_pk, 1, 0.0),
            lookups(r.shopping_cart_line_pk, 3, 0.0),
            lookups(r.customer_pk, 1, 0.0),
            lookups(r.item_pk, 3, 0.2),
            read(
                r.order_line,
                Access::RangeScan {
                    fraction: 0.005,
                    recent: true,
                },
            ),
            insert(r.orders, 1),
            insert(r.order_line, 2),
            insert(r.cc_xacts, 1),
            update(r.item, 1, 0.2),
            update_tail(r.customer, 1, 10_000),
        ])
        .with_cpu(BUYCONFIRM_CPU),
    );
    // OrderInquiry: login form for order status.
    add(
        "OrderInqur",
        TxnPlan::new(vec![lookups(r.customer_uname, 1, 0.0)]).with_cpu(OLTP_CPU),
    );
    // OrderDisplay: most recent order with lines, items, addresses, payment
    // — random access to nearly every table (SC estimate ≈ 1.6 GB in the
    // paper, SCAP ≈ 1 MB, true ≈ 400-450 MB).
    add(
        "OrderDispl",
        TxnPlan::new(vec![
            lookups(r.customer_uname, 1, 0.0),
            lookups(r.orders_cust, 2, 0.6),
            lookups(r.order_line_pk, 8, 0.6),
            lookups(r.item_pk, 5, 0.2),
            lookups(r.address_pk, 2, 0.6),
            lookups(r.cc_xacts_pk, 2, 0.6),
            read(r.country, Access::SeqScan),
        ])
        .with_cpu(OLTP_CPU),
    );
    // AdminRequest: item edit form.
    add(
        "AdmiRqust",
        TxnPlan::new(vec![
            lookups(r.item_pk, 1, 0.2),
            lookups(r.author_pk, 1, 0.0),
        ])
        .with_cpu(OLTP_CPU),
    );
    // AdminResponse: item update plus related-items recomputation over the
    // order history — the heaviest transaction in the workload.
    add(
        "AdminRespo",
        TxnPlan::new(vec![
            read(
                r.order_line,
                Access::RangeScan {
                    fraction: 0.45,
                    recent: true,
                },
            ),
            read(
                r.orders,
                Access::RangeScan {
                    fraction: 0.35,
                    recent: true,
                },
            ),
            read(r.item, Access::SeqScan),
            update(r.item, 1, 0.2),
        ])
        .with_cpu(HEAVY_CPU),
    );

    types
}

/// Builds the full TPC-W workload at a scale preset.
pub fn workload(scale: TpcwScale) -> Workload {
    let (catalog, rels) = schema(scale.ebs());
    Workload {
        name: format!("tpcw-{}", scale.label()),
        catalog,
        types: transaction_types(&rels),
    }
}

/// The three TPC-W mixes over a workload (interaction frequencies from the
/// TPC-W specification; customer registration folded into BuyRequest).
pub fn mixes(w: &Workload) -> (Mix, Mix, Mix) {
    let ordering = Mix::from_pairs(
        "ordering",
        w,
        &[
            ("HomeAction", 9.12),
            ("NewProduct", 0.46),
            ("BestSeller", 0.46),
            ("ProducDet", 12.35),
            ("SearchRequ", 14.53),
            ("ExecSearch", 13.08),
            ("ShopinCart", 13.53),
            ("BuyRequest", 25.59),
            ("BuyConfirm", 10.18),
            ("OrderInqur", 0.25),
            ("OrderDispl", 0.22),
            ("AdmiRqust", 0.12),
            ("AdminRespo", 0.11),
        ],
    );
    let shopping = Mix::from_pairs(
        "shopping",
        w,
        &[
            ("HomeAction", 16.00),
            ("NewProduct", 5.00),
            ("BestSeller", 5.00),
            ("ProducDet", 17.00),
            ("SearchRequ", 20.00),
            ("ExecSearch", 17.00),
            ("ShopinCart", 11.60),
            ("BuyRequest", 5.60),
            ("BuyConfirm", 1.20),
            ("OrderInqur", 0.75),
            ("OrderDispl", 0.66),
            ("AdmiRqust", 0.10),
            ("AdminRespo", 0.09),
        ],
    );
    let browsing = Mix::from_pairs(
        "browsing",
        w,
        &[
            ("HomeAction", 29.00),
            ("NewProduct", 11.00),
            ("BestSeller", 11.00),
            ("ProducDet", 21.00),
            ("SearchRequ", 12.00),
            ("ExecSearch", 11.00),
            ("ShopinCart", 2.00),
            ("BuyRequest", 1.57),
            ("BuyConfirm", 0.69),
            ("OrderInqur", 0.30),
            ("OrderDispl", 0.25),
            ("AdmiRqust", 0.10),
            ("AdminRespo", 0.09),
        ],
    );
    (ordering, shopping, browsing)
}

/// Convenience: workload plus a mix by name.
pub fn workload_with_mix(scale: TpcwScale, mix: &str) -> (Workload, Mix) {
    let w = workload(scale);
    let (ordering, shopping, browsing) = mixes(&w);
    let m = match mix {
        "ordering" => ordering,
        "shopping" => shopping,
        "browsing" => browsing,
        other => panic!("unknown TPC-W mix {other:?}"),
    };
    (w, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn db_sizes_match_paper_configurations() {
        let small = workload(TpcwScale::Small).db_bytes() as f64 / GB;
        let mid = workload(TpcwScale::Mid).db_bytes() as f64 / GB;
        let large = workload(TpcwScale::Large).db_bytes() as f64 / GB;
        assert!(
            (0.45..0.9).contains(&small),
            "SmallDB {small:.2} GB (paper 0.7)"
        );
        assert!((1.55..2.05).contains(&mid), "MidDB {mid:.2} GB (paper 1.8)");
        assert!(
            (2.55..3.25).contains(&large),
            "LargeDB {large:.2} GB (paper 2.9)"
        );
    }

    #[test]
    fn has_thirteen_types_matching_table2_names() {
        let w = workload(TpcwScale::Mid);
        assert_eq!(w.types.len(), 13);
        for name in [
            "BestSeller",
            "AdminRespo",
            "BuyConfirm",
            "BuyRequest",
            "ShopinCart",
            "ExecSearch",
            "OrderDispl",
            "OrderInqur",
            "ProducDet",
            "HomeAction",
            "NewProduct",
            "SearchRequ",
            "AdmiRqust",
        ] {
            assert!(w.type_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn mix_update_fractions_match_paper() {
        let w = workload(TpcwScale::Mid);
        let (ordering, shopping, browsing) = mixes(&w);
        let of = ordering.update_fraction(&w);
        let sf = shopping.update_fraction(&w);
        let bf = browsing.update_fraction(&w);
        assert!((0.45..0.55).contains(&of), "ordering {of:.3} (paper 0.50)");
        assert!((0.15..0.25).contains(&sf), "shopping {sf:.3} (paper 0.20)");
        assert!((0.02..0.08).contains(&bf), "browsing {bf:.3} (paper 0.05)");
    }

    #[test]
    fn mix_weights_sum_to_hundred() {
        let w = workload(TpcwScale::Mid);
        let (o, s, b) = mixes(&w);
        for m in [o, s, b] {
            let sum: f64 = m.weights.iter().sum();
            assert!((sum - 100.0).abs() < 0.2, "{} sums to {sum}", m.name);
        }
    }

    #[test]
    fn updates_are_update_plans() {
        let w = workload(TpcwScale::Mid);
        for name in ["ShopinCart", "BuyRequest", "BuyConfirm", "AdminRespo"] {
            assert!(w.type_by_name(name).unwrap().plan.is_update(), "{name}");
        }
        for name in ["HomeAction", "BestSeller", "ExecSearch", "OrderDispl"] {
            assert!(!w.type_by_name(name).unwrap().plan.is_update(), "{name}");
        }
    }

    #[test]
    fn key_types_overflow_at_512mb_capacity() {
        // With 512 MB RAM minus 70 MB overhead the paper's capacity is
        // ~442 MB ≈ 56,576 pages; the four big types must individually
        // exceed it (they all get dedicated groups in Table 2).
        use tashkent_core::{EstimationMode, WorkingSetEstimator};
        let w = workload(TpcwScale::Mid);
        let est = WorkingSetEstimator::new(&w.catalog);
        let capacity = (442u64 * 1024 * 1024) / PAGE_SIZE;
        for name in ["BestSeller", "OrderDispl", "BuyConfirm", "AdminRespo"] {
            let t = w.type_by_name(name).unwrap();
            let ws = est.estimate(t.id, &w.explain(t.id));
            assert!(
                ws.pages_for(EstimationMode::SizeContent) > capacity,
                "{name}: {} pages ≤ capacity {capacity}",
                ws.pages_for(EstimationMode::SizeContent)
            );
        }
    }

    #[test]
    fn light_groups_fit_together_at_512mb() {
        use tashkent_core::{combined_pages_many, EstimationMode, WorkingSetEstimator};
        let w = workload(TpcwScale::Mid);
        let est = WorkingSetEstimator::new(&w.catalog);
        let capacity = (442u64 * 1024 * 1024) / PAGE_SIZE;
        let ws_of = |name: &str| {
            let t = w.type_by_name(name).unwrap();
            est.estimate(t.id, &w.explain(t.id))
        };
        // Table 2: [BuyRequest, ShopinCart] share one replica.
        let pair = combined_pages_many(
            &[ws_of("BuyRequest"), ws_of("ShopinCart")],
            EstimationMode::SizeContent,
        );
        assert!(pair <= capacity, "BuyRequest+ShopinCart = {pair} pages");
        // Table 2: [HomeAction, NewProduct, SearchRequ, AdmiRqust] share one.
        let quad = combined_pages_many(
            &[
                ws_of("HomeAction"),
                ws_of("NewProduct"),
                ws_of("SearchRequ"),
                ws_of("AdmiRqust"),
            ],
            EstimationMode::SizeContent,
        );
        assert!(quad <= capacity, "light quad = {quad} pages");
    }

    #[test]
    fn orderdisplay_scap_estimate_is_tiny() {
        // The paper: MALB-SCAP estimates OrderDisplay at ~1 MB because it
        // scans only one small table (country) while probing everything else.
        use tashkent_core::{EstimationMode, WorkingSetEstimator};
        let w = workload(TpcwScale::Mid);
        let est = WorkingSetEstimator::new(&w.catalog);
        let t = w.type_by_name("OrderDispl").unwrap();
        let ws = est.estimate(t.id, &w.explain(t.id));
        let scap_mb =
            ws.pages_for(EstimationMode::SizeContentAccessPattern) * PAGE_SIZE / (1024 * 1024);
        assert!(scap_mb < 5, "OrderDispl SCAP = {scap_mb} MB (paper ~1 MB)");
        let sc_mb = ws.pages_for(EstimationMode::SizeContent) * PAGE_SIZE / (1024 * 1024);
        assert!(
            (1_000..2_000).contains(&sc_mb),
            "OrderDispl SC = {sc_mb} MB (paper ~1600 MB)"
        );
    }

    #[test]
    #[should_panic(expected = "unknown TPC-W mix")]
    fn unknown_mix_panics() {
        workload_with_mix(TpcwScale::Mid, "nope");
    }
}
