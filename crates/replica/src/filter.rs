//! Update filter: the proxy-side table list for update filtering (§3).
//!
//! When update filtering is enabled, the load balancer sends each proxy the
//! list of tables for which the replica should receive remote writesets;
//! the proxy forwards only those writesets to the database. Tables outside
//! the list go out of date at this replica and can be dropped from its
//! cache entirely.

use std::collections::BTreeSet;

use tashkent_storage::RelationId;

/// The set of relations a replica keeps up to date.
///
/// `UpdateFilter::all()` is the pass-through default (no filtering, the base
/// Tashkent behaviour).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum UpdateFilter {
    /// Accept updates to every relation (filtering disabled).
    #[default]
    All,
    /// Accept updates only to these relations.
    Only(BTreeSet<RelationId>),
}

impl UpdateFilter {
    /// Pass-through filter.
    pub fn all() -> Self {
        UpdateFilter::All
    }

    /// Filter accepting exactly `rels`.
    pub fn only(rels: impl IntoIterator<Item = RelationId>) -> Self {
        UpdateFilter::Only(rels.into_iter().collect())
    }

    /// Whether updates to `rel` are applied at this replica.
    pub fn accepts(&self, rel: RelationId) -> bool {
        match self {
            UpdateFilter::All => true,
            UpdateFilter::Only(set) => set.contains(&rel),
        }
    }

    /// Whether filtering is active.
    pub fn is_filtering(&self) -> bool {
        matches!(self, UpdateFilter::Only(_))
    }

    /// Relations *not* accepted, out of the given universe — the tables the
    /// replica may drop (§3). Empty for the pass-through filter.
    pub fn dropped_from<'a>(
        &'a self,
        universe: impl IntoIterator<Item = RelationId> + 'a,
    ) -> Vec<RelationId> {
        match self {
            UpdateFilter::All => Vec::new(),
            UpdateFilter::Only(set) => universe.into_iter().filter(|r| !set.contains(r)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_accepts_everything() {
        let f = UpdateFilter::all();
        assert!(f.accepts(RelationId(0)));
        assert!(f.accepts(RelationId(999)));
        assert!(!f.is_filtering());
    }

    #[test]
    fn only_accepts_members() {
        let f = UpdateFilter::only([RelationId(1), RelationId(3)]);
        assert!(f.accepts(RelationId(1)));
        assert!(!f.accepts(RelationId(2)));
        assert!(f.accepts(RelationId(3)));
        assert!(f.is_filtering());
    }

    #[test]
    fn dropped_from_lists_complement() {
        let f = UpdateFilter::only([RelationId(1)]);
        let dropped = f.dropped_from((0..4).map(RelationId));
        assert_eq!(dropped, vec![RelationId(0), RelationId(2), RelationId(3)]);
    }

    #[test]
    fn all_drops_nothing() {
        let f = UpdateFilter::all();
        assert!(f.dropped_from((0..4).map(RelationId)).is_empty());
    }

    #[test]
    fn empty_only_filter_rejects_all() {
        let f = UpdateFilter::only(std::iter::empty());
        assert!(!f.accepts(RelationId(0)));
    }
}
