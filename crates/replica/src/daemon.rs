//! The per-replica load daemon.
//!
//! "The load balancer continuously receives replica load information on the
//! CPU and the disk I/O channel utilization from lightweight daemons running
//! on each of the replicas" (§2.4). The daemon samples both servers each
//! period, smooths the utilizations with an EWMA, and emits a
//! [`LoadReport`].

use tashkent_sim::{Ewma, SimTime};

use crate::cpu::CpuServer;
use tashkent_storage::DiskModel;

/// One smoothed utilization report, in `[0, 1]` per resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Smoothed CPU utilization.
    pub cpu: f64,
    /// Smoothed disk-channel utilization.
    pub disk: f64,
}

impl LoadReport {
    /// The paper's load function: the bottleneck resource, `MAX(cpu, disk)`
    /// (§2.4).
    pub fn bottleneck(&self) -> f64 {
        self.cpu.max(self.disk)
    }
}

/// Samples and smooths CPU/disk utilization for one replica.
#[derive(Debug, Clone)]
pub struct LoadDaemon {
    period: SimTime,
    last_sample: SimTime,
    cpu: Ewma,
    disk: Ewma,
}

impl LoadDaemon {
    /// Creates a daemon sampling every `period` with EWMA weight `alpha`.
    pub fn new(period: SimTime, alpha: f64) -> Self {
        LoadDaemon {
            period,
            last_sample: SimTime::ZERO,
            cpu: Ewma::new(alpha),
            disk: Ewma::new(alpha),
        }
    }

    /// Paper-shaped default: 1 s samples, α = 0.3.
    pub fn paper_default() -> Self {
        Self::new(SimTime::from_secs(1), 0.3)
    }

    /// Sampling period.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Time the next sample is due.
    pub fn next_sample(&self) -> SimTime {
        self.last_sample + self.period.as_micros()
    }

    /// Takes a sample at `now`, draining the servers' busy-time windows.
    ///
    /// Utilizations are clamped to `[0, 2.5]`: because service time is
    /// charged at submit time, a backlogged server reports above 1.0 for a
    /// window — a useful overload signal for the balancer's allocation
    /// decisions (a saturated *and backlogged* group needs replicas more
    /// than a merely saturated one).
    pub fn sample(
        &mut self,
        now: SimTime,
        cpu: &mut CpuServer,
        disk: &mut DiskModel,
    ) -> LoadReport {
        let interval = now.saturating_since(self.last_sample).max(1);
        self.last_sample = now;
        let cpu_util = (cpu.take_window_busy_us() as f64 / interval as f64).min(2.5);
        let disk_util = (disk.take_window_busy_us() as f64 / interval as f64).min(2.5);
        self.cpu.observe(cpu_util);
        self.disk.observe(disk_util);
        self.report()
    }

    /// The current smoothed report without taking a new sample.
    pub fn report(&self) -> LoadReport {
        LoadReport {
            cpu: self.cpu.value(),
            disk: self.disk.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_storage::{DiskParams, DiskRequest, GlobalPageId, RelationId, ReqKind};

    fn busy_disk(disk: &mut DiskModel, now: SimTime, pages: u32) {
        for i in 0..pages {
            disk.submit(
                now,
                DiskRequest {
                    page: GlobalPageId::new(RelationId(0), i * 100),
                    kind: ReqKind::Read,
                },
            );
        }
    }

    #[test]
    fn idle_servers_report_zero() {
        let mut d = LoadDaemon::paper_default();
        let mut cpu = CpuServer::new();
        let mut disk = DiskModel::default();
        let r = d.sample(SimTime::from_secs(1), &mut cpu, &mut disk);
        assert_eq!(r.cpu, 0.0);
        assert_eq!(r.disk, 0.0);
        assert_eq!(r.bottleneck(), 0.0);
    }

    #[test]
    fn utilization_is_busy_over_interval() {
        let mut d = LoadDaemon::new(SimTime::from_secs(1), 1.0);
        let mut cpu = CpuServer::new();
        let mut disk = DiskModel::default();
        cpu.run(SimTime::ZERO, 250_000); // 0.25 s of work in a 1 s window
        let r = d.sample(SimTime::from_secs(1), &mut cpu, &mut disk);
        assert!((r.cpu - 0.25).abs() < 1e-9, "cpu {}", r.cpu);
    }

    #[test]
    fn saturated_server_clamps_to_one() {
        let mut d = LoadDaemon::new(SimTime::from_secs(1), 1.0);
        let mut cpu = CpuServer::new();
        let mut disk = DiskModel::new(DiskParams {
            seek_us: 10_000,
            transfer_us: 0,
            seq_window: 1,
        });
        busy_disk(&mut disk, SimTime::ZERO, 500); // 5 s of work submitted
        let r = d.sample(SimTime::from_secs(1), &mut cpu, &mut disk);
        assert_eq!(r.disk, 2.5, "backlog clamps at 2.5");
        assert_eq!(r.bottleneck(), 2.5);
    }

    #[test]
    fn ewma_smooths_between_samples() {
        let mut d = LoadDaemon::new(SimTime::from_secs(1), 0.5);
        let mut cpu = CpuServer::new();
        let mut disk = DiskModel::default();
        cpu.run(SimTime::ZERO, 1_000_000);
        d.sample(SimTime::from_secs(1), &mut cpu, &mut disk); // util 1.0
        let r = d.sample(SimTime::from_secs(2), &mut cpu, &mut disk); // util 0.0
        assert!((r.cpu - 0.5).abs() < 1e-9, "cpu {}", r.cpu);
    }

    #[test]
    fn bottleneck_is_max_of_resources() {
        let r = LoadReport {
            cpu: 0.3,
            disk: 0.8,
        };
        assert_eq!(r.bottleneck(), 0.8);
        let r2 = LoadReport {
            cpu: 0.9,
            disk: 0.1,
        };
        assert_eq!(r2.bottleneck(), 0.9);
    }

    #[test]
    fn next_sample_tracks_period() {
        let mut d = LoadDaemon::new(SimTime::from_secs(1), 0.3);
        assert_eq!(d.next_sample(), SimTime::from_secs(1));
        let mut cpu = CpuServer::new();
        let mut disk = DiskModel::default();
        d.sample(SimTime::from_secs(1), &mut cpu, &mut disk);
        assert_eq!(d.next_sample(), SimTime::from_secs(2));
    }
}
