//! Single-CPU service model.
//!
//! The paper's machines have one 2.4 GHz Xeon; all local transaction work
//! and writeset application share it. Like the disk channel, the CPU is a
//! FIFO server with a `busy_until` horizon: submitting a burst returns its
//! completion time, so the simulation needs no events inside the server.
//! FIFO service at quantum granularity (the replica slices transactions
//! into a few milliseconds of CPU per step) approximates the round-robin
//! scheduling of a real kernel.

use tashkent_sim::SimTime;

/// A FIFO CPU server with utilization accounting.
///
/// # Examples
///
/// ```
/// use tashkent_replica::CpuServer;
/// use tashkent_sim::SimTime;
///
/// let mut cpu = CpuServer::new();
/// let t1 = cpu.run(SimTime::ZERO, 1_000);
/// let t2 = cpu.run(SimTime::ZERO, 500); // queues behind the first burst
/// assert_eq!(t1.as_micros(), 1_000);
/// assert_eq!(t2.as_micros(), 1_500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuServer {
    busy_until: SimTime,
    total_busy_us: u64,
    window_busy_us: u64,
}

impl CpuServer {
    /// Creates an idle CPU.
    pub fn new() -> Self {
        CpuServer::default()
    }

    /// Runs a burst of `burst_us` submitted at `now`; returns completion.
    pub fn run(&mut self, now: SimTime, burst_us: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + burst_us;
        self.busy_until = done;
        self.total_busy_us += burst_us;
        self.window_busy_us += burst_us;
        done
    }

    /// Microseconds of queued work ahead of a burst arriving now.
    pub fn backlog_us(&self, now: SimTime) -> u64 {
        self.busy_until.saturating_since(now)
    }

    /// Total busy time since construction.
    pub fn total_busy_us(&self) -> u64 {
        self.total_busy_us
    }

    /// Returns and resets the busy time accumulated since the last call;
    /// used by the load daemon for utilization sampling.
    pub fn take_window_busy_us(&mut self) -> u64 {
        std::mem::take(&mut self.window_busy_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_queue_fifo() {
        let mut cpu = CpuServer::new();
        assert_eq!(cpu.run(SimTime::ZERO, 100).as_micros(), 100);
        assert_eq!(cpu.run(SimTime::ZERO, 100).as_micros(), 200);
        // A burst arriving later starts when the queue drains.
        assert_eq!(cpu.run(SimTime::from_micros(50), 10).as_micros(), 210);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_busy_time() {
        let mut cpu = CpuServer::new();
        cpu.run(SimTime::ZERO, 100);
        cpu.run(SimTime::from_secs(1), 100);
        assert_eq!(cpu.total_busy_us(), 200);
    }

    #[test]
    fn backlog_measures_queue() {
        let mut cpu = CpuServer::new();
        cpu.run(SimTime::ZERO, 1_000);
        assert_eq!(cpu.backlog_us(SimTime::ZERO), 1_000);
        assert_eq!(cpu.backlog_us(SimTime::from_micros(400)), 600);
        assert_eq!(cpu.backlog_us(SimTime::from_micros(2_000)), 0);
    }

    #[test]
    fn window_busy_resets() {
        let mut cpu = CpuServer::new();
        cpu.run(SimTime::ZERO, 300);
        assert_eq!(cpu.take_window_busy_us(), 300);
        assert_eq!(cpu.take_window_busy_us(), 0);
        assert_eq!(cpu.total_busy_us(), 300);
    }

    #[test]
    fn zero_burst_is_noop() {
        let mut cpu = CpuServer::new();
        let t = cpu.run(SimTime::from_micros(5), 0);
        assert_eq!(t.as_micros(), 5);
        assert_eq!(cpu.total_busy_us(), 0);
    }
}
