//! The replica node: database + proxy state machine.
//!
//! A [`ReplicaNode`] owns one replica's storage (buffer pool, disk channel,
//! background writer), its CPU server, the Gatekeeper, the update filter,
//! and the set of running transactions. The cluster event loop drives it:
//!
//! 1. [`ReplicaNode::submit`] hands it a transaction executor (admission may
//!    queue it),
//! 2. [`ReplicaNode::step`] advances one transaction by a CPU quantum or one
//!    disk read and reports when to call again,
//! 3. on [`StepOutcome::ReadyToCommit`] the cluster certifies the writeset,
//!    applies remote writesets via [`ReplicaNode::apply_writesets`], and
//!    finishes with [`ReplicaNode::finish`].
//!
//! Modelling note: a missed page is installed in the buffer pool at submit
//! time while its read completes later on the simulated disk; concurrent
//! transactions touching the page during the read window observe a hit.
//! This slightly favours concurrency but keeps the pool a pure state
//! machine, and the error is far below the effects being measured.

use std::collections::HashMap;

use tashkent_engine::{Snapshot, TxnExecutor, TxnId, Version, Writeset};
use tashkent_sim::{SimRng, SimTime};
use tashkent_storage::{
    BackgroundWriter, BufferPool, Catalog, DiskModel, DiskParams, DiskRequest, ReqKind, Touch,
    WriterConfig,
};

use tashkent_certifier::CommittedWriteset;

use crate::cpu::CpuServer;
use crate::daemon::{LoadDaemon, LoadReport};
use crate::filter::UpdateFilter;
use crate::gatekeeper::Gatekeeper;

/// Configuration of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Buffer pool budget in bytes (already net of the paper's 70 MB system
    /// overhead — see the cluster builder).
    pub mem_bytes: u64,
    /// Disk timing parameters.
    pub disk: DiskParams,
    /// CPU time slice per scheduling step, in µs.
    pub cpu_quantum_us: u64,
    /// Gatekeeper multiprogramming limit.
    pub mpl: usize,
    /// Background writer policy.
    pub writer: WriterConfig,
    /// CPU cost applying one writeset item, in µs.
    pub apply_item_us: u64,
    /// Fixed CPU cost applying one writeset, in µs.
    pub apply_base_us: u64,
}

impl Default for ReplicaConfig {
    /// Paper-shaped defaults: 512 MB pool, 2007-era disk, 5 ms quantum,
    /// MPL 8.
    fn default() -> Self {
        ReplicaConfig {
            mem_bytes: 512 * 1024 * 1024,
            disk: DiskParams::default(),
            cpu_quantum_us: 5_000,
            mpl: 8,
            writer: WriterConfig::default(),
            apply_item_us: 600,
            apply_base_us: 100,
        }
    }
}

/// What happened when a transaction was stepped.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The transaction is waiting on CPU and/or disk until the given time;
    /// step it again then.
    Busy(SimTime),
    /// A read-only transaction finished at the given time.
    Done(SimTime),
    /// An update transaction finished executing at the given time; its
    /// writeset must now be certified.
    ReadyToCommit(SimTime, Writeset),
}

/// Cumulative per-replica counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaStats {
    /// Local transactions completed (read-only + committed updates).
    pub local_completed: u64,
    /// Remote writesets applied.
    pub writesets_applied: u64,
    /// Writeset items applied.
    pub items_applied: u64,
    /// Writeset items dropped by the update filter.
    pub items_filtered: u64,
    /// Writesets fully dropped by the update filter.
    pub writesets_filtered: u64,
    /// Writesets touched by re-replication backfill (partial replication).
    pub writesets_backfilled: u64,
    /// Writeset items re-applied by re-replication backfill.
    pub items_backfilled: u64,
}

/// One replica: storage, CPU, proxy, and running transactions.
pub struct ReplicaNode {
    catalog: Catalog,
    pool: BufferPool,
    disk: DiskModel,
    cpu: CpuServer,
    writer: BackgroundWriter,
    gatekeeper: Gatekeeper,
    filter: UpdateFilter,
    daemon: LoadDaemon,
    rng: SimRng,
    config: ReplicaConfig,
    applied: Version,
    running: HashMap<TxnId, TxnExecutor>,
    stats: ReplicaStats,
}

impl ReplicaNode {
    /// Creates a cold replica over `catalog`.
    pub fn new(catalog: Catalog, config: ReplicaConfig, rng: SimRng) -> Self {
        ReplicaNode {
            pool: BufferPool::with_capacity_bytes(config.mem_bytes),
            disk: DiskModel::new(config.disk),
            cpu: CpuServer::new(),
            writer: BackgroundWriter::new(config.writer),
            gatekeeper: Gatekeeper::new(config.mpl),
            filter: UpdateFilter::all(),
            daemon: LoadDaemon::paper_default(),
            rng,
            catalog,
            config,
            applied: Version::ZERO,
            running: HashMap::new(),
            stats: ReplicaStats::default(),
        }
    }

    /// The replica's applied database version.
    pub fn applied(&self) -> Version {
        self.applied
    }

    /// A snapshot for a transaction starting now (GSI: the replica-local
    /// version).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::at(self.applied)
    }

    /// The schema catalog (immutable over a run).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Outstanding transactions (running + queued) — the "connections"
    /// signal LeastConnections and LARD use.
    pub fn outstanding(&self) -> usize {
        self.gatekeeper.outstanding()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Disk statistics (reads/writes for the paper's I/O tables).
    pub fn disk_stats(&self) -> tashkent_storage::DiskStats {
        self.disk.stats()
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> tashkent_storage::BufferStats {
        self.pool.stats()
    }

    /// Resident buffer-pool bytes — the working-set/memory estimate the
    /// utilization timeline samples.
    pub fn resident_bytes(&self) -> u64 {
        self.pool.resident() as u64 * tashkent_storage::PAGE_SIZE
    }

    /// Total CPU busy time, in µs.
    pub fn cpu_busy_us(&self) -> u64 {
        self.cpu.total_busy_us()
    }

    /// Whether a page is cached (metrics and tests; does not count as a
    /// reference).
    pub fn is_page_resident(&self, page: tashkent_storage::GlobalPageId) -> bool {
        self.pool.is_resident(page)
    }

    /// Current update filter.
    pub fn filter(&self) -> &UpdateFilter {
        &self.filter
    }

    /// Installs a new update filter; dropped tables are evicted from the
    /// pool (the replica stops maintaining them, §3).
    pub fn set_filter(&mut self, filter: UpdateFilter) {
        let universe: Vec<_> = self.catalog.relations().iter().map(|r| r.id).collect();
        for rel in filter.dropped_from(universe) {
            self.pool.evict_relation(rel);
        }
        self.filter = filter;
    }

    /// Whether `txn` is executing (or queued) on this replica. A crash
    /// drops all running transactions, so step events scheduled before the
    /// crash may refer to transactions that no longer exist.
    pub fn is_running(&self, txn: TxnId) -> bool {
        self.running.contains_key(&txn)
    }

    /// Submits a transaction; returns `true` when admitted (step it now) or
    /// `false` when queued behind the Gatekeeper.
    pub fn submit(&mut self, executor: TxnExecutor) -> bool {
        let id = executor.txn();
        let admitted = self.gatekeeper.admit(id);
        self.running.insert(id, executor);
        admitted
    }

    /// Advances transaction `txn` from time `now`.
    ///
    /// Consumes up to one CPU quantum of page touches; a buffer-pool miss
    /// submits the disk read (plus a write-back when the victim was dirty)
    /// and yields.
    ///
    /// # Panics
    ///
    /// Panics if `txn` is not running on this replica.
    pub fn step(&mut self, txn: TxnId, now: SimTime) -> StepOutcome {
        let mut executor = self
            .running
            .remove(&txn)
            .unwrap_or_else(|| panic!("step of unknown transaction {txn}"));
        let mut cpu_accum: u64 = 0;
        loop {
            match executor.next_touch(&self.catalog, &mut self.rng) {
                None => {
                    let done = self.cpu.run(now, cpu_accum);
                    let ws = executor.into_writeset();
                    return if ws.is_empty() {
                        StepOutcome::Done(done)
                    } else {
                        StepOutcome::ReadyToCommit(done, ws)
                    };
                }
                Some(touch) => {
                    cpu_accum += touch.cpu_us;
                    match self.pool.touch(touch.page) {
                        Touch::Hit => {
                            if touch.write.is_some() {
                                self.pool.mark_dirty(touch.page);
                            }
                            if cpu_accum >= self.config.cpu_quantum_us {
                                let t = self.cpu.run(now, cpu_accum);
                                self.running.insert(txn, executor);
                                return StepOutcome::Busy(t);
                            }
                        }
                        Touch::Miss { evicted } => {
                            if touch.write.is_some() {
                                self.pool.mark_dirty(touch.page);
                            }
                            let t_cpu = self.cpu.run(now, cpu_accum);
                            if let Some((victim, true)) = evicted {
                                self.disk.submit(
                                    t_cpu,
                                    DiskRequest {
                                        page: victim,
                                        kind: ReqKind::Write,
                                    },
                                );
                            }
                            let t_read = self.disk.submit(
                                t_cpu,
                                DiskRequest {
                                    page: touch.page,
                                    kind: ReqKind::Read,
                                },
                            );
                            self.running.insert(txn, executor);
                            return StepOutcome::Busy(t_read);
                        }
                    }
                }
            }
        }
    }

    /// Completes a transaction (after commit, read-only completion, or
    /// abort); returns the next Gatekeeper-admitted transaction, if any.
    pub fn finish(&mut self, committed: bool) -> Option<TxnId> {
        if committed {
            self.stats.local_completed += 1;
        }
        self.gatekeeper.release()
    }

    /// Discards a queued-or-running transaction on abort (its executor state
    /// is dropped; the client will retry with a fresh snapshot).
    pub fn discard(&mut self, txn: TxnId) {
        self.running.remove(&txn);
    }

    /// Marks a committed local update as applied: the replica's own writes
    /// are already in its pool, so only the version advances.
    ///
    /// # Panics
    ///
    /// Panics if the commit is not the next version (remote writesets must
    /// be applied first — the GSI ordering rule).
    pub fn commit_local(&mut self, version: Version) {
        assert_eq!(
            version,
            self.applied.next(),
            "local commit out of order: applying {version} over {}",
            self.applied
        );
        self.applied = version;
    }

    /// Applies remote writesets in commit order; returns when the
    /// application work completes.
    ///
    /// Filtered items are dropped at the proxy: no CPU, no page touches, no
    /// disk. The version still advances — the replica stays a consistent
    /// prefix *for the tables it maintains*.
    pub fn apply_writesets(&mut self, now: SimTime, writesets: &[CommittedWriteset]) -> SimTime {
        let mut cpu_us: u64 = 0;
        let mut last_io = now;
        for cw in writesets {
            if cw.version <= self.applied {
                continue; // Already applied (duplicate delivery).
            }
            assert_eq!(
                cw.version,
                self.applied.next(),
                "writeset gap: applying {} over {}",
                cw.version,
                self.applied
            );
            self.applied = cw.version;
            let mut any = false;
            for item in &cw.writeset.items {
                if !self.filter.accepts(item.rel) {
                    self.stats.items_filtered += 1;
                    continue;
                }
                any = true;
                self.stats.items_applied += 1;
                cpu_us += self.config.apply_item_us;
                self.apply_item_pages(now, item, &mut last_io);
            }
            if any {
                cpu_us += self.config.apply_base_us;
                self.stats.writesets_applied += 1;
            } else {
                self.stats.writesets_filtered += 1;
            }
        }
        let t_cpu = self.cpu.run(now, cpu_us);
        t_cpu.max(last_io)
    }

    /// Touches (and dirties) the pages one writeset item writes — the row's
    /// heap page plus index maintenance, the same pages the origin replica
    /// dirtied — paying a disk read per pool miss (and a write-back for a
    /// dirty victim). Shared by normal application and backfill so both
    /// charge the identical cost model.
    fn apply_item_pages(
        &mut self,
        now: SimTime,
        item: &tashkent_engine::WritesetItem,
        last_io: &mut SimTime,
    ) {
        let mut pages = vec![self.catalog.get(item.rel).page_of_row(item.row)];
        for idx in self.catalog.indices_of(item.rel) {
            pages.push(idx.page_of_row(item.row));
        }
        for page in pages {
            match self.pool.touch(page) {
                Touch::Hit => {}
                Touch::Miss { evicted } => {
                    if let Some((victim, true)) = evicted {
                        self.disk.submit(
                            now,
                            DiskRequest {
                                page: victim,
                                kind: ReqKind::Write,
                            },
                        );
                    }
                    *last_io = self.disk.submit(
                        now,
                        DiskRequest {
                            page,
                            kind: ReqKind::Read,
                        },
                    );
                }
            }
            self.pool.mark_dirty(page);
        }
    }

    /// Re-replication backfill (partial replication): re-applies the items
    /// of `writesets` that touch `rels`, bringing this replica's pages for
    /// those relations current so it can join their holder set.
    ///
    /// Unlike [`ReplicaNode::apply_writesets`] this neither advances the
    /// applied version (the caller only replays versions at or below it;
    /// later versions arrive through normal propagation once the filter
    /// widens) nor consults the update filter (the explicit relation set
    /// *is* the filter — the node's own filter has not been widened yet).
    /// Costs are charged through the same CPU and disk models as a normal
    /// apply. Returns when the backfill work completes.
    pub fn backfill_writesets(
        &mut self,
        now: SimTime,
        writesets: &[CommittedWriteset],
        rels: &std::collections::BTreeSet<tashkent_storage::RelationId>,
    ) -> SimTime {
        let mut cpu_us: u64 = 0;
        let mut last_io = now;
        for cw in writesets {
            let mut any = false;
            for item in &cw.writeset.items {
                if !rels.contains(&item.rel) {
                    continue;
                }
                any = true;
                self.stats.items_backfilled += 1;
                cpu_us += self.config.apply_item_us;
                self.apply_item_pages(now, item, &mut last_io);
            }
            if any {
                cpu_us += self.config.apply_base_us;
                self.stats.writesets_backfilled += 1;
            }
        }
        let t_cpu = self.cpu.run(now, cpu_us);
        t_cpu.max(last_io)
    }

    /// Runs background-writer rounds that are due at `now`.
    pub fn maintenance(&mut self, now: SimTime) -> usize {
        self.writer.run_due(now, &mut self.pool, &mut self.disk)
    }

    /// Takes a load-daemon sample at `now`.
    pub fn sample_load(&mut self, now: SimTime) -> LoadReport {
        self.daemon.sample(now, &mut self.cpu, &mut self.disk)
    }

    /// The most recent smoothed load report.
    pub fn load_report(&self) -> LoadReport {
        self.daemon.report()
    }

    /// Crashes the replica: cold cache, all in-flight work lost. Returns the
    /// transactions that were dropped (clients must retry elsewhere).
    pub fn crash(&mut self) -> Vec<TxnId> {
        self.pool = BufferPool::with_capacity_bytes(self.config.mem_bytes);
        let mut dropped: Vec<TxnId> = self.running.drain().map(|(id, _)| id).collect();
        dropped.sort_unstable(); // Deterministic order (HashMap drain is not).
        self.gatekeeper.drain();
        dropped
    }

    /// Recovers the replica to `version` (standard recovery from the
    /// certifier's persistent log or a peer copy, §3); the cache stays cold.
    pub fn recover(&mut self, version: Version) {
        self.applied = version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_engine::{
        Access, PlanStep, Snapshot, TxnId, TxnPlan, TxnTypeId, WriteKind, WriteSpec, Writeset,
        WritesetItem,
    };
    use tashkent_storage::RelationId;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let orders = c.add_table("orders", 64, 6_400);
        c.add_index("orders_pk", orders, 8, 6_400);
        c.add_table("item", 16, 1_600);
        c
    }

    fn node_with_mem(pages: u64) -> ReplicaNode {
        let config = ReplicaConfig {
            mem_bytes: pages * tashkent_storage::PAGE_SIZE,
            ..ReplicaConfig::default()
        };
        ReplicaNode::new(catalog(), config, SimRng::seed_from(7))
    }

    fn scan_plan(c: &Catalog, rel: &str) -> TxnPlan {
        TxnPlan::new(vec![PlanStep::Read {
            rel: c.by_name(rel).unwrap().id,
            access: Access::SeqScan,
        }])
    }

    fn run_to_completion(node: &mut ReplicaNode, txn: TxnId, mut now: SimTime) -> StepOutcome {
        loop {
            match node.step(txn, now) {
                StepOutcome::Busy(t) => now = t,
                done => return done,
            }
        }
    }

    #[test]
    fn read_only_scan_completes_and_reads_pages() {
        let mut node = node_with_mem(128);
        let c = node.catalog().clone();
        let ex = TxnExecutor::new(
            TxnId(1),
            TxnTypeId(0),
            scan_plan(&c, "item"),
            node.snapshot(),
        );
        assert!(node.submit(ex));
        let out = run_to_completion(&mut node, TxnId(1), SimTime::ZERO);
        match out {
            StepOutcome::Done(t) => assert!(t > SimTime::ZERO),
            other => panic!("unexpected {other:?}"),
        }
        // Cold cache: all 16 pages read from disk.
        assert_eq!(node.disk_stats().read_pages, 16);
        assert_eq!(node.finish(true), None);
        assert_eq!(node.stats().local_completed, 1);
    }

    #[test]
    fn warm_cache_scan_is_cpu_only() {
        let mut node = node_with_mem(128);
        let c = node.catalog().clone();
        for i in 0..2 {
            let ex = TxnExecutor::new(
                TxnId(i),
                TxnTypeId(0),
                scan_plan(&c, "item"),
                node.snapshot(),
            );
            node.submit(ex);
            run_to_completion(&mut node, TxnId(i), SimTime::ZERO);
            node.finish(true);
        }
        // Second scan hit entirely in memory.
        assert_eq!(node.disk_stats().read_pages, 16);
        assert_eq!(node.pool_stats().hits, 16);
    }

    #[test]
    fn thrashing_scan_keeps_reading() {
        // Pool of 32 pages, relation of 64: cyclic scans always miss.
        let mut node = node_with_mem(32);
        let c = node.catalog().clone();
        for i in 0..2 {
            let ex = TxnExecutor::new(
                TxnId(i),
                TxnTypeId(0),
                scan_plan(&c, "orders"),
                node.snapshot(),
            );
            node.submit(ex);
            run_to_completion(&mut node, TxnId(i), SimTime::ZERO);
            node.finish(true);
        }
        assert_eq!(node.disk_stats().read_pages, 128, "no reuse when thrashing");
    }

    #[test]
    fn update_txn_reaches_ready_to_commit() {
        let mut node = node_with_mem(128);
        let c = node.catalog().clone();
        let plan = TxnPlan::new(vec![PlanStep::Write(WriteSpec {
            rel: c.by_name("item").unwrap().id,
            rows: 2,
            kind: WriteKind::Update,
            theta: 0.0,
        })]);
        let ex = TxnExecutor::new(TxnId(5), TxnTypeId(1), plan, node.snapshot());
        node.submit(ex);
        match run_to_completion(&mut node, TxnId(5), SimTime::ZERO) {
            StepOutcome::ReadyToCommit(_, ws) => {
                assert!(!ws.is_empty());
                assert_eq!(ws.txn, TxnId(5));
            }
            other => panic!("unexpected {other:?}"),
        }
        node.commit_local(Version(1));
        assert_eq!(node.applied(), Version(1));
        node.finish(true);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_local_commit_panics() {
        let mut node = node_with_mem(128);
        node.commit_local(Version(3));
    }

    fn committed(version: u64, items: Vec<(u32, u64)>) -> CommittedWriteset {
        CommittedWriteset {
            version: Version(version),
            writeset: Writeset::new(
                TxnId(100 + version),
                TxnTypeId(9),
                Snapshot::at(Version(version - 1)),
                items
                    .into_iter()
                    .map(|(r, row)| WritesetItem {
                        rel: RelationId(r),
                        row,
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn apply_writesets_advances_version_and_dirties() {
        let mut node = node_with_mem(128);
        let done = node.apply_writesets(
            SimTime::ZERO,
            &[committed(1, vec![(0, 10)]), committed(2, vec![(2, 5)])],
        );
        assert!(done > SimTime::ZERO);
        assert_eq!(node.applied(), Version(2));
        assert_eq!(node.stats().writesets_applied, 2);
        assert_eq!(node.stats().items_applied, 2);
        // Applying a missed page reads it from disk; the orders row also
        // maintains orders_pk (item has no index): 2 + 1 pages.
        assert_eq!(node.disk_stats().read_pages, 3);
    }

    #[test]
    fn duplicate_writesets_are_skipped() {
        let mut node = node_with_mem(128);
        let ws = vec![committed(1, vec![(0, 10)])];
        node.apply_writesets(SimTime::ZERO, &ws);
        node.apply_writesets(SimTime::ZERO, &ws);
        assert_eq!(node.applied(), Version(1));
        assert_eq!(node.stats().writesets_applied, 1);
    }

    #[test]
    #[should_panic(expected = "writeset gap")]
    fn writeset_gap_panics() {
        let mut node = node_with_mem(128);
        node.apply_writesets(SimTime::ZERO, &[committed(3, vec![(0, 1)])]);
    }

    #[test]
    fn filter_drops_items_without_cost() {
        let mut node = node_with_mem(128);
        let item_rel = node.catalog().by_name("item").unwrap().id;
        node.set_filter(UpdateFilter::only([item_rel]));
        node.apply_writesets(
            SimTime::ZERO,
            &[
                committed(1, vec![(0, 10)]), // orders: filtered
                committed(2, vec![(2, 5)]),  // item: applied
            ],
        );
        assert_eq!(node.applied(), Version(2), "version advances regardless");
        assert_eq!(node.stats().items_filtered, 1);
        assert_eq!(node.stats().items_applied, 1);
        assert_eq!(node.stats().writesets_filtered, 1);
        assert_eq!(node.disk_stats().read_pages, 1, "filtered item did no I/O");
    }

    #[test]
    fn set_filter_evicts_dropped_tables() {
        let mut node = node_with_mem(128);
        let c = node.catalog().clone();
        let orders = c.by_name("orders").unwrap().id;
        let item = c.by_name("item").unwrap().id;
        // Warm both tables.
        for (i, rel) in ["orders", "item"].iter().enumerate() {
            let ex = TxnExecutor::new(
                TxnId(i as u64),
                TxnTypeId(0),
                scan_plan(&c, rel),
                node.snapshot(),
            );
            node.submit(ex);
            run_to_completion(&mut node, TxnId(i as u64), SimTime::ZERO);
            node.finish(true);
        }
        node.set_filter(UpdateFilter::only([item]));
        // Orders (and its index) evicted; item stays warm.
        let pool_orders = {
            let mut count = 0;
            for page in 0..64 {
                if node.pool_stats().hits.checked_add(0).is_some() {
                    // Residency probe via touch-free API:
                    count += usize::from(
                        node.is_page_resident(tashkent_storage::GlobalPageId::new(orders, page)),
                    );
                }
            }
            count
        };
        assert_eq!(pool_orders, 0);
    }

    #[test]
    fn backfill_reapplies_only_requested_relations() {
        let mut node = node_with_mem(128);
        // Apply with a filter dropping orders: items ticked past, pages cold.
        let item_rel = node.catalog().by_name("item").unwrap().id;
        let orders_rel = node.catalog().by_name("orders").unwrap().id;
        node.set_filter(UpdateFilter::only([item_rel]));
        let log = vec![committed(1, vec![(0, 10)]), committed(2, vec![(2, 5)])];
        node.apply_writesets(SimTime::ZERO, &log);
        assert_eq!(node.stats().items_filtered, 1);
        let reads_before = node.disk_stats().read_pages;
        // Backfill the orders group from the log: re-applies only its items.
        let rels: std::collections::BTreeSet<_> = [orders_rel].into_iter().collect();
        let done = node.backfill_writesets(SimTime::from_secs(1), &log, &rels);
        assert!(done > SimTime::from_secs(1));
        assert_eq!(node.stats().items_backfilled, 1);
        assert_eq!(node.stats().writesets_backfilled, 1);
        // Orders heap page + orders_pk page read; version unchanged.
        assert_eq!(node.disk_stats().read_pages, reads_before + 2);
        assert_eq!(
            node.applied(),
            Version(2),
            "backfill never moves the version"
        );
    }

    #[test]
    fn gatekeeper_queues_beyond_mpl() {
        let config = ReplicaConfig {
            mpl: 1,
            ..ReplicaConfig::default()
        };
        let mut node = ReplicaNode::new(catalog(), config, SimRng::seed_from(1));
        let c = node.catalog().clone();
        let ex1 = TxnExecutor::new(
            TxnId(1),
            TxnTypeId(0),
            scan_plan(&c, "item"),
            node.snapshot(),
        );
        let ex2 = TxnExecutor::new(
            TxnId(2),
            TxnTypeId(0),
            scan_plan(&c, "item"),
            node.snapshot(),
        );
        assert!(node.submit(ex1));
        assert!(!node.submit(ex2));
        assert_eq!(node.outstanding(), 2);
        run_to_completion(&mut node, TxnId(1), SimTime::ZERO);
        assert_eq!(node.finish(true), Some(TxnId(2)));
    }

    #[test]
    fn crash_drops_state_and_recovery_restores_version() {
        let mut node = node_with_mem(128);
        let c = node.catalog().clone();
        node.apply_writesets(SimTime::ZERO, &[committed(1, vec![(0, 1)])]);
        let ex = TxnExecutor::new(
            TxnId(9),
            TxnTypeId(0),
            scan_plan(&c, "item"),
            node.snapshot(),
        );
        node.submit(ex);
        let dropped = node.crash();
        assert_eq!(dropped, vec![TxnId(9)]);
        assert_eq!(node.outstanding(), 0);
        node.recover(Version(5));
        assert_eq!(node.applied(), Version(5));
    }

    #[test]
    fn maintenance_flushes_dirty_pages_to_disk() {
        let mut node = node_with_mem(128);
        node.apply_writesets(SimTime::ZERO, &[committed(1, vec![(0, 10), (2, 3)])]);
        let period = tashkent_storage::WriterConfig::default().period;
        let flushed = node.maintenance(period);
        // Heap pages of both rows plus the orders_pk maintenance page.
        assert_eq!(flushed, 3);
        assert_eq!(node.disk_stats().write_pages, 3);
    }
}
