//! Gatekeeper admission control.
//!
//! The proxy "performs admission control to prevent bursts from overloading
//! the database using the Gatekeeper algorithm" (§4.1, citing ENTZ04): at
//! most a configured multiprogramming level (MPL) of transactions runs in
//! the database concurrently; the rest wait in an external FIFO queue at the
//! proxy, which is far cheaper than queueing inside the database.

use std::collections::VecDeque;

use tashkent_engine::TxnId;

/// FIFO admission control with a fixed multiprogramming limit.
///
/// # Examples
///
/// ```
/// use tashkent_engine::TxnId;
/// use tashkent_replica::Gatekeeper;
///
/// let mut gk = Gatekeeper::new(1);
/// assert!(gk.admit(TxnId(1)));        // runs immediately
/// assert!(!gk.admit(TxnId(2)));       // queued
/// assert_eq!(gk.release(), Some(TxnId(2))); // txn 1 done → txn 2 admitted
/// ```
#[derive(Debug, Clone)]
pub struct Gatekeeper {
    mpl: usize,
    in_flight: usize,
    queue: VecDeque<TxnId>,
}

impl Gatekeeper {
    /// Creates a gatekeeper admitting at most `mpl` concurrent transactions.
    ///
    /// # Panics
    ///
    /// Panics if `mpl` is zero.
    pub fn new(mpl: usize) -> Self {
        assert!(mpl > 0, "gatekeeper MPL must be positive");
        Gatekeeper {
            mpl,
            in_flight: 0,
            queue: VecDeque::new(),
        }
    }

    /// The multiprogramming limit.
    pub fn mpl(&self) -> usize {
        self.mpl
    }

    /// Transactions currently inside the database.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Transactions waiting at the proxy.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total load visible to connection-counting balancers: running + queued.
    pub fn outstanding(&self) -> usize {
        self.in_flight + self.queue.len()
    }

    /// Requests admission for `txn`; returns `true` when it may run now,
    /// `false` when it was queued.
    pub fn admit(&mut self, txn: TxnId) -> bool {
        if self.in_flight < self.mpl {
            self.in_flight += 1;
            true
        } else {
            self.queue.push_back(txn);
            false
        }
    }

    /// Reports a running transaction finished (commit or abort); returns the
    /// next queued transaction now admitted, if any.
    ///
    /// # Panics
    ///
    /// Panics if nothing was in flight (a bookkeeping bug in the caller).
    pub fn release(&mut self) -> Option<TxnId> {
        assert!(self.in_flight > 0, "release without a running transaction");
        match self.queue.pop_front() {
            Some(next) => Some(next), // Slot transfers to `next`.
            None => {
                self.in_flight -= 1;
                None
            }
        }
    }

    /// Drops all queued transactions and returns them (used on crash).
    pub fn drain(&mut self) -> Vec<TxnId> {
        self.in_flight = 0;
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_mpl() {
        let mut gk = Gatekeeper::new(3);
        assert!(gk.admit(TxnId(1)));
        assert!(gk.admit(TxnId(2)));
        assert!(gk.admit(TxnId(3)));
        assert!(!gk.admit(TxnId(4)));
        assert_eq!(gk.in_flight(), 3);
        assert_eq!(gk.queued(), 1);
        assert_eq!(gk.outstanding(), 4);
    }

    #[test]
    fn release_hands_slot_to_fifo_head() {
        let mut gk = Gatekeeper::new(1);
        gk.admit(TxnId(1));
        gk.admit(TxnId(2));
        gk.admit(TxnId(3));
        assert_eq!(gk.release(), Some(TxnId(2)));
        assert_eq!(gk.release(), Some(TxnId(3)));
        assert_eq!(gk.release(), None);
        assert_eq!(gk.in_flight(), 0);
    }

    #[test]
    fn in_flight_constant_while_queue_nonempty() {
        let mut gk = Gatekeeper::new(2);
        for i in 0..5 {
            gk.admit(TxnId(i));
        }
        assert_eq!(gk.in_flight(), 2);
        gk.release();
        assert_eq!(gk.in_flight(), 2, "slot transferred, not freed");
    }

    #[test]
    #[should_panic(expected = "release without")]
    fn release_on_idle_panics() {
        Gatekeeper::new(1).release();
    }

    #[test]
    fn drain_clears_state() {
        let mut gk = Gatekeeper::new(1);
        gk.admit(TxnId(1));
        gk.admit(TxnId(2));
        let dropped = gk.drain();
        assert_eq!(dropped, vec![TxnId(2)]);
        assert_eq!(gk.in_flight(), 0);
        assert_eq!(gk.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "MPL must be positive")]
    fn zero_mpl_rejected() {
        Gatekeeper::new(0);
    }
}
