//! Replica node: the database replica plus its middleware proxy.
//!
//! Each Tashkent replica is a database guarded by a transparent proxy
//! (§4.1): the proxy admits transactions (Gatekeeper), forwards them to the
//! database, certifies update commits, applies remote writesets in commit
//! order, and — under update filtering (§3) — drops writesets for tables the
//! replica does not serve. A lightweight daemon reports smoothed CPU and
//! disk utilization to the load balancer (§2.4).
//!
//! [`ReplicaNode`] combines these parts with the storage substrate (buffer
//! pool, disk channel, background writer) and a CPU server into a state
//! machine the cluster event loop drives.

pub mod cpu;
pub mod daemon;
pub mod filter;
pub mod gatekeeper;
pub mod node;

pub use cpu::CpuServer;
pub use daemon::{LoadDaemon, LoadReport};
pub use filter::UpdateFilter;
pub use gatekeeper::Gatekeeper;
pub use node::{ReplicaConfig, ReplicaNode, ReplicaStats, StepOutcome};
