//! Property-based tests for buffer-pool invariants.

use proptest::prelude::*;
use tashkent_storage::{BufferPool, GlobalPageId, RelationId, Touch};

/// An abstract operation against the pool.
#[derive(Debug, Clone)]
enum Op {
    Touch(u32, u32),
    MarkDirty(u32, u32),
    CollectDirty(usize),
    EvictRelation(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..4, 0u32..64).prop_map(|(r, p)| Op::Touch(r, p)),
        2 => (0u32..4, 0u32..64).prop_map(|(r, p)| Op::MarkDirty(r, p)),
        1 => (0usize..16).prop_map(Op::CollectDirty),
        1 => (0u32..4).prop_map(Op::EvictRelation),
    ]
}

fn page(r: u32, p: u32) -> GlobalPageId {
    GlobalPageId::new(RelationId(r), p)
}

proptest! {
    /// Residency never exceeds capacity, and dirty pages are always a subset
    /// of resident pages, across arbitrary operation sequences.
    #[test]
    fn pool_invariants_hold(ops in proptest::collection::vec(op_strategy(), 1..400),
                            cap in 1usize..32) {
        let mut pool = BufferPool::new(cap);
        let mut flushed_total = 0u64;
        for op in ops {
            match op {
                Op::Touch(r, p) => { pool.touch(page(r, p)); }
                Op::MarkDirty(r, p) => { pool.mark_dirty(page(r, p)); }
                Op::CollectDirty(n) => { flushed_total += pool.collect_dirty(n).len() as u64; }
                Op::EvictRelation(r) => { pool.evict_relation(RelationId(r)); }
            }
            prop_assert!(pool.resident() <= cap);
            prop_assert!(pool.dirty_count() <= pool.resident());
        }
        prop_assert_eq!(pool.stats().flushed, flushed_total);
    }

    /// After touching a page it is resident, and touching it again is a hit.
    #[test]
    fn touch_installs_and_hits(r in 0u32..8, p in 0u32..1000, cap in 1usize..64) {
        let mut pool = BufferPool::new(cap);
        pool.touch(page(r, p));
        prop_assert!(pool.is_resident(page(r, p)));
        prop_assert_eq!(pool.touch(page(r, p)), Touch::Hit);
    }

    /// Hits plus misses equals total touches; evictions only happen at
    /// capacity.
    #[test]
    fn accounting_balances(pages in proptest::collection::vec((0u32..2, 0u32..128), 1..300),
                           cap in 1usize..64) {
        let mut pool = BufferPool::new(cap);
        for (r, p) in &pages {
            pool.touch(page(*r, *p));
        }
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, pages.len() as u64);
        // Installed = misses; installed - evicted = resident.
        prop_assert_eq!(s.misses - s.evictions, pool.resident() as u64);
    }

    /// A working set no larger than capacity never evicts after warm-up.
    #[test]
    fn fitting_working_set_stops_missing(cap in 4usize..64) {
        let mut pool = BufferPool::new(cap);
        let ws: Vec<GlobalPageId> = (0..cap as u32).map(|p| page(0, p)).collect();
        // Two warm-up passes, then measure.
        for _ in 0..2 {
            for p in &ws { pool.touch(*p); }
        }
        let before = pool.stats();
        for _ in 0..3 {
            for p in &ws { pool.touch(*p); }
        }
        let after = pool.stats();
        prop_assert_eq!(before.misses, after.misses);
        prop_assert_eq!(after.hits - before.hits, 3 * cap as u64);
    }

    /// A working set larger than capacity keeps missing under cyclic access
    /// (clock-sweep degrades like LRU on sequential floods).
    #[test]
    fn oversized_working_set_keeps_missing(cap in 4usize..32) {
        let mut pool = BufferPool::new(cap);
        let n = (cap * 2) as u32;
        for _ in 0..3 {
            for p in 0..n { pool.touch(page(0, p)); }
        }
        let before = pool.stats().misses;
        for p in 0..n { pool.touch(page(0, p)); }
        let after = pool.stats().misses;
        prop_assert!(after > before, "cyclic overflow must keep missing");
    }

    /// collect_dirty returns each dirty page at most once and leaves the
    /// pool clean when unbounded.
    #[test]
    fn collect_dirty_is_exact(dirt in proptest::collection::btree_set((0u32..4, 0u32..32), 0..40)) {
        let mut pool = BufferPool::new(256);
        for (r, p) in &dirt {
            pool.touch(page(*r, *p));
            pool.mark_dirty(page(*r, *p));
        }
        let mut got = pool.collect_dirty(usize::MAX);
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len(), dirt.len());
        prop_assert_eq!(pool.dirty_count(), 0);
    }

    /// Evicting a relation removes exactly its pages.
    #[test]
    fn evict_relation_is_selective(pages in proptest::collection::btree_set((0u32..3, 0u32..32), 1..60)) {
        let mut pool = BufferPool::new(256);
        for (r, p) in &pages {
            pool.touch(page(*r, *p));
        }
        let target = RelationId(1);
        let of_target = pages.iter().filter(|(r, _)| *r == 1).count();
        let (clean, dirty) = pool.evict_relation(target);
        prop_assert_eq!(clean + dirty, of_target);
        prop_assert_eq!(pool.resident(), pages.len() - of_target);
        for (r, p) in &pages {
            prop_assert_eq!(pool.is_resident(page(*r, *p)), *r != 1);
        }
    }
}
