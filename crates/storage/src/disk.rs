//! Disk-channel model.
//!
//! Every replica in the paper has a single 120 GB, 7200 rpm drive; reads
//! (buffer-pool misses) and writes (dirty-page write-back from update
//! propagation) share that one channel, and the competition between the two
//! is the mechanism behind both MALB's and update filtering's gains (§5.5).
//!
//! The model is a FIFO channel with a positional head: a request for the
//! page immediately following the previously-served page of the same
//! relation costs only the transfer time; any other request additionally
//! pays an average seek + rotational delay. The channel keeps a
//! `busy_until` horizon — submitting work returns the completion time, so
//! the discrete-event simulation needs no events inside the disk itself.

use tashkent_sim::SimTime;

use crate::ids::{GlobalPageId, PAGE_SIZE};

/// Whether a request reads a page in or writes one back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Page read caused by a buffer-pool miss.
    Read,
    /// Dirty-page write-back.
    Write,
}

/// One page-granularity disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// The page being transferred.
    pub page: GlobalPageId,
    /// Read or write.
    pub kind: ReqKind,
}

/// Timing parameters of the simulated drive.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average positioning cost (seek + rotational latency) in microseconds
    /// paid whenever the head does not continue a sequential run.
    pub seek_us: u64,
    /// Per-page transfer time in microseconds.
    pub transfer_us: u64,
    /// Forward window (in pages, same relation) within which a request
    /// still counts as sequential — models drive/OS read-ahead riding over
    /// already-cached pages that were skipped in a scan.
    pub seq_window: u32,
}

impl Default for DiskParams {
    /// A 2007-era 7200 rpm desktop drive: ~6.5 ms positioning, ~60 MB/s
    /// sequential transfer (≈ 133 µs per 8 KB page), 32-page read-ahead.
    fn default() -> Self {
        DiskParams {
            seek_us: 8_000,
            transfer_us: 160,
            seq_window: 32,
        }
    }
}

/// Cumulative disk activity counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Pages read.
    pub read_pages: u64,
    /// Pages written.
    pub write_pages: u64,
    /// Requests that paid a seek.
    pub seeks: u64,
    /// Requests served sequentially.
    pub sequential: u64,
    /// Total busy time in microseconds.
    pub busy_us: u64,
}

impl DiskStats {
    /// Bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_pages * PAGE_SIZE
    }

    /// Bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_pages * PAGE_SIZE
    }
}

/// A single shared disk channel with FIFO service and a positional head.
///
/// # Examples
///
/// ```
/// use tashkent_sim::SimTime;
/// use tashkent_storage::{DiskModel, DiskParams, DiskRequest, GlobalPageId, RelationId, ReqKind};
///
/// let mut disk = DiskModel::new(DiskParams { seek_us: 1_000, transfer_us: 100, seq_window: 1 });
/// let r = |page| DiskRequest { page: GlobalPageId::new(RelationId(0), page), kind: ReqKind::Read };
/// let t1 = disk.submit(SimTime::ZERO, r(10));      // seek + transfer
/// let t2 = disk.submit(SimTime::ZERO, r(11));      // sequential: transfer only
/// assert_eq!(t1.as_micros(), 1_100);
/// assert_eq!(t2.as_micros(), 1_200);
/// ```
#[derive(Debug, Clone)]
pub struct DiskModel {
    params: DiskParams,
    busy_until: SimTime,
    head: Option<GlobalPageId>,
    stats: DiskStats,
    /// Busy time accumulated since the last utilization sample.
    window_busy_us: u64,
}

impl DiskModel {
    /// Creates a disk with the given timing parameters.
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            params,
            busy_until: SimTime::ZERO,
            head: None,
            stats: DiskStats::default(),
            window_busy_us: 0,
        }
    }

    /// Timing parameters in use.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Cumulative counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Submits a request at time `now`; returns its completion time.
    ///
    /// Requests queue FIFO: service begins at `max(now, busy_until)`.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) -> SimTime {
        let window = self.params.seq_window.max(1);
        let sequential = self.head.is_some_and(|h| {
            req.page.rel == h.rel && req.page.page > h.page && req.page.page - h.page <= window
        });
        let service = if sequential {
            self.stats.sequential += 1;
            self.params.transfer_us
        } else {
            self.stats.seeks += 1;
            self.params.seek_us + self.params.transfer_us
        };
        match req.kind {
            ReqKind::Read => self.stats.read_pages += 1,
            ReqKind::Write => self.stats.write_pages += 1,
        }
        let start = self.busy_until.max(now);
        let done = start + service;
        self.busy_until = done;
        self.head = Some(req.page);
        self.stats.busy_us += service;
        self.window_busy_us += service;
        done
    }

    /// Microseconds of already-queued work ahead of a request arriving now.
    pub fn backlog_us(&self, now: SimTime) -> u64 {
        self.busy_until.saturating_since(now)
    }

    /// Returns and resets the busy time accumulated since the previous call.
    ///
    /// The per-replica load daemon divides this by its sampling interval to
    /// report disk utilization. Because service time is charged at submit
    /// time, a deeply queued disk can report utilization above 1.0 for a
    /// window; callers clamp as needed (overload is still overload).
    pub fn take_window_busy_us(&mut self) -> u64 {
        std::mem::take(&mut self.window_busy_us)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::new(DiskParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelationId;

    const P: DiskParams = DiskParams {
        seek_us: 1_000,
        transfer_us: 100,
        seq_window: 1,
    };

    fn read(rel: u32, page: u32) -> DiskRequest {
        DiskRequest {
            page: GlobalPageId::new(RelationId(rel), page),
            kind: ReqKind::Read,
        }
    }

    fn write(rel: u32, page: u32) -> DiskRequest {
        DiskRequest {
            page: GlobalPageId::new(RelationId(rel), page),
            kind: ReqKind::Write,
        }
    }

    #[test]
    fn first_access_pays_seek() {
        let mut d = DiskModel::new(P);
        let done = d.submit(SimTime::ZERO, read(0, 5));
        assert_eq!(done.as_micros(), 1_100);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn sequential_run_transfers_only() {
        let mut d = DiskModel::new(P);
        d.submit(SimTime::ZERO, read(0, 5));
        let done = d.submit(SimTime::ZERO, read(0, 6));
        assert_eq!(done.as_micros(), 1_200);
        assert_eq!(d.stats().sequential, 1);
    }

    #[test]
    fn interleaved_relations_break_sequentiality() {
        let mut d = DiskModel::new(P);
        d.submit(SimTime::ZERO, read(0, 5));
        d.submit(SimTime::ZERO, read(1, 0));
        let done = d.submit(SimTime::ZERO, read(0, 6));
        // Three seeks: the interleaved access destroyed the run.
        assert_eq!(d.stats().seeks, 3);
        assert_eq!(done.as_micros(), 3 * 1_100);
    }

    #[test]
    fn fifo_queueing_delays_later_requests() {
        let mut d = DiskModel::new(P);
        let t1 = d.submit(SimTime::ZERO, read(0, 0));
        // Arrives while the first is still in service.
        let t2 = d.submit(SimTime::from_micros(50), read(9, 0));
        assert_eq!(t1.as_micros(), 1_100);
        assert_eq!(t2.as_micros(), 2_200);
    }

    #[test]
    fn idle_gap_resets_start_time_not_head() {
        let mut d = DiskModel::new(P);
        d.submit(SimTime::ZERO, read(0, 0));
        // Long idle gap; head is still after page 0, so page 1 is sequential.
        let done = d.submit(SimTime::from_secs(10), read(0, 1));
        assert_eq!(done.as_micros(), 10_000_000 + 100);
    }

    #[test]
    fn reads_and_writes_share_the_channel() {
        let mut d = DiskModel::new(P);
        d.submit(SimTime::ZERO, write(3, 7));
        let done = d.submit(SimTime::ZERO, read(0, 0));
        assert_eq!(done.as_micros(), 2_200);
        assert_eq!(d.stats().write_pages, 1);
        assert_eq!(d.stats().read_pages, 1);
        assert_eq!(d.stats().write_bytes(), PAGE_SIZE);
    }

    #[test]
    fn backlog_reflects_queued_work() {
        let mut d = DiskModel::new(P);
        d.submit(SimTime::ZERO, read(0, 0));
        d.submit(SimTime::ZERO, read(1, 0));
        assert_eq!(d.backlog_us(SimTime::ZERO), 2_200);
        assert_eq!(d.backlog_us(SimTime::from_micros(2_200)), 0);
    }

    #[test]
    fn window_busy_resets_on_take() {
        let mut d = DiskModel::new(P);
        d.submit(SimTime::ZERO, read(0, 0));
        assert_eq!(d.take_window_busy_us(), 1_100);
        assert_eq!(d.take_window_busy_us(), 0);
        d.submit(SimTime::from_secs(1), read(0, 1));
        assert_eq!(d.take_window_busy_us(), 100);
        // Cumulative stats keep the full history.
        assert_eq!(d.stats().busy_us, 1_200);
    }

    #[test]
    fn default_params_are_2007_era() {
        let p = DiskParams::default();
        // Random page: ~6.5 ms → ~150 IOPS; sequential: ~60 MB/s.
        assert!((5_000..9_000).contains(&p.seek_us));
        let mb_per_s = PAGE_SIZE as f64 / (p.transfer_us as f64 / 1e6) / 1e6;
        assert!((40.0..80.0).contains(&mb_per_s), "{mb_per_s} MB/s");
    }
}
