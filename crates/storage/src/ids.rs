//! Identifier types shared across the storage and engine layers.

use std::fmt;

/// Size of a database page in bytes (PostgreSQL default, paper §4.2.2).
pub const PAGE_SIZE: u64 = 8 * 1024;

/// Identifies a relation (table or index) within a database schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// A page number local to one relation (0-based).
pub type PageId = u32;

/// A row number local to one relation (0-based).
pub type RowId = u64;

/// Identifies a page globally: a relation plus a page within it.
///
/// All replicas share the same logical page identifiers because they store
/// identical (fully replicated) databases; each replica's buffer pool caches
/// its own subset of these pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalPageId {
    /// The relation this page belongs to.
    pub rel: RelationId,
    /// Page number within the relation.
    pub page: PageId,
}

impl GlobalPageId {
    /// Creates a global page id.
    pub fn new(rel: RelationId, page: PageId) -> Self {
        GlobalPageId { rel, page }
    }

    /// Returns `true` when `other` is the immediately following page of the
    /// same relation — the condition under which a disk read continues a
    /// sequential transfer instead of seeking.
    pub fn is_sequential_successor_of(&self, other: &GlobalPageId) -> bool {
        self.rel == other.rel && other.page.checked_add(1) == Some(self.page)
    }
}

impl fmt::Display for GlobalPageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.rel, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_successor_detection() {
        let r = RelationId(3);
        let a = GlobalPageId::new(r, 10);
        let b = GlobalPageId::new(r, 11);
        assert!(b.is_sequential_successor_of(&a));
        assert!(!a.is_sequential_successor_of(&b));
        assert!(!a.is_sequential_successor_of(&a));
    }

    #[test]
    fn successor_requires_same_relation() {
        let a = GlobalPageId::new(RelationId(1), 10);
        let b = GlobalPageId::new(RelationId(2), 11);
        assert!(!b.is_sequential_successor_of(&a));
    }

    #[test]
    fn successor_handles_page_overflow() {
        let a = GlobalPageId::new(RelationId(1), u32::MAX);
        let b = GlobalPageId::new(RelationId(1), 0);
        assert!(!b.is_sequential_successor_of(&a));
    }

    #[test]
    fn display_formats() {
        assert_eq!(GlobalPageId::new(RelationId(2), 7).to_string(), "rel2:7");
    }
}
