//! Relation catalog: the `pg_class`-style metadata the load balancer reads.
//!
//! The paper's load balancer retrieves the schema and, for every table and
//! index, its size in pages via `SELECT relpages FROM pg_class WHERE
//! relname='…'` (§4.2.2). [`Catalog`] is that information channel: replicas
//! build it from the workload schema, and the load balancer may only consult
//! the catalog (never the simulator's ground truth) when estimating working
//! sets.

use std::collections::HashMap;

use crate::ids::{GlobalPageId, PageId, RelationId, RowId, PAGE_SIZE};

/// Whether a relation is a base table or an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// A heap table holding rows.
    Table,
    /// A secondary structure (B-tree index) over a table.
    Index,
}

/// Metadata for one relation, mirroring a `pg_class` row.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Stable identifier.
    pub id: RelationId,
    /// Relation name, e.g. `"order_line"` or `"order_line_pk"`.
    pub name: String,
    /// Table or index.
    pub kind: RelationKind,
    /// Number of 8 KB pages (`relpages`).
    pub pages: PageId,
    /// Number of rows (`reltuples`); for indices, the number of entries.
    pub rows: RowId,
    /// For an index, the table it belongs to.
    pub table: Option<RelationId>,
}

impl Relation {
    /// Size of the relation in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.pages as u64 * PAGE_SIZE
    }

    /// Rows stored per page (at least 1 to keep arithmetic safe).
    pub fn rows_per_page(&self) -> u64 {
        if self.pages == 0 {
            self.rows.max(1)
        } else {
            (self.rows / self.pages as u64).max(1)
        }
    }

    /// Page holding a given row (rows are laid out densely in row order).
    pub fn page_of_row(&self, row: RowId) -> GlobalPageId {
        let per = self.rows_per_page();
        let page = ((row / per) as PageId).min(self.pages.saturating_sub(1));
        GlobalPageId::new(self.id, page)
    }
}

/// A schema registry for one database.
///
/// # Examples
///
/// ```
/// use tashkent_storage::{Catalog, RelationKind};
///
/// let mut cat = Catalog::new();
/// let t = cat.add_table("item", 1_250, 10_000);
/// let i = cat.add_index("item_pk", t, 40, 10_000);
/// assert_eq!(cat.relpages("item"), Some(1_250));
/// assert_eq!(cat.get(i).kind, RelationKind::Index);
/// assert_eq!(cat.total_pages(), 1_290);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelationId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn add(&mut self, mut rel: Relation) -> RelationId {
        let id = RelationId(self.relations.len() as u32);
        rel.id = id;
        assert!(
            self.by_name.insert(rel.name.clone(), id).is_none(),
            "duplicate relation name {:?}",
            rel.name
        );
        self.relations.push(rel);
        id
    }

    /// Registers a table.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_table(&mut self, name: &str, pages: PageId, rows: RowId) -> RelationId {
        self.add(Relation {
            id: RelationId(0),
            name: name.to_string(),
            kind: RelationKind::Table,
            pages,
            rows,
            table: None,
        })
    }

    /// Registers an index over `table`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_index(
        &mut self,
        name: &str,
        table: RelationId,
        pages: PageId,
        rows: RowId,
    ) -> RelationId {
        self.add(Relation {
            id: RelationId(0),
            name: name.to_string(),
            kind: RelationKind::Index,
            pages,
            rows,
            table: Some(table),
        })
    }

    /// Looks a relation up by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this catalog.
    pub fn get(&self, id: RelationId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Looks a relation up by name.
    pub fn by_name(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|id| self.get(*id))
    }

    /// The `relpages` query the paper's load balancer issues (§4.2.2).
    pub fn relpages(&self, name: &str) -> Option<PageId> {
        self.by_name(name).map(|r| r.pages)
    }

    /// All relations in id order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Indices defined over `table`.
    pub fn indices_of(&self, table: RelationId) -> impl Iterator<Item = &Relation> {
        self.relations
            .iter()
            .filter(move |r| r.table == Some(table))
    }

    /// Total database size in pages.
    pub fn total_pages(&self) -> u64 {
        self.relations.iter().map(|r| r.pages as u64).sum()
    }

    /// Total database size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = c.add_table("orders", 100, 10_000);
        c.add_index("orders_pk", t, 10, 10_000);
        c.add_table("item", 50, 1_000);
        c
    }

    #[test]
    fn lookup_by_name_and_id() {
        let c = small_catalog();
        let orders = c.by_name("orders").unwrap();
        assert_eq!(orders.kind, RelationKind::Table);
        assert_eq!(c.get(orders.id).name, "orders");
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn relpages_matches_pg_class_semantics() {
        let c = small_catalog();
        assert_eq!(c.relpages("orders"), Some(100));
        assert_eq!(c.relpages("orders_pk"), Some(10));
        assert_eq!(c.relpages("missing"), None);
    }

    #[test]
    fn indices_of_finds_only_that_tables_indices() {
        let c = small_catalog();
        let orders = c.by_name("orders").unwrap().id;
        let idx: Vec<&str> = c.indices_of(orders).map(|r| r.name.as_str()).collect();
        assert_eq!(idx, vec!["orders_pk"]);
        let item = c.by_name("item").unwrap().id;
        assert_eq!(c.indices_of(item).count(), 0);
    }

    #[test]
    fn totals_sum_pages() {
        let c = small_catalog();
        assert_eq!(c.total_pages(), 160);
        assert_eq!(c.total_bytes(), 160 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.add_table("t", 1, 1);
        c.add_table("t", 2, 2);
    }

    #[test]
    fn row_to_page_mapping_is_dense_and_bounded() {
        let c = small_catalog();
        let orders = c.by_name("orders").unwrap();
        // 10_000 rows over 100 pages → 100 rows/page.
        assert_eq!(orders.rows_per_page(), 100);
        assert_eq!(orders.page_of_row(0).page, 0);
        assert_eq!(orders.page_of_row(99).page, 0);
        assert_eq!(orders.page_of_row(100).page, 1);
        // Out-of-range rows clamp to the last page.
        assert_eq!(orders.page_of_row(1_000_000).page, 99);
    }

    #[test]
    fn zero_page_relation_is_safe() {
        let mut c = Catalog::new();
        let t = c.add_table("empty", 0, 0);
        let r = c.get(t);
        assert_eq!(r.rows_per_page(), 1);
        assert_eq!(r.page_of_row(5).page, 0);
        assert_eq!(r.size_bytes(), 0);
    }
}
