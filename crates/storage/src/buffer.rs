//! Clock-sweep buffer pool.
//!
//! PostgreSQL manages its shared buffers with a clock-sweep (second chance)
//! replacement policy over 8 KB pages; this is a faithful functional model of
//! that behaviour. The pool tracks residency, reference bits, and dirty bits.
//! It never holds page *contents* — the simulation only needs to know *which*
//! pages are resident and what that costs.

use std::collections::HashMap;

use crate::ids::{GlobalPageId, RelationId};

/// Result of touching a page in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The page was resident; no disk activity needed.
    Hit,
    /// The page was absent and has been installed. If installing it evicted
    /// a victim, the victim and its dirty flag are reported so the caller
    /// can issue the write-back.
    Miss {
        /// Evicted victim page and whether it was dirty, if any.
        evicted: Option<(GlobalPageId, bool)>,
    },
}

/// Counters describing pool behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Touches that found the page resident.
    pub hits: u64,
    /// Touches that had to install the page.
    pub misses: u64,
    /// Evictions performed to make room.
    pub evictions: u64,
    /// Evictions whose victim was dirty (forcing a write-back).
    pub dirty_evictions: u64,
    /// Pages handed to the background writer for flushing.
    pub flushed: u64,
}

impl BufferStats {
    /// Hit fraction in `[0, 1]`; zero when no touches happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Frame {
    page: GlobalPageId,
    referenced: bool,
    dirty: bool,
}

/// A fixed-capacity page cache with clock-sweep replacement.
///
/// # Examples
///
/// ```
/// use tashkent_storage::{BufferPool, GlobalPageId, RelationId, Touch};
///
/// let mut pool = BufferPool::new(2);
/// let p = |n| GlobalPageId::new(RelationId(0), n);
/// assert_eq!(pool.touch(p(0)), Touch::Miss { evicted: None });
/// assert_eq!(pool.touch(p(0)), Touch::Hit);
/// pool.touch(p(1));
/// // Pool is full; a third page evicts a victim.
/// match pool.touch(p(2)) {
///     Touch::Miss { evicted: Some(_) } => {}
///     other => panic!("expected eviction, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Option<Frame>>,
    free: Vec<u32>,
    page_table: HashMap<GlobalPageId, u32>,
    hand: usize,
    dirty_count: usize,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::new(),
            free: Vec::new(),
            page_table: HashMap::new(),
            hand: 0,
            dirty_count: 0,
            stats: BufferStats::default(),
        }
    }

    /// Creates a pool sized for `bytes` of memory (rounded down to pages).
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(((bytes / crate::ids::PAGE_SIZE) as usize).max(1))
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn resident(&self) -> usize {
        self.page_table.len()
    }

    /// Current number of dirty resident pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Behaviour counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Whether `page` is resident.
    pub fn is_resident(&self, page: GlobalPageId) -> bool {
        self.page_table.contains_key(&page)
    }

    /// References `page`, installing it on a miss and evicting if full.
    pub fn touch(&mut self, page: GlobalPageId) -> Touch {
        if let Some(&idx) = self.page_table.get(&page) {
            let frame = self.frames[idx as usize]
                .as_mut()
                .expect("page table points at occupied frame");
            frame.referenced = true;
            self.stats.hits += 1;
            return Touch::Hit;
        }
        self.stats.misses += 1;
        let evicted = self.install(page);
        Touch::Miss { evicted }
    }

    /// Marks a resident page dirty; returns `false` when the page is absent.
    pub fn mark_dirty(&mut self, page: GlobalPageId) -> bool {
        match self.page_table.get(&page) {
            Some(&idx) => {
                let frame = self.frames[idx as usize]
                    .as_mut()
                    .expect("page table points at occupied frame");
                if !frame.dirty {
                    frame.dirty = true;
                    self.dirty_count += 1;
                }
                true
            }
            None => false,
        }
    }

    fn install(&mut self, page: GlobalPageId) -> Option<(GlobalPageId, bool)> {
        if let Some(idx) = self.free.pop() {
            self.frames[idx as usize] = Some(Frame {
                page,
                referenced: true,
                dirty: false,
            });
            self.page_table.insert(page, idx);
            return None;
        }
        if self.frames.len() < self.capacity {
            let idx = self.frames.len() as u32;
            self.frames.push(Some(Frame {
                page,
                referenced: true,
                dirty: false,
            }));
            self.page_table.insert(page, idx);
            return None;
        }
        let victim_idx = self.sweep();
        let victim = self.frames[victim_idx]
            .replace(Frame {
                page,
                referenced: true,
                dirty: false,
            })
            .expect("sweep returns occupied frame");
        self.page_table.remove(&victim.page);
        self.page_table.insert(page, victim_idx as u32);
        self.stats.evictions += 1;
        if victim.dirty {
            self.dirty_count -= 1;
            self.stats.dirty_evictions += 1;
        }
        Some((victim.page, victim.dirty))
    }

    /// Clock-sweep: advance the hand, clearing reference bits, until an
    /// unreferenced occupied frame is found.
    fn sweep(&mut self) -> usize {
        // The pool is full (no free slots), so every frame is occupied and
        // the sweep terminates within two passes.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = self.frames[idx].as_mut().expect("pool is full");
            if frame.referenced {
                frame.referenced = false;
            } else {
                return idx;
            }
        }
    }

    /// Hands up to `max` dirty pages to the caller for write-back, clearing
    /// their dirty bits. The scan resumes from where the previous call left
    /// off, so successive calls cycle fairly through the pool.
    ///
    /// Clearing at collection time models write coalescing: a page updated
    /// many times between two writer rounds is written once.
    pub fn collect_dirty(&mut self, max: usize) -> Vec<GlobalPageId> {
        let mut out = Vec::new();
        if self.dirty_count == 0 || max == 0 || self.frames.is_empty() {
            return out;
        }
        let n = self.frames.len();
        let start = self.hand % n;
        for off in 0..n {
            if out.len() >= max {
                break;
            }
            let idx = (start + off) % n;
            if let Some(frame) = self.frames[idx].as_mut() {
                if frame.dirty {
                    frame.dirty = false;
                    self.dirty_count -= 1;
                    self.stats.flushed += 1;
                    out.push(frame.page);
                }
            }
        }
        out
    }

    /// Evicts every resident page of `rel`, returning `(clean, dirty)`
    /// eviction counts. Used when update filtering lets a replica drop a
    /// table it no longer serves (§3).
    pub fn evict_relation(&mut self, rel: RelationId) -> (usize, usize) {
        let mut clean = 0;
        let mut dirty = 0;
        for idx in 0..self.frames.len() {
            let matches = self.frames[idx].as_ref().is_some_and(|f| f.page.rel == rel);
            if matches {
                let frame = self.frames[idx].take().expect("checked above");
                self.page_table.remove(&frame.page);
                self.free.push(idx as u32);
                if frame.dirty {
                    self.dirty_count -= 1;
                    dirty += 1;
                } else {
                    clean += 1;
                }
            }
        }
        (clean, dirty)
    }

    /// Number of resident pages belonging to `rel` (metrics only; O(frames)).
    pub fn resident_of(&self, rel: RelationId) -> usize {
        self.frames
            .iter()
            .filter(|f| f.as_ref().is_some_and(|f| f.page.rel == rel))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelationId;

    fn p(rel: u32, page: u32) -> GlobalPageId {
        GlobalPageId::new(RelationId(rel), page)
    }

    #[test]
    fn hit_after_install() {
        let mut pool = BufferPool::new(4);
        assert_eq!(pool.touch(p(0, 1)), Touch::Miss { evicted: None });
        assert_eq!(pool.touch(p(0, 1)), Touch::Hit);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn fills_before_evicting() {
        let mut pool = BufferPool::new(3);
        for i in 0..3 {
            assert_eq!(pool.touch(p(0, i)), Touch::Miss { evicted: None });
        }
        assert_eq!(pool.resident(), 3);
        match pool.touch(p(0, 3)) {
            Touch::Miss { evicted: Some(_) } => {}
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(pool.resident(), 3);
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn second_chance_protects_referenced_pages() {
        let mut pool = BufferPool::new(2);
        pool.touch(p(0, 0));
        pool.touch(p(0, 1));
        // Re-reference page 0 so its bit is set; page 1's bit is also set
        // from installation, so the sweep clears both and evicts the first
        // unreferenced frame it reaches on the second pass (frame 0).
        pool.touch(p(0, 0));
        pool.touch(p(0, 2));
        // One of the original pages is gone, the other survives.
        let survivors = [p(0, 0), p(0, 1)]
            .iter()
            .filter(|q| pool.is_resident(**q))
            .count();
        assert_eq!(survivors, 1);
        assert!(pool.is_resident(p(0, 2)));
    }

    #[test]
    fn scan_resistance_of_rereferenced_page() {
        // A page touched on every round should survive a long scan of
        // never-reused pages.
        let mut pool = BufferPool::new(8);
        let hot = p(9, 0);
        pool.touch(hot);
        for i in 0..100 {
            pool.touch(p(0, i));
            pool.touch(hot);
        }
        assert!(pool.is_resident(hot));
    }

    #[test]
    fn dirty_marking_and_eviction_reporting() {
        let mut pool = BufferPool::new(1);
        pool.touch(p(0, 0));
        assert!(pool.mark_dirty(p(0, 0)));
        assert_eq!(pool.dirty_count(), 1);
        // Marking twice does not double count.
        assert!(pool.mark_dirty(p(0, 0)));
        assert_eq!(pool.dirty_count(), 1);
        match pool.touch(p(0, 1)) {
            Touch::Miss {
                evicted: Some((victim, dirty)),
            } => {
                assert_eq!(victim, p(0, 0));
                assert!(dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn mark_dirty_on_absent_page_fails() {
        let mut pool = BufferPool::new(1);
        assert!(!pool.mark_dirty(p(0, 0)));
        assert_eq!(pool.dirty_count(), 0);
    }

    #[test]
    fn collect_dirty_clears_bits_and_respects_budget() {
        let mut pool = BufferPool::new(8);
        for i in 0..6 {
            pool.touch(p(0, i));
            pool.mark_dirty(p(0, i));
        }
        let first = pool.collect_dirty(4);
        assert_eq!(first.len(), 4);
        assert_eq!(pool.dirty_count(), 2);
        let rest = pool.collect_dirty(100);
        assert_eq!(rest.len(), 2);
        assert_eq!(pool.dirty_count(), 0);
        assert!(pool.collect_dirty(100).is_empty());
        assert_eq!(pool.stats().flushed, 6);
        // No page was collected twice.
        let mut all: Vec<_> = first.into_iter().chain(rest).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn evict_relation_frees_frames_for_reuse() {
        let mut pool = BufferPool::new(4);
        pool.touch(p(1, 0));
        pool.touch(p(1, 1));
        pool.touch(p(2, 0));
        pool.mark_dirty(p(1, 0));
        let (clean, dirty) = pool.evict_relation(RelationId(1));
        assert_eq!((clean, dirty), (1, 1));
        assert_eq!(pool.resident(), 1);
        assert!(!pool.is_resident(p(1, 0)));
        assert!(pool.is_resident(p(2, 0)));
        // Freed frames are reused without eviction.
        assert_eq!(pool.touch(p(3, 0)), Touch::Miss { evicted: None });
        assert_eq!(pool.touch(p(3, 1)), Touch::Miss { evicted: None });
        assert_eq!(pool.resident(), 3);
    }

    #[test]
    fn resident_of_counts_per_relation() {
        let mut pool = BufferPool::new(4);
        pool.touch(p(1, 0));
        pool.touch(p(1, 1));
        pool.touch(p(2, 0));
        assert_eq!(pool.resident_of(RelationId(1)), 2);
        assert_eq!(pool.resident_of(RelationId(2)), 1);
        assert_eq!(pool.resident_of(RelationId(3)), 0);
    }

    #[test]
    fn hit_ratio_computation() {
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.touch(p(0, 0));
        pool.touch(p(0, 0));
        pool.touch(p(0, 0));
        pool.touch(p(0, 1));
        assert!((pool.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        BufferPool::new(0);
    }

    #[test]
    fn with_capacity_bytes_rounds_down() {
        let pool = BufferPool::with_capacity_bytes(crate::ids::PAGE_SIZE * 3 + 100);
        assert_eq!(pool.capacity(), 3);
        // Tiny budgets still get one frame.
        assert_eq!(BufferPool::with_capacity_bytes(1).capacity(), 1);
    }
}
