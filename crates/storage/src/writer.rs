//! Background writer: periodic write-back of dirty pages.
//!
//! Tashkent replicas never `fsync` (durability lives in the middleware,
//! §4.1), but dirty pages still have to reach disk eventually and those
//! writes compete with reads for the single disk channel. The paper's
//! update-filtering result (§5.5) hinges on exactly this traffic: ~275-byte
//! writesets dirty whole 8 KB pages scattered across the database, and the
//! resulting write-back stream saturates the channel.
//!
//! The writer runs a round every `period`; each round collects up to
//! `max_pages_per_round` dirty pages from the buffer pool and issues them as
//! disk writes. Collecting clears dirty bits, so updates that re-dirty a hot
//! page between rounds are coalesced into a single write — matching the
//! paper's observed ~12 KB of writes per transaction rather than one write
//! per writeset application.

use tashkent_sim::SimTime;

use crate::buffer::BufferPool;
use crate::disk::{DiskModel, DiskRequest, ReqKind};

/// Tuning knobs for the background writer.
#[derive(Debug, Clone, Copy)]
pub struct WriterConfig {
    /// Time between write-back rounds.
    pub period: SimTime,
    /// Maximum pages flushed per round (bounds write bursts).
    pub max_pages_per_round: usize,
}

impl Default for WriterConfig {
    /// A paced trickle: up to 16 pages every 250 ms (≤ 64 pages/s
    /// sustained).
    ///
    /// This mirrors PostgreSQL's background writer plus a spread-out
    /// checkpoint: small bursts bound the read latency behind the shared
    /// FIFO channel, while coalescing stays strong because a page stays
    /// dirty (absorbing repeated updates) until the writer's round-robin
    /// sweep reaches it — with a steady dirty population the effective
    /// coalescing window is tens of seconds, matching checkpoint-scale
    /// behaviour.
    fn default() -> Self {
        WriterConfig {
            period: SimTime::from_millis(250),
            max_pages_per_round: 16,
        }
    }
}

/// Periodic dirty-page flusher for one replica.
#[derive(Debug, Clone)]
pub struct BackgroundWriter {
    config: WriterConfig,
    next_round: SimTime,
    pages_written: u64,
}

impl BackgroundWriter {
    /// Creates a writer; the first round fires one period after time zero.
    pub fn new(config: WriterConfig) -> Self {
        BackgroundWriter {
            next_round: config.period,
            config,
            pages_written: 0,
        }
    }

    /// Time of the next scheduled round.
    pub fn next_round(&self) -> SimTime {
        self.next_round
    }

    /// Total pages this writer has flushed.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Runs rounds that are due at `now`; returns the number of pages
    /// submitted to the disk.
    ///
    /// The caller (the replica's event loop) invokes this from a periodic
    /// tick; the writer tracks its own schedule so the tick granularity does
    /// not matter.
    pub fn run_due(&mut self, now: SimTime, pool: &mut BufferPool, disk: &mut DiskModel) -> usize {
        let mut flushed = 0;
        while self.next_round <= now {
            let mut batch = pool.collect_dirty(self.config.max_pages_per_round);
            // Elevator ordering: the OS sorts write-back by disk position,
            // so scattered dirty pages of one relation often ride the
            // sequential window instead of each paying a seek.
            batch.sort_unstable();
            for page in &batch {
                disk.submit(
                    now,
                    DiskRequest {
                        page: *page,
                        kind: ReqKind::Write,
                    },
                );
            }
            flushed += batch.len();
            self.pages_written += batch.len() as u64;
            self.next_round += self.config.period.as_micros();
        }
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalPageId, RelationId};

    fn dirty_n(pool: &mut BufferPool, n: u32) {
        for i in 0..n {
            let page = GlobalPageId::new(RelationId(0), i);
            pool.touch(page);
            pool.mark_dirty(page);
        }
    }

    #[test]
    fn no_flush_before_first_period() {
        let mut w = BackgroundWriter::new(WriterConfig::default());
        let period = WriterConfig::default().period;
        let mut pool = BufferPool::new(16);
        let mut disk = DiskModel::default();
        dirty_n(&mut pool, 4);
        let just_before = SimTime::from_micros(period.as_micros() - 1);
        assert_eq!(w.run_due(just_before, &mut pool, &mut disk), 0);
        assert_eq!(pool.dirty_count(), 4);
    }

    #[test]
    fn flushes_all_dirty_on_round() {
        let mut w = BackgroundWriter::new(WriterConfig::default());
        let period = WriterConfig::default().period;
        let mut pool = BufferPool::new(16);
        let mut disk = DiskModel::default();
        dirty_n(&mut pool, 4);
        assert_eq!(w.run_due(period, &mut pool, &mut disk), 4);
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(disk.stats().write_pages, 4);
        assert_eq!(w.pages_written(), 4);
    }

    #[test]
    fn coalesces_redirty_between_rounds() {
        let mut w = BackgroundWriter::new(WriterConfig::default());
        let period = WriterConfig::default().period;
        let mut pool = BufferPool::new(16);
        let mut disk = DiskModel::default();
        // Dirty the same page many times before the round: one write.
        for _ in 0..10 {
            let page = GlobalPageId::new(RelationId(0), 0);
            pool.touch(page);
            pool.mark_dirty(page);
        }
        assert_eq!(w.run_due(period, &mut pool, &mut disk), 1);
    }

    #[test]
    fn respects_per_round_budget() {
        let cfg = WriterConfig {
            period: SimTime::from_secs(1),
            max_pages_per_round: 2,
        };
        let mut w = BackgroundWriter::new(cfg);
        let mut pool = BufferPool::new(16);
        let mut disk = DiskModel::default();
        dirty_n(&mut pool, 5);
        assert_eq!(w.run_due(SimTime::from_secs(1), &mut pool, &mut disk), 2);
        assert_eq!(pool.dirty_count(), 3);
        // Next round picks up the remainder (budget again).
        assert_eq!(w.run_due(SimTime::from_secs(2), &mut pool, &mut disk), 2);
        assert_eq!(w.run_due(SimTime::from_secs(3), &mut pool, &mut disk), 1);
    }

    #[test]
    fn catches_up_multiple_missed_rounds() {
        let cfg = WriterConfig {
            period: SimTime::from_secs(1),
            max_pages_per_round: 1,
        };
        let mut w = BackgroundWriter::new(cfg);
        let mut pool = BufferPool::new(16);
        let mut disk = DiskModel::default();
        dirty_n(&mut pool, 3);
        // Three periods elapsed at once: three rounds run.
        assert_eq!(w.run_due(SimTime::from_secs(3), &mut pool, &mut disk), 3);
        assert_eq!(w.next_round(), SimTime::from_secs(4));
    }
}
