//! Simulated storage substrate for the Tashkent+ reproduction.
//!
//! The paper's replicas are PostgreSQL 8.0.3 instances on machines with 1 GB
//! of RAM and a single 7200 rpm disk. This crate models the parts of that
//! stack that Tashkent+'s techniques interact with:
//!
//! * a **catalog** of relations (tables and indices) with `relpages`-style
//!   size metadata — the information the load balancer queries (§4.2.2),
//! * a **clock-sweep buffer pool** over 8 KB pages with dirty-page tracking —
//!   the memory whose contention MALB avoids,
//! * a **disk-channel model** shared by reads and write-backs, with a
//!   positional head model so sequential scans are cheap and random access
//!   pays a seek — the resource whose saturation explains every result in
//!   the paper's evaluation,
//! * a **background writer** policy that flushes dirty pages, coalescing
//!   repeated updates to hot pages the way a real checkpointing engine does.

pub mod buffer;
pub mod catalog;
pub mod disk;
pub mod ids;
pub mod writer;

pub use buffer::{BufferPool, BufferStats, Touch};
pub use catalog::{Catalog, Relation, RelationKind};
pub use disk::{DiskModel, DiskParams, DiskRequest, DiskStats, ReqKind};
pub use ids::{GlobalPageId, PageId, RelationId, RowId, PAGE_SIZE};
pub use writer::{BackgroundWriter, WriterConfig};
