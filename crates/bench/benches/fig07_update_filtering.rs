//! Figure 7 + Table 5: effectiveness of update filtering (§5.5).
//!
//! MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix (50 % updates). The
//! paper reports Single 3 / LC 37 / LARD 50 / MALB-SC 76 / MALB-SC+UF 113
//! tps, with filtering cutting writes from 12 to 9 KB/txn and reads from 20
//! to 18 KB/txn (Table 5).

use tashkent_bench::{
    print_table, run_exp, run_standalone, save_csv, sweep_driver, tpcw_config, window, Row,
};
use tashkent_cluster::{Experiment, PolicySpec};
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let (warmup, measured) = window();
    let mut rows = Vec::new();
    let mut io_rows = Vec::new();

    let (config, workload, mix) = tpcw_config(
        PolicySpec::LeastConnections,
        512,
        TpcwScale::Mid,
        "ordering",
    );
    let single = run_standalone(config, workload, mix);
    rows.push(Row {
        label: "Single".into(),
        paper: 3.0,
        measured: single.tps,
    });

    let policies = [
        (PolicySpec::LeastConnections, 37.0, (12.0, 72.0)),
        (PolicySpec::Lard, 50.0, (12.0, 57.0)),
        (PolicySpec::malb_sc(), 76.0, (12.0, 20.0)),
        (PolicySpec::malb_sc_uf(), 113.0, (9.0, 18.0)),
    ];
    let mut uf_tps = 0.0;
    for (policy, paper_tps, (paper_w, paper_r)) in policies {
        let (config, workload, mix) = tpcw_config(policy, 512, TpcwScale::Mid, "ordering");
        let r = run_exp(
            Experiment::new(config, workload, mix)
                .with_window(warmup, measured)
                .with_driver(sweep_driver()),
        );
        if matches!(
            policy,
            PolicySpec::Malb {
                update_filtering: true,
                ..
            }
        ) {
            uf_tps = r.tps;
            println!(
                "  update filtering installed: {} (lb: moves={} filters={})",
                r.lb.filters_installed, r.lb.moves, r.lb.filters_installed
            );
        }
        rows.push(Row {
            label: policy.label(),
            paper: paper_tps,
            measured: r.tps,
        });
        io_rows.push(Row {
            label: format!("{} write KB/txn", policy.label()),
            paper: paper_w,
            measured: r.write_kb_per_txn,
        });
        io_rows.push(Row {
            label: format!("{} read KB/txn", policy.label()),
            paper: paper_r,
            measured: r.read_kb_per_txn,
        });
    }

    let csv = print_table(
        "Figure 7: update filtering (MidDB, 512MB, 16 replicas, ordering)",
        "tps",
        &rows,
    );
    save_csv("fig07_update_filtering", &csv);
    println!(
        "  MALB-SC+UF speedup over Single: {:.1}x (paper: 37x super-linear)",
        uf_tps / rows[0].measured.max(1e-9)
    );

    let csv = print_table(
        "Table 5: TPC-W disk I/O per transaction with filtering",
        "KB",
        &io_rows,
    );
    save_csv("table5_uf_diskio", &csv);
}
