//! Detection: suspicion latency and false-positive cost vs the heartbeat
//! period (no fault oracle).
//!
//! Runs the `detection` scenario at paper scale across a heartbeat-period
//! sweep. Each run injects a transient control-link partition (healed
//! before the dead threshold — the false-suspicion case) and a real crash
//! (walked through *Suspected* to *Dead* on missed heartbeats, then
//! recovered via checkpoint-lag redo replay). For each period the figure
//! reports the suspect and dead detection latencies for the real crash,
//! the spurious-suspicion count (replicas suspected that never crashed),
//! the redo window replayed at recovery, and committed throughput — the
//! trade-off the period knob buys: shorter periods detect faster but pay
//! more heartbeat traffic and suspect innocent replicas sooner.

use tashkent_bench::{paper_knobs, save_csv, Row};
use tashkent_cluster::{Detection, FaultKind, PolicySpec, Scenario, ScenarioKnobs};

fn main() {
    let periods_us: [u64; 4] = [200_000, 500_000, 1_000_000, 2_000_000];
    let base: ScenarioKnobs = paper_knobs(PolicySpec::malb_sc(), 512, "tpcw", "ordering");
    let sched = Detection::schedule(&base);
    let cv = Detection::crash_victim();
    let pv = Detection::partition_victim(base.replicas);

    println!("== Detection: suspicion latency vs heartbeat period ==");
    println!(
        "cluster: {} replicas; link to replica {pv} partitioned at t={}s (heals at {} ms), \
         replica {cv} crashes at t={}s, recovers at t={}s",
        base.replicas,
        sched.partition_at_secs,
        sched.heal_at_ms,
        sched.crash_at_secs,
        sched.recover_at_secs
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut csv = String::from(
        "heartbeat_ms,suspect_latency_ms,dead_latency_ms,spurious_suspects,redo_kb,tps\n",
    );
    println!("\n  period    suspect      dead  spurious     redo      tps");
    for period in periods_us {
        let knobs = base.clone().with_heartbeat(Some(period));
        let r = Detection::default()
            .run(&knobs)
            .expect("detection scenario runs to its End event");
        let latency_ms = |kind: FaultKind| {
            r.faults
                .iter()
                .find(|f| f.kind == kind)
                .map(|f| f.detection_latency_us() as f64 / 1_000.0)
        };
        // Latency to suspect / declare dead the genuinely crashed replica,
        // measured from the crash instant itself.
        let suspect = latency_ms(FaultKind::ReplicaSuspected(cv)).unwrap_or(f64::NAN);
        let dead = latency_ms(FaultKind::ReplicaDead(cv)).unwrap_or(f64::NAN);
        // Suspicions of replicas that never crashed (the partition victim,
        // plus anything load alone fooled the detector about).
        let spurious = r
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::ReplicaSuspected(s) if s != cv))
            .count();
        let redo_kb = r.redo_bytes as f64 / 1024.0;
        println!(
            "  {:>4} ms {:>7.0} ms {:>6.0} ms  {:>8}  {:>5.0} KB  {:>7.1}",
            period / 1_000,
            suspect,
            dead,
            spurious,
            redo_kb,
            r.tps,
        );
        csv.push_str(&format!(
            "{},{suspect},{dead},{spurious},{redo_kb},{}\n",
            period / 1_000,
            r.tps
        ));
        rows.push(Row {
            label: format!("suspect latency @ {} ms heartbeat", period / 1_000),
            paper: 0.0,
            measured: suspect,
        });
    }
    save_csv("fig_detection", &csv);

    println!("\n  shape checks:");
    let first = rows.first().expect("sweep ran");
    let last = rows.last().expect("sweep ran");
    println!(
        "    latency grows with the period: {}",
        last.measured > first.measured
    );
    println!(
        "    every latency is bounded by dead_misses periods: {}",
        rows.iter()
            .zip(periods_us)
            .all(|(row, p)| row.measured <= (5 * p / 1_000) as f64 + 1.0)
    );
}
