//! Figure 4 + Tables 3 and 4: RUBiS comparison of load-balancing methods.
//!
//! RUBiS 2.2 GB, RAM 512 MB, 16 replicas, bidding mix. The paper reports
//! Single 3 / LeastConnections 31 / LARD 34 / MALB-SC 43 tps (Figure 4),
//! per-transaction disk I/O (Table 3), and the MALB-SC groupings with
//! AboutMe dominating the allocation (Table 4).
//!
//! Runs through the `rubis-auction` scenario from the shared harness.

use tashkent_bench::{paper_knobs, print_table, save_csv, standalone_knobs, Row};
use tashkent_cluster::{PolicySpec, RubisAuctionMix, Scenario};

fn main() {
    let scenario = RubisAuctionMix { mix: "bidding" };
    let mut rows = Vec::new();
    let mut io_rows = Vec::new();

    let single = scenario
        .run(&standalone_knobs(
            PolicySpec::LeastConnections,
            512,
            "rubis",
            "bidding",
        ))
        .expect("scenario runs to its End event");
    rows.push(Row {
        label: "Single".into(),
        paper: 3.0,
        measured: single.tps,
    });

    let policies = [
        (PolicySpec::LeastConnections, 31.0, (11.0, 162.0)),
        (PolicySpec::Lard, 34.0, (11.0, 149.0)),
        (PolicySpec::malb_sc(), 43.0, (11.0, 111.0)),
    ];
    let mut malb_groups = Vec::new();
    for (policy, paper_tps, (paper_w, paper_r)) in policies {
        let r = scenario
            .run(&paper_knobs(policy, 512, "rubis", "bidding"))
            .expect("scenario runs to its End event");
        rows.push(Row {
            label: policy.label(),
            paper: paper_tps,
            measured: r.tps,
        });
        io_rows.push(Row {
            label: format!("{} write KB/txn", policy.label()),
            paper: paper_w,
            measured: r.write_kb_per_txn,
        });
        io_rows.push(Row {
            label: format!("{} read KB/txn", policy.label()),
            paper: paper_r,
            measured: r.read_kb_per_txn,
        });
        if matches!(policy, PolicySpec::Malb { .. }) {
            malb_groups = r.assignments;
        }
    }

    let csv = print_table(
        "Figure 4: RUBiS methods (2.2GB DB, 512MB, 16 replicas, bidding)",
        "tps",
        &rows,
    );
    save_csv("fig04_rubis_methods", &csv);

    let csv = print_table(
        "Table 3: RUBiS average disk I/O per transaction",
        "KB",
        &io_rows,
    );
    save_csv("table3_rubis_diskio", &csv);

    println!("\n== Table 4: RUBiS MALB-SC groupings ==");
    println!("paper: [AboutMe]x9 [PutBid,StoreComment,ViewBidHistory,ViewUserInfo]x4");
    println!("       [Auth,BrowseCategories,BrowseRegions,BuyNow,PutComment,RegisterUser,SearchItemsByRegion,StoreBuyNow]x1");
    println!("       [RegisterItem,SearchItemsByCategory,StoreBid,ViewItem]x2");
    let mut csv = String::from("types,replicas\n");
    let mut aboutme_replicas = 0;
    let mut max_replicas = 0;
    for g in &malb_groups {
        println!("ours:  {:?} x{}", g.types, g.replicas);
        csv.push_str(&format!("{};{}\n", g.types.join("+"), g.replicas));
        if g.types.iter().any(|t| t == "AboutMe") {
            aboutme_replicas = g.replicas;
        }
        max_replicas = max_replicas.max(g.replicas);
    }
    println!(
        "  AboutMe group holds {aboutme_replicas} replicas (cluster max per group: {max_replicas}; paper: AboutMe gets the most, 9)"
    );
    save_csv("table4_rubis_groupings", &csv);
}
