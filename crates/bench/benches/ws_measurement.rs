//! §5.3 experimental working-set measurement.
//!
//! The paper measures the true working set of a transaction type by
//! dedicating it to a single machine and shrinking memory until disk I/O
//! spikes, then compares against the MALB-SCAP (lower) and MALB-SC (upper)
//! estimates. Reported examples: BestSeller estimated 608–610 MB with a
//! measured 600–650 MB; OrderDisplay estimated 1 MB (SCAP) vs 1600 MB (SC)
//! with a true size of 400–450 MB — the lower bound can be catastrophically
//! optimistic.

use tashkent_bench::{run_exp, save_csv, window};
use tashkent_cluster::{ClusterConfig, Experiment, PolicySpec};
use tashkent_core::{EstimationMode, WorkingSetEstimator};
use tashkent_storage::PAGE_SIZE;
use tashkent_workloads::tpcw::{self, TpcwScale};
use tashkent_workloads::{Mix, Workload};

/// Dedicates one transaction type to a standalone replica at the given RAM
/// and reports the read I/O per transaction.
fn dedicated_read_kb(
    workload: &Workload,
    type_name: &str,
    ram_mb: u64,
    warmup: u64,
    measured: u64,
) -> f64 {
    let mut weights = vec![0.0; workload.types.len()];
    let t = workload.type_by_name(type_name).unwrap();
    weights[t.id.0 as usize] = 1.0;
    let mix = Mix {
        name: format!("only-{type_name}"),
        weights,
    };
    let config = ClusterConfig::paper_default()
        .with_ram_mb(ram_mb)
        .with_policy(PolicySpec::LeastConnections)
        .standalone(4);
    let r = run_exp(Experiment::new(config, workload.clone(), mix).with_window(warmup, measured));
    r.read_kb_per_txn
}

fn main() {
    let (warmup, measured) = window();
    let measured = measured.min(120);
    let workload = tpcw::workload(TpcwScale::Mid);
    let est = WorkingSetEstimator::new(&workload.catalog);

    println!("== §5.3 working-set measurement (MidDB) ==");
    println!(
        "{:<12} {:>12} {:>12} {:>28}",
        "type", "SCAP est MB", "SC est MB", "read KB/txn at 256/512/1024MB"
    );
    let mut csv = String::from("type,scap_mb,sc_mb,read256,read512,read1024\n");
    for name in ["BestSeller", "OrderDispl", "ExecSearch", "BuyConfirm"] {
        let t = workload.type_by_name(name).unwrap();
        let ws = est.estimate(t.id, &workload.explain(t.id));
        let scap_mb =
            ws.pages_for(EstimationMode::SizeContentAccessPattern) * PAGE_SIZE / (1 << 20);
        let sc_mb = ws.pages_for(EstimationMode::SizeContent) * PAGE_SIZE / (1 << 20);
        let reads: Vec<f64> = [256u64, 512, 1024]
            .iter()
            .map(|ram| dedicated_read_kb(&workload, name, *ram, warmup, measured))
            .collect();
        println!(
            "{name:<12} {scap_mb:>12} {sc_mb:>12} {:>8.0} {:>8.0} {:>8.0}",
            reads[0], reads[1], reads[2]
        );
        csv.push_str(&format!(
            "{name},{scap_mb},{sc_mb},{:.1},{:.1},{:.1}\n",
            reads[0], reads[1], reads[2]
        ));
    }
    println!(
        "\npaper: BestSeller SC/SCAP estimates 608/610 MB ≈ measured 600-650 MB;\n\
         OrderDisplay SCAP 1 MB vs SC 1600 MB vs true 400-450 MB.\n\
         Shape check: a type's read I/O spikes once memory shrinks below its\n\
         true working set, and OrderDisplay's SCAP estimate is uselessly low."
    );
    save_csv("ws_measurement", &csv);
}
