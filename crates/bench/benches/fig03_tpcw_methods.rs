//! Figure 3 + Tables 1 and 2: TPC-W comparison of load-balancing methods.
//!
//! MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix. The paper reports
//! Single 3 / LeastConnections 37 / LARD 50 / MALB-SC 76 tps (Figure 3),
//! the per-transaction disk I/O of each method (Table 1), and MALB-SC's
//! transaction groupings with replica counts (Table 2).
//!
//! Runs through the `tpcw-steady-state` scenario from the shared harness.

use tashkent_bench::{paper_knobs, print_table, save_csv, standalone_knobs, Row};
use tashkent_cluster::{PolicySpec, Scenario, TpcwSteadyState};
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let scenario = TpcwSteadyState {
        scale: TpcwScale::Mid,
        mix: "ordering",
    };
    let mut rows = Vec::new();
    let mut io_rows = Vec::new();

    // Standalone single database.
    let single = scenario
        .run(&standalone_knobs(
            PolicySpec::LeastConnections,
            512,
            "tpcw",
            "ordering",
        ))
        .expect("scenario runs to its End event");
    rows.push(Row {
        label: "Single".into(),
        paper: 3.0,
        measured: single.tps,
    });

    let policies = [
        (PolicySpec::LeastConnections, 37.0, (12.0, 72.0)),
        (PolicySpec::Lard, 50.0, (12.0, 57.0)),
        (PolicySpec::malb_sc(), 76.0, (12.0, 20.0)),
    ];
    let mut malb_groups = Vec::new();
    for (policy, paper_tps, (paper_w, paper_r)) in policies {
        let r = scenario
            .run(&paper_knobs(policy, 512, "tpcw", "ordering"))
            .expect("scenario runs to its End event");
        rows.push(Row {
            label: policy.label(),
            paper: paper_tps,
            measured: r.tps,
        });
        io_rows.push(Row {
            label: format!("{} write KB/txn", policy.label()),
            paper: paper_w,
            measured: r.write_kb_per_txn,
        });
        io_rows.push(Row {
            label: format!("{} read KB/txn", policy.label()),
            paper: paper_r,
            measured: r.read_kb_per_txn,
        });
        if matches!(policy, PolicySpec::Malb { .. }) {
            malb_groups = r.assignments;
        }
    }

    let csv = print_table(
        "Figure 3: TPC-W methods (MidDB 1.8GB, 512MB, 16 replicas, ordering)",
        "tps",
        &rows,
    );
    save_csv("fig03_tpcw_methods", &csv);

    let speedup = rows[3].measured / rows[0].measured.max(1e-9);
    println!("  MALB-SC speedup over Single: {speedup:.1}x (paper: 25x super-linear)");

    let csv = print_table(
        "Table 1: TPC-W average disk I/O per transaction",
        "KB",
        &io_rows,
    );
    save_csv("table1_tpcw_diskio", &csv);

    println!("\n== Table 2: TPC-W MALB-SC groupings (paper groups in brackets) ==");
    println!("paper: [BestSeller]x2 [AdminRespo]x4 [BuyConfirm]x7 [BuyRequest,ShopinCart]x1");
    println!("       [ExecSearch,OrderDispl,OrderInqur,ProducDet]x1 [HomeAction,NewProduct,SearchRequ,AdmiRqust]x1");
    let mut csv = String::from("types,replicas\n");
    for g in &malb_groups {
        println!("ours:  {:?} x{}", g.types, g.replicas);
        csv.push_str(&format!("{};{}\n", g.types.join("+"), g.replicas));
    }
    save_csv("table2_tpcw_groupings", &csv);
}
