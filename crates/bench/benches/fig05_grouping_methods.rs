//! Figure 5: throughput of the grouping methods (§5.3).
//!
//! MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix. The paper reports
//! LeastConnections 37 / LARD 50 / MALB-SCAP 57 / MALB-S 73 / MALB-SC 76:
//! all MALB variants beat the baselines, the lower-bound SCAP estimate
//! over-packs and trails the conservative estimators.

use tashkent_bench::{print_table, run_exp, save_csv, sweep_driver, tpcw_config, window, Row};
use tashkent_cluster::{Experiment, PolicySpec};
use tashkent_core::EstimationMode;
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let (warmup, measured) = window();
    let policies = [
        (PolicySpec::LeastConnections, 37.0),
        (PolicySpec::Lard, 50.0),
        (
            PolicySpec::Malb {
                mode: EstimationMode::SizeContentAccessPattern,
                update_filtering: false,
            },
            57.0,
        ),
        (
            PolicySpec::Malb {
                mode: EstimationMode::Size,
                update_filtering: false,
            },
            73.0,
        ),
        (PolicySpec::malb_sc(), 76.0),
    ];
    let mut rows = Vec::new();
    for (policy, paper_tps) in policies {
        let (config, workload, mix) = tpcw_config(policy, 512, TpcwScale::Mid, "ordering");
        let r = run_exp(
            Experiment::new(config, workload, mix)
                .with_window(warmup, measured)
                .with_driver(sweep_driver()),
        );
        println!(
            "  {:<12} groups={} read/txn={:.0}KB",
            policy.label(),
            r.assignments.len().max(1),
            r.read_kb_per_txn
        );
        rows.push(Row {
            label: policy.label(),
            paper: paper_tps,
            measured: r.tps,
        });
    }
    let csv = print_table(
        "Figure 5: grouping methods (MidDB, 512MB, 16 replicas, ordering)",
        "tps",
        &rows,
    );
    save_csv("fig05_grouping_methods", &csv);
}
