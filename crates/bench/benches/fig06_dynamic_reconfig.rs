//! Figure 6: dynamic reconfiguration under a workload-mix switch (§5.4).
//!
//! The TPC-W mix switches shopping → browsing → shopping (2000 s phases in
//! the paper; scaled down here). MALB re-allocates replicas after each
//! switch and throughput converges to each mix's baseline (paper: 76 tps
//! shopping, 45 browsing). The bottom line is the *static* configuration
//! baseline: browsing served by the frozen shopping allocation (paper:
//! 19 tps, worse than LeastConnections' 37).
//!
//! Runs through the `dynamic-reconfig` and `tpcw-steady-state` scenarios
//! from the shared harness.

use tashkent_bench::{paper_knobs, run_exp, save_csv, window, ScenarioKnobs};
use tashkent_cluster::{DynamicReconfig, PolicySpec, Scenario, TpcwSteadyState};
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let (warmup, _) = window();
    let phase = 150u64; // Scaled-down stand-in for the paper's 2000 s phases.
    let knobs = ScenarioKnobs {
        warmup_secs: warmup,
        measured_secs: 3 * phase,
        ..paper_knobs(PolicySpec::malb_sc(), 512, "tpcw", "shopping")
    };

    // Dynamic MALB through the two switches.
    let dynamic = DynamicReconfig {
        scale: TpcwScale::Mid,
        freeze: false,
    }
    .run(&knobs)
    .expect("scenario runs to its End event");

    // Static baseline: converge on shopping, freeze, then serve browsing.
    // Only the browsing plateau is read, so drop the return-to-shopping
    // phase instead of simulating 150 s that would be discarded.
    let mut frozen_exp = DynamicReconfig {
        scale: TpcwScale::Mid,
        freeze: true,
    }
    .experiment(&knobs);
    frozen_exp.phases.truncate(2);
    let frozen = run_exp(frozen_exp);

    // LeastConnections on browsing (the paper's reference: 37 tps).
    let lc = TpcwSteadyState {
        scale: TpcwScale::Mid,
        mix: "browsing",
    }
    .run(&ScenarioKnobs {
        measured_secs: phase,
        ..paper_knobs(PolicySpec::LeastConnections, 512, "tpcw", "browsing")
    })
    .expect("scenario runs to its End event");

    println!("== Figure 6: dynamic reconfiguration (shopping -> browsing -> shopping) ==");
    println!("paper: shopping plateau 76 tps, browsing plateau 45 tps,");
    println!("       static-config browsing 19 tps < LeastConnections browsing 37 tps");
    println!("\n  time series (30 s buckets, tps):");
    let ts = dynamic.timeseries(30.0);
    let mut csv = String::from("t_s,tps\n");
    for (t, tps) in &ts {
        let bar = "#".repeat((tps / 4.0).round() as usize);
        println!("  {t:>6.0}s {tps:>7.1} {bar}");
        csv.push_str(&format!("{t},{tps}\n"));
    }
    save_csv("fig06_dynamic_timeseries", &csv);

    // Plateau summary: mean tps in the middle of each phase.
    let w = warmup as f64;
    let p = phase as f64;
    let shop1 = dynamic.plateau(30.0, w + p * 0.3, w + p);
    let browse = dynamic.plateau(30.0, w + p * 1.3, w + 2.0 * p);
    let shop2 = dynamic.plateau(30.0, w + p * 2.3, w + 3.0 * p);
    let frozen_browse = frozen.plateau(30.0, w + p * 1.3, w + 2.0 * p);

    println!("\n  plateaus (ours):");
    println!(
        "    shopping #1 {shop1:.1} tps, browsing {browse:.1} tps, shopping #2 {shop2:.1} tps"
    );
    println!(
        "    static-config browsing {frozen_browse:.1} tps, LeastConnections browsing {:.1} tps",
        lc.tps
    );
    println!(
        "  shape checks: dynamic adapts (browsing within phases), static < LC: {}",
        frozen_browse < lc.tps
    );
    let mut csv = String::from("metric,value\n");
    for (k, v) in [
        ("shopping1", shop1),
        ("browsing", browse),
        ("shopping2", shop2),
        ("static_browsing", frozen_browse),
        ("lc_browsing", lc.tps),
    ] {
        csv.push_str(&format!("{k},{v}\n"));
    }
    save_csv("fig06_plateaus", &csv);
}
