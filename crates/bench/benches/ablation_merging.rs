//! §5.3 merging ablation: MALB with group merging disabled.
//!
//! The paper: disabling the merging of under-utilized single-replica groups
//! drops MALB-S from 73 to 66 tps and MALB-SC from 76 to 70 tps — merging
//! compensates for conservative estimates creating many small groups.

use tashkent_bench::{print_table, run_exp, save_csv, sweep_driver, tpcw_config, window, Row};
use tashkent_cluster::{Experiment, PolicySpec};
use tashkent_core::EstimationMode;
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let (warmup, measured) = window();
    let mut rows = Vec::new();
    for (mode, label, paper_on, paper_off) in [
        (EstimationMode::Size, "MALB-S", 73.0, 66.0),
        (EstimationMode::SizeContent, "MALB-SC", 76.0, 70.0),
    ] {
        let policy = PolicySpec::Malb {
            mode,
            update_filtering: false,
        };
        for (merging, paper) in [(true, paper_on), (false, paper_off)] {
            let (mut config, workload, mix) = tpcw_config(policy, 512, TpcwScale::Mid, "ordering");
            if !merging {
                // A zero threshold disqualifies every merge candidate.
                config.merge_threshold_override = Some(0.0);
            }
            let r = run_exp(
                Experiment::new(config, workload, mix)
                    .with_window(warmup, measured)
                    .with_driver(sweep_driver()),
            );
            rows.push(Row {
                label: format!(
                    "{label} {}",
                    if merging {
                        "with merging"
                    } else {
                        "without merging"
                    }
                ),
                paper,
                measured: r.tps,
            });
        }
    }
    let csv = print_table(
        "§5.3 ablation: merging of under-utilized groups",
        "tps",
        &rows,
    );
    save_csv("ablation_merging", &csv);
}
