//! Partial replication: propagation traffic and throughput vs the
//! `min_copies` durability constraint (Sutra & Shapiro 2008 direction).
//!
//! Sweeps `min_copies` from 1 to the cluster size on the update-heavy
//! TPC-W ordering mix through the `partial-replication` scenario: each
//! relation group lives on `min_copies` holder replicas, dispatch routes
//! transactions only to holders, and the certifier ships writeset pages
//! only to holders (non-holders get version ticks). Mid-run a replica
//! crashes and its groups are re-replicated onto survivors via
//! certifier-log backfill, so every point also exercises the durability
//! invariant. `min_copies = n` is the full-replication baseline — its
//! shipped bytes equal today's propagation volume and its savings are zero.

use tashkent_bench::{paper_knobs, save_csv, window, ScenarioKnobs};
use tashkent_cluster::{FaultKind, PartialReplication, PolicySpec, Scenario};

fn main() {
    let base: ScenarioKnobs = paper_knobs(PolicySpec::LeastConnections, 512, "tpcw", "ordering");
    let n = base.replicas;
    let scenario = PartialReplication::default();
    let (warmup, measured) = window();
    println!(
        "== Partial replication: propagation traffic vs min_copies ({n} replicas, {warmup}+{measured}s) =="
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "min_copies", "tps", "shipped MB", "saved MB", "rerepl", "aborts"
    );

    let mut csv = String::from("min_copies,tps,propagated_mb,filtered_mb,rereplications\n");
    let mut shipped = Vec::new();
    let mut sweep: Vec<usize> = [1usize, 2, 4, 8, n]
        .into_iter()
        .filter(|m| *m <= n)
        .collect();
    sweep.dedup(); // `n` may itself be a power of two.
    for &min_copies in &sweep {
        let knobs = base.clone().with_min_copies(Some(min_copies));
        let r = scenario
            .run(&knobs)
            .expect("partial-replication scenario runs to its End event");
        let rereplications = r
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::Rereplicate { .. }))
            .count();
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        println!(
            "{:>10} {:>10.1} {:>12.2} {:>12.2} {:>10} {:>8}",
            min_copies,
            r.tps,
            mb(r.propagated_ws_bytes),
            mb(r.filtered_ws_bytes),
            rereplications,
            r.aborts
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            min_copies,
            r.tps,
            mb(r.propagated_ws_bytes),
            mb(r.filtered_ws_bytes),
            rereplications
        ));
        shipped.push((min_copies, r.propagated_ws_bytes, r.filtered_ws_bytes));
    }
    save_csv("fig_partial", &csv);

    // Shape checks: traffic grows with copies; full replication saves
    // nothing.
    let monotone = shipped.windows(2).all(|w| w[0].1 <= w[1].1);
    println!("\n  shape check: shipped bytes nondecreasing in min_copies: {monotone}");
    if let Some((_, _, saved)) = shipped.iter().find(|(m, _, _)| *m == n) {
        println!(
            "  shape check: full replication withholds nothing: {}",
            *saved == 0
        );
    }
}
