//! Live rebalancing: migration cost vs the backfill bandwidth cap.
//!
//! Sweeps `backfill_bytes_per_sec` through the `rebalance` scenario —
//! TPC-W partially replicated with the skew-driven rebalancer ticking and
//! the hot set shifting mid-run — and reports how much migration traffic
//! the run ships and how long the copies stay in flight. The `instant`
//! row (cap 0) is the pre-fix behaviour: the whole copy is dumped on the
//! target in one unpaced burst and the holder is dispatch-eligible the
//! moment it is added, with no in-flight window. Capped rows stage the
//! copy in chunks that compete with foreground propagation, so copy time
//! scales inversely with the cap.

use tashkent_bench::{paper_knobs, save_csv, window, ScenarioKnobs};
use tashkent_cluster::{FaultKind, PolicySpec, Rebalance, Scenario};

fn main() {
    let base: ScenarioKnobs = paper_knobs(PolicySpec::LeastConnections, 512, "tpcw", "ordering");
    let n = base.replicas;
    let scenario = Rebalance::default();
    let (warmup, measured) = window();
    println!(
        "== Live rebalancing: migration cost vs backfill cap ({n} replicas, {warmup}+{measured}s) =="
    );
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "cap", "tps", "migr KB", "copy ms", "migrations", "aborts"
    );

    let sweep: &[(&str, u64)] = &[
        ("instant", 0),
        ("256K/s", 256 * 1024),
        ("1M/s", 1024 * 1024),
        ("4M/s", 4 * 1024 * 1024),
    ];
    let mut csv = String::from("cap_bytes_per_sec,tps,migration_kb,copy_ms,migrations\n");
    let mut rows = Vec::new();
    for &(label, cap) in sweep {
        let knobs = base.clone().with_backfill_cap(Some(cap));
        let r = scenario
            .run(&knobs)
            .expect("rebalance scenario runs to its End event");
        let migrations = r
            .faults
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    FaultKind::Migrate { .. } | FaultKind::Rereplicate { .. }
                )
            })
            .count();
        let kb = r.migration_bytes as f64 / 1024.0;
        let ms = r.migration_us as f64 / 1000.0;
        println!(
            "{:>10} {:>10.1} {:>12.1} {:>10.1} {:>10} {:>8}",
            label, r.tps, kb, ms, migrations, r.aborts
        );
        csv.push_str(&format!("{cap},{},{kb},{ms},{migrations}\n", r.tps));
        rows.push((cap, r.migration_bytes, r.migration_us));
    }
    save_csv("fig_rebalance", &csv);

    // Shape checks: capped copies take real time, and more bandwidth
    // means faster copies — in total and per shipped byte.
    let capped_pay = rows[1..].iter().all(|(_, _, us)| *us > 0);
    println!("\n  shape check: every capped run pays copy time: {capped_pay}");
    let faster = rows[1..].windows(2).all(|w| w[0].2 >= w[1].2);
    println!("  shape check: copy time falls as the cap grows: {faster}");
    let per_byte: Vec<f64> = rows[1..]
        .iter()
        .map(|(_, bytes, us)| *us as f64 / (*bytes).max(1) as f64)
        .collect();
    let cheaper = per_byte.windows(2).all(|w| w[0] >= w[1]);
    println!("  shape check: copy time per byte falls as the cap grows: {cheaper}");
}
