//! Figure 10: the full TPC-W configuration grid (§5.6).
//!
//! 3 database sizes × 3 mixes × 3 memory sizes × {LeastConnections,
//! MALB-SC, MALB-SC+UF} = 81 experiments. The paper's 9 charts show: MALB
//! and filtering pay off when per-group working sets fit memory but the
//! combined sum does not; with memory too small (LargeDB at 256 MB) or too
//! large (SmallDB at 1 GB) the methods converge — and MALB never loses to
//! LeastConnections.
//!
//! Set `TASHKENT_BENCH_WINDOW=quick` to shorten the sweep.

use tashkent_bench::{run_exp, save_csv, sweep_driver, tpcw_config, window};
use tashkent_cluster::{Experiment, PolicySpec};
use tashkent_workloads::tpcw::TpcwScale;

/// Paper values: [db][mix][ram][policy] with policies LC / MALB-SC / +UF.
const PAPER: [[[[f64; 3]; 3]; 3]; 3] = [
    // LargeDB: ordering, shopping, browsing × (256, 512, 1024).
    [
        [[17., 19., 21.], [24., 42., 56.], [39., 110., 147.]],
        [[10., 15., 15.], [22., 35., 36.], [51., 60., 61.]],
        [[5., 7., 7.], [16., 19., 19.], [27., 27., 27.]],
    ],
    // MidDB.
    [
        [[20., 29., 30.], [37., 76., 113.], [114., 169., 194.]],
        [[16., 26., 26.], [54., 76., 79.], [93., 93., 93.]],
        [[11., 19., 19.], [37., 45., 46.], [51., 51., 51.]],
    ],
    // SmallDB.
    [
        [[101., 130., 156.], [212., 211., 217.], [247., 257., 257.]],
        [[267., 278., 311.], [339., 340., 342.], [341., 343., 343.]],
        [[295., 300., 300.], [299., 299., 299.], [295., 305., 305.]],
    ],
];

fn main() {
    let (warmup, measured) = window();
    let scales = [TpcwScale::Large, TpcwScale::Mid, TpcwScale::Small];
    let mixes = ["ordering", "shopping", "browsing"];
    let rams = [256u64, 512, 1024];
    let policies = [
        PolicySpec::LeastConnections,
        PolicySpec::malb_sc(),
        PolicySpec::malb_sc_uf(),
    ];

    let mut csv = String::from("db,mix,ram_mb,policy,paper_tps,measured_tps\n");
    let mut wins = 0usize;
    let mut cells = 0usize;
    for (di, scale) in scales.iter().enumerate() {
        for (mi, mix_name) in mixes.iter().enumerate() {
            println!("\n== Figure 10: {}-{} ==", scale.label(), mix_name);
            println!(
                "{:<6} {:>22} {:>22} {:>22}",
                "RAM", "LeastConnections", "MALB-SC", "MALB-SC+UF"
            );
            for (ri, ram) in rams.iter().enumerate() {
                let mut line = format!("{:<6}", format!("{ram}MB"));
                let mut cell = [0.0f64; 3];
                for (pi, policy) in policies.iter().enumerate() {
                    let (config, workload, mix) = tpcw_config(*policy, *ram, *scale, mix_name);
                    // The grid is 81 runs; trim each a little to keep the
                    // sweep tractable.
                    let r = run_exp(
                        Experiment::new(config, workload, mix)
                            .with_window(warmup.min(60), measured.min(120))
                            .with_driver(sweep_driver()),
                    );
                    cell[pi] = r.tps;
                    let paper = PAPER[di][mi][ri][pi];
                    line.push_str(&format!(" {:>10.1} (p {:>5.0})", r.tps, paper));
                    csv.push_str(&format!(
                        "{},{},{},{},{},{:.2}\n",
                        scale.label(),
                        mix_name,
                        ram,
                        policy.label(),
                        paper,
                        r.tps
                    ));
                }
                // Shape check: MALB never loses to LC (paper's summary).
                cells += 1;
                if cell[1] >= 0.9 * cell[0] {
                    wins += 1;
                }
                println!("{line}");
            }
        }
    }
    println!(
        "\nMALB-SC ≥ ~LeastConnections in {wins}/{cells} cells (paper: all; \
         \"MALB-SC still generates configurations whose performance is at \
         least as high as LeastConnections\")"
    );
    save_csv("fig10_grid", &csv);
}
