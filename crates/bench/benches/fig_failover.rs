//! Failover: throughput under replica crash, log-replay recovery, and a
//! certifier leader kill (§3 recovery, §4.2.1 fault tolerance).
//!
//! Runs the `failover` scenario from the shared harness at paper scale:
//! a quarter into the measured window a slice of the cluster crashes (cold
//! caches, in-flight work dropped, clients retrying on the survivors); one
//! downtime-eighth later the victims replay the certifier log and rejoin
//! dispatch; past the midpoint the certifier leader is killed and a backup
//! takes over. The output is the Figure-6-style throughput time series with
//! the fault instants marked, plus plateau means before the crash, during
//! the outage, and after recovery — the recovery plateau should return to
//! the pre-crash level.

use tashkent_bench::{paper_knobs, save_csv, Row};
use tashkent_cluster::{Failover, FaultKind, PolicySpec, Scenario, ScenarioKnobs};
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let knobs: ScenarioKnobs = paper_knobs(PolicySpec::malb_sc(), 512, "tpcw", "ordering");
    let sched = Failover::schedule(&knobs);
    let scenario = Failover {
        scale: TpcwScale::Small,
        // A quarter of the cluster fails at once.
        crashes: (knobs.replicas / 4).max(1),
        kill_certifier_leader: true,
    };
    let result = scenario
        .run(&knobs)
        .expect("failover scenario runs to its End event");

    println!("== Failover: crash, log-replay recovery, certifier leader kill ==");
    println!(
        "cluster: {} replicas, {} crash at t={}s, recover at t={}s, leader killed at t={}s",
        knobs.replicas,
        scenario.crashes,
        sched.crash_at_secs,
        sched.recover_at_secs,
        sched.leader_kill_at_secs
    );

    println!("\n  fault log (as applied):");
    for f in &result.faults {
        let label = match f.kind {
            FaultKind::ReplicaCrash(r) => format!("replica {r} crashed"),
            FaultKind::ReplicaRecover(r) => format!("replica {r} recovered (log replayed)"),
            FaultKind::CertifierFailover { group, leader } => {
                format!("certifier group {group} failed over to member {leader}")
            }
            FaultKind::Rereplicate { group, to, bytes } => {
                format!("relation group {group} re-replicated onto replica {to} ({bytes} B)")
            }
            FaultKind::Migrate {
                group,
                from,
                to,
                bytes,
            } => {
                format!("relation group {group} migrated {from} -> {to} ({bytes} B)")
            }
            FaultKind::ShrinkHolder { group, from } => {
                format!("relation group {group} shed surplus holder {from}")
            }
            FaultKind::ReplicaSuspected(r) => format!("replica {r} suspected by the detector"),
            FaultKind::ReplicaDead(r) => format!("replica {r} declared dead by the detector"),
            FaultKind::ReplicaTrusted(r) => format!("replica {r} trusted again"),
            FaultKind::Partition { a, b } => format!("link {a}<->{b} partitioned"),
            FaultKind::PartitionHealed { a, b } => format!("link {a}<->{b} healed"),
        };
        println!("  {:>6.0}s {label}", f.at.as_secs_f64());
    }

    println!("\n  time series (10 s buckets, tps):");
    let ts = result.timeseries(10.0);
    let mut csv = String::from("t_s,tps\n");
    for (t, tps) in &ts {
        let mark = if (*t..*t + 10.0).contains(&(sched.crash_at_secs as f64)) {
            "  <- crash"
        } else if (*t..*t + 10.0).contains(&(sched.recover_at_secs as f64)) {
            "  <- recover"
        } else if (*t..*t + 10.0).contains(&(sched.leader_kill_at_secs as f64)) {
            "  <- leader kill"
        } else {
            ""
        };
        let bar = "#".repeat((tps / 4.0).round() as usize);
        println!("  {t:>6.0}s {tps:>7.1} {bar}{mark}");
        csv.push_str(&format!("{t},{tps}\n"));
    }
    save_csv("fig_failover_timeseries", &csv);

    // Plateau means: steady state before the crash, the outage window, and
    // the post-recovery tail (leaving a settle bucket after recovery).
    let warmup = knobs.warmup_secs as f64;
    let end = (knobs.warmup_secs + knobs.measured_secs) as f64;
    let pre = result.plateau(10.0, warmup, sched.crash_at_secs as f64);
    let outage = result.plateau(
        10.0,
        sched.crash_at_secs as f64,
        sched.recover_at_secs as f64,
    );
    let post_from = sched.recover_at_secs as f64 + 10.0;
    let post = result.plateau(10.0, post_from, end);
    let rows = [
        Row {
            label: "pre-crash steady state".into(),
            paper: 0.0,
            measured: pre,
        },
        Row {
            label: "outage plateau".into(),
            paper: 0.0,
            measured: outage,
        },
        Row {
            label: "post-recovery plateau".into(),
            paper: 0.0,
            measured: post,
        },
    ];
    println!("\n  plateaus (tps):");
    let mut csv = String::from("plateau,tps\n");
    for r in &rows {
        println!("    {:<24} {:>7.1}", r.label, r.measured);
        csv.push_str(&format!("{},{}\n", r.label, r.measured));
    }
    save_csv("fig_failover_plateaus", &csv);
    // Only judge the recovery shape when the tail holds a full bucket
    // (smoke windows end before one fits).
    if post_from + 10.0 <= end {
        println!(
            "  shape check: post-recovery within 10% of pre-crash: {}",
            post >= 0.9 * pre
        );
    } else {
        println!("  (window too short for a post-recovery plateau — smoke run; use a larger TASHKENT_BENCH_WINDOW)");
    }
}
