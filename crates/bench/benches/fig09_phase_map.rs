//! Figure 9: the database-size × memory-size space (§5.6).
//!
//! The paper's Figure 9 is a conceptual sketch: partitioning and filtering
//! improve performance in a diagonal band where per-group working sets fit
//! memory but their combined sum does not; above the band the working set
//! is too big for memory (disk-bound either way), below it everything fits
//! (memory-rich either way). This bench *measures* that map on the TPC-W
//! ordering mix and renders it from data.

use tashkent_bench::{run_exp, save_csv, sweep_driver, tpcw_config, window};
use tashkent_cluster::{Experiment, PolicySpec};
use tashkent_workloads::tpcw::TpcwScale;

fn main() {
    let (warmup, measured) = window();
    let measured = measured.min(120);
    let scales = [TpcwScale::Small, TpcwScale::Mid, TpcwScale::Large];
    let rams = [256u64, 512, 1024];

    println!("== Figure 9: measured phase map (TPC-W ordering; MALB-SC tps / LC tps) ==");
    println!("rows: database size (small → large); columns: memory (small → large)");
    let mut csv = String::from("db,ram_mb,lc_tps,malb_tps,gain\n");
    let mut grid = Vec::new();
    for scale in scales {
        let mut row = Vec::new();
        for ram in rams {
            let (config, workload, mix) =
                tpcw_config(PolicySpec::LeastConnections, ram, scale, "ordering");
            let lc = run_exp(
                Experiment::new(config, workload, mix)
                    .with_window(warmup, measured)
                    .with_driver(sweep_driver()),
            );
            let (config, workload, mix) =
                tpcw_config(PolicySpec::malb_sc(), ram, scale, "ordering");
            let malb = run_exp(
                Experiment::new(config, workload, mix)
                    .with_window(warmup, measured)
                    .with_driver(sweep_driver()),
            );
            let gain = malb.tps / lc.tps.max(1e-9);
            csv.push_str(&format!(
                "{},{},{:.2},{:.2},{:.2}\n",
                scale.label(),
                ram,
                lc.tps,
                malb.tps,
                gain
            ));
            row.push(gain);
        }
        grid.push((scale, row));
    }
    println!("{:<9} {:>8} {:>8} {:>8}", "", "256MB", "512MB", "1024MB");
    for (scale, row) in &grid {
        let cells: Vec<String> = row
            .iter()
            .map(|g| {
                let tag = if *g >= 1.2 {
                    "GAIN"
                } else if *g >= 0.9 {
                    "even"
                } else {
                    "LOSS"
                };
                format!("{g:.2}({tag})")
            })
            .collect();
        println!(
            "{:<9} {:>10} {:>10} {:>10}",
            scale.label(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!(
        "paper's band: gains where group working sets fit but the sum does not;\n\
         'even' in the too-big (LargeDB@256MB) and fits-entirely (SmallDB@1GB) corners"
    );
    save_csv("fig09_phase_map", &csv);
}
