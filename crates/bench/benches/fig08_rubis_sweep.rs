//! Figure 8: RUBiS bidding mix across memory sizes (§5.6).
//!
//! 2.2 GB database, RAM 256 / 512 / 1024 MB, 16 replicas. Paper values
//! (LC / MALB-SC / MALB-SC+UF): 18/23/24 at 256 MB, 31/43/44 at 512 MB,
//! 42/44/44 at 1024 MB — MALB helps below 1 GB; at 1 GB the working sets
//! fit everywhere and the methods converge.

use tashkent_bench::{print_table, rubis_config, run_exp, save_csv, sweep_driver, window, Row};
use tashkent_cluster::{Experiment, PolicySpec};

fn main() {
    let (warmup, measured) = window();
    let paper: [(u64, [f64; 3]); 3] = [
        (256, [18.0, 23.0, 24.0]),
        (512, [31.0, 43.0, 44.0]),
        (1024, [42.0, 44.0, 44.0]),
    ];
    let policies = [
        PolicySpec::LeastConnections,
        PolicySpec::malb_sc(),
        PolicySpec::malb_sc_uf(),
    ];
    let mut rows = Vec::new();
    for (ram, paper_vals) in paper {
        for (policy, paper_tps) in policies.iter().zip(paper_vals) {
            let (config, workload, mix) = rubis_config(*policy, ram, "bidding");
            let r = run_exp(
                Experiment::new(config, workload, mix)
                    .with_window(warmup, measured)
                    .with_driver(sweep_driver()),
            );
            rows.push(Row {
                label: format!("{}MB {}", ram, policy.label()),
                paper: paper_tps,
                measured: r.tps,
            });
        }
    }
    let csv = print_table(
        "Figure 8: RUBiS bidding across memory sizes (16 replicas)",
        "tps",
        &rows,
    );
    save_csv("fig08_rubis_sweep", &csv);

    // Shape check: the MALB advantage over LC shrinks as memory grows.
    let advantage = |ram: &str| {
        let lc = rows
            .iter()
            .find(|r| r.label == format!("{ram}MB LeastConnections"))
            .unwrap()
            .measured;
        let malb = rows
            .iter()
            .find(|r| r.label == format!("{ram}MB MALB-SC"))
            .unwrap()
            .measured;
        malb / lc.max(1e-9)
    };
    println!(
        "  MALB/LC ratio: 256MB {:.2}x, 512MB {:.2}x, 1024MB {:.2}x (paper: 1.28, 1.39, 1.05)",
        advantage("256"),
        advantage("512"),
        advantage("1024")
    );
}
