//! Criterion microbenchmarks for the core algorithmic components: bin
//! packing, buffer-pool touches, certification, and dispatch decisions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tashkent_core::{
    pack_groups, EstimationMode, Lard, LardConfig, WorkingSet, WorkingSetEstimator,
};
use tashkent_engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent_sim::SimTime;
use tashkent_storage::{BufferPool, Catalog, GlobalPageId, RelationId};
use tashkent_workloads::tpcw::{self, TpcwScale};

fn synth_working_sets(n: u32) -> Vec<WorkingSet> {
    (0..n)
        .map(|i| WorkingSet {
            txn_type: TxnTypeId(i),
            relations: (0..4)
                .map(|k| {
                    (
                        RelationId((i * 3 + k) % 40),
                        1_000 + (i as u64 * 37) % 9_000,
                    )
                })
                .collect(),
            scanned: [(RelationId(i % 40))].into_iter().collect(),
        })
        .collect()
}

fn bench_packing(c: &mut Criterion) {
    let sets = synth_working_sets(64);
    c.bench_function("bfd_pack_64_types_sc", |b| {
        b.iter(|| pack_groups(&sets, EstimationMode::SizeContent, 50_000))
    });
    c.bench_function("bfd_pack_64_types_s", |b| {
        b.iter(|| pack_groups(&sets, EstimationMode::Size, 50_000))
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    c.bench_function("bufferpool_touch_hit", |b| {
        let mut pool = BufferPool::new(4_096);
        for p in 0..4_096u32 {
            pool.touch(GlobalPageId::new(RelationId(0), p));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 4_096;
            pool.touch(GlobalPageId::new(RelationId(0), i))
        })
    });
    c.bench_function("bufferpool_touch_evict", |b| {
        let mut pool = BufferPool::new(1_024);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            pool.touch(GlobalPageId::new(RelationId(0), i % 100_000))
        })
    });
}

fn bench_certifier(c: &mut Criterion) {
    c.bench_function("certify_commit", |b| {
        b.iter_batched(
            tashkent_certifier::Certifier::default,
            |mut cert| {
                for i in 0..100u64 {
                    let ws = Writeset::new(
                        TxnId(i),
                        TxnTypeId(0),
                        Snapshot::at(Version(i)),
                        vec![WritesetItem {
                            rel: RelationId((i % 7) as u32),
                            row: i * 13,
                        }],
                    );
                    cert.certify(SimTime::from_micros(i), ws);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("lard_dispatch", |b| {
        let mut lard = Lard::new(16, LardConfig::default());
        let conns = [3usize; 16];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 13;
            lard.dispatch(TxnTypeId(i), &conns)
        })
    });
}

fn bench_estimation(c: &mut Criterion) {
    let workload = tpcw::workload(TpcwScale::Mid);
    c.bench_function("estimate_tpcw_working_sets", |b| {
        b.iter(|| {
            let est = WorkingSetEstimator::new(&workload.catalog);
            let sets: Vec<WorkingSet> = workload
                .types
                .iter()
                .map(|t| est.estimate(t.id, &workload.explain(t.id)))
                .collect();
            sets
        })
    });
    let mut catalog = Catalog::new();
    for i in 0..100 {
        catalog.add_table(&format!("t{i}"), 100 + i, 10_000);
    }
    c.bench_function("catalog_relpages_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 100;
            catalog.relpages(&format!("t{i}"))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_packing, bench_buffer_pool, bench_certifier, bench_dispatch, bench_estimation
);
criterion_main!(micro);
