//! Wall-clock comparison of the sequential vs windowed-parallel drivers,
//! with a machine-readable JSON report.
//!
//! Runs a Figure 3 full-size configuration (MidDB 1.8 GB, 512 MB RAM,
//! 16 replicas, TPC-W ordering; LARD by default — the fig03 point whose
//! hot-replica concentration yields the densest event stream) under the
//! sequential driver once and the parallel driver at each requested
//! thread count, checks the results are bit-identical, and reports
//! wall-clock times plus the parallel driver's window statistics (mean
//! window size, deferred stoppers, pooling, lease runs, log2 size
//! histogram). A forced-pool diagnostic (`ParallelTuned { threads: 2,
//! min_dispatch: 0 }`) runs last so the persistent-pool path is measured
//! even on hosts where the dispatch economics would keep windows inline.
//!
//! Two reports come out of every run:
//! * `bench_results/driver_bench.json` — the full per-thread detail
//!   (overwritten each run);
//! * `BENCH_driver.json` at the repo root — one schema-stable entry
//!   appended to a JSON array per run: label, host cores, sequential and
//!   per-thread parallel wall-clock, the parallel/sequential ratio per
//!   thread count, the forced-pool diagnostic, mean window size, and the
//!   best (crossover) ratio. This is the cross-PR perf trajectory; each
//!   PR that touches the driver appends a labelled run.
//!
//! Usage: `cargo run --release -p tashkent-bench --bin driver_bench
//! [threads...]` (default thread counts: 2 4).
//!
//! Environment:
//! * `TASHKENT_BENCH_WINDOW` — simulated window (`full`/`quick`/`smoke`).
//! * `TASHKENT_BENCH_POLICY` — dispatch policy for the measured config
//!   (`leastconn` | `lard` | `malb-sc`; default `lard`, the fig03 point
//!   whose hot-replica concentration yields the densest windows).
//! * `TASHKENT_BENCH_CPR` — clients per replica (default: the calibrated
//!   85%-of-peak table entry). Raising it pushes the cluster into the
//!   overload regime the fig 8–10 sweeps cover, where every Gatekeeper
//!   slot is busy and event density — and so window size — peaks.
//! * `TASHKENT_BENCH_CERT_GROUPS` — when set, run under sharded
//!   certification with this many certifier groups (cert sends become
//!   window starters and single-group checks execute on pool workers);
//!   unset keeps the unified certifier. The config label records it.
//! * `TASHKENT_BENCH_LABEL` — label stamped on the `BENCH_driver.json`
//!   entry (default `local`; CI passes the commit hash).
//! * `TASHKENT_BENCH_MIN_WINDOW` — when set, exit non-zero if the mean
//!   window size *including lone steps as windows of one* falls below
//!   this floor (the conservative gauge: a regression that shatters
//!   windows into singles cannot hide behind large surviving windows).
//! * `TASHKENT_BENCH_MAX_RATIO` — when set, exit non-zero if the first
//!   requested thread count's parallel/sequential wall-clock ratio
//!   exceeds this ceiling (the perf-smoke gate: parallel must not fall
//!   behind sequential by more than the allowed factor).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use tashkent_bench::{append_repo_root_json, clients_per_replica, save_json, window};
use tashkent_cluster::{
    DriverKind, DriverStats, PolicySpec, RunResult, Scenario, ScenarioKnobs, TpcwSteadyState,
};
use tashkent_workloads::tpcw::TpcwScale;

/// One driver run: wall clock plus the result it produced.
struct Timed {
    wall: Duration,
    result: RunResult,
}

fn run(scenario: &TpcwSteadyState, knobs: &ScenarioKnobs, driver: DriverKind) -> Timed {
    let t = Instant::now();
    let result = scenario
        .run(&knobs.clone().with_driver(driver))
        .expect("driver_bench run completes");
    Timed {
        wall: t.elapsed(),
        result,
    }
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64) {
    (r.committed, r.aborts, r.updates)
}

fn hist_json(stats: &DriverStats) -> String {
    let entries: Vec<String> = stats.size_hist.iter().map(u64::to_string).collect();
    format!("[{}]", entries.join(","))
}

fn main() {
    // Malformed input must fail loudly: a silent fallback would measure —
    // and gate CI on — a different configuration than the one requested.
    let threads: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse()
                    .unwrap_or_else(|_| panic!("thread-count argument must be a number, got {a:?}"))
            })
            .collect();
        if args.is_empty() {
            vec![2, 4]
        } else {
            args
        }
    };
    let (warmup, measured) = window();
    let (policy, policy_name) = match std::env::var("TASHKENT_BENCH_POLICY").as_deref() {
        Ok("leastconn") => (PolicySpec::LeastConnections, "leastconn"),
        Ok("malb-sc") => (PolicySpec::malb_sc(), "malb-sc"),
        Ok("lard") | Err(_) => (PolicySpec::Lard, "lard"),
        Ok(other) => {
            panic!("TASHKENT_BENCH_POLICY must be `leastconn`, `lard`, or `malb-sc`, got {other:?}")
        }
    };
    let scenario = TpcwSteadyState {
        scale: TpcwScale::Mid,
        mix: "ordering",
    };
    let cpr = match std::env::var("TASHKENT_BENCH_CPR") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("TASHKENT_BENCH_CPR must be a number, got {v:?}")),
        Err(_) => clients_per_replica("tpcw", "ordering"),
    };
    let cert_groups: Option<usize> =
        match std::env::var("TASHKENT_BENCH_CERT_GROUPS") {
            Ok(v) => Some(v.parse().unwrap_or_else(|_| {
                panic!("TASHKENT_BENCH_CERT_GROUPS must be a number, got {v:?}")
            })),
            Err(_) => None,
        };
    let knobs = ScenarioKnobs {
        replicas: 16,
        clients_per_replica: cpr,
        warmup_secs: warmup,
        measured_secs: measured,
        ..ScenarioKnobs::default()
    }
    .with_policy(policy)
    .with_cert_groups(cert_groups);
    let cert_label = cert_groups.map_or(String::new(), |g| format!("-cert{g}"));

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let seq = run(&scenario, &knobs, DriverKind::Sequential);
    println!(
        "fig03 shape (MidDB, 512MB, 16 replicas, {policy_name}), {}s simulated, \
         {} committed txns, host cores: {cores}",
        warmup + measured,
        seq.result.committed
    );
    println!("  sequential: {:?}", seq.wall);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": \"tpcw-mid-ordering-{policy_name}-16r{cert_label}\","
    );
    let _ = writeln!(json, "  \"warmup_secs\": {warmup},");
    let _ = writeln!(json, "  \"measured_secs\": {measured},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"committed\": {},", seq.result.committed);
    let _ = writeln!(json, "  \"sequential_wall_us\": {},", seq.wall.as_micros());
    let _ = writeln!(json, "  \"parallel\": [");

    let mut worst_mean = f64::INFINITY;
    let mut mean_incl_singles = 0.0;
    // `(threads, wall_us, parallel/sequential ratio)` per default run, for
    // the repo-root trajectory entry and the perf-smoke gate.
    let mut trajectory: Vec<(usize, u128, f64)> = Vec::new();
    for (i, &t) in threads.iter().enumerate() {
        let par = run(&scenario, &knobs, DriverKind::Parallel { threads: t });
        assert_eq!(
            fingerprint(&seq.result),
            fingerprint(&par.result),
            "drivers must produce identical results ({t} threads)"
        );
        let stats = par
            .result
            .driver_stats
            .expect("parallel runs always record window stats");
        let mean = stats.mean_window_items();
        worst_mean = worst_mean.min(stats.mean_window_incl_singles());
        mean_incl_singles = stats.mean_window_incl_singles();
        let ratio = par.wall.as_secs_f64() / seq.wall.as_secs_f64().max(1e-9);
        trajectory.push((t, par.wall.as_micros(), ratio));
        println!(
            "  parallel:   {:?} ({t} threads) -> {ratio:.2}x of sequential | \
             {:.2} items/window ({:.2} incl. singles), {} deferred, \
             {} pooled of {} windows, {} runs ({} leases retained, {} recalls, \
             {} pipelined), {} cert sharded / {} inline, worker idle {:.1}%",
            par.wall,
            mean,
            stats.mean_window_incl_singles(),
            stats.deferred,
            stats.pooled,
            stats.windows,
            stats.runs,
            stats.leases_retained,
            stats.recalls,
            stats.pipelined,
            stats.certifier_sharded,
            stats.certifier_inline,
            stats.worker_idle_fraction() * 100.0,
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"threads\": {t},");
        let _ = writeln!(json, "      \"wall_us\": {},", par.wall.as_micros());
        let _ = writeln!(json, "      \"ratio\": {ratio:.4},");
        let _ = writeln!(json, "      \"windows\": {},", stats.windows);
        let _ = writeln!(json, "      \"singles\": {},", stats.singles);
        let _ = writeln!(json, "      \"items\": {},", stats.items);
        let _ = writeln!(json, "      \"steps\": {},", stats.steps);
        let _ = writeln!(json, "      \"deferred\": {},", stats.deferred);
        let _ = writeln!(json, "      \"shards\": {},", stats.shards);
        let _ = writeln!(json, "      \"pooled\": {},", stats.pooled);
        let _ = writeln!(json, "      \"runs\": {},", stats.runs);
        let _ = writeln!(
            json,
            "      \"max_run_windows\": {},",
            stats.max_run_windows
        );
        let _ = writeln!(
            json,
            "      \"leases_retained\": {},",
            stats.leases_retained
        );
        let _ = writeln!(json, "      \"recalls\": {},", stats.recalls);
        let _ = writeln!(json, "      \"pipelined\": {},", stats.pipelined);
        let _ = writeln!(
            json,
            "      \"certifier_sharded\": {},",
            stats.certifier_sharded
        );
        let _ = writeln!(
            json,
            "      \"certifier_inline\": {},",
            stats.certifier_inline
        );
        let _ = writeln!(json, "      \"worker_parks\": {},", stats.worker_parks);
        let _ = writeln!(json, "      \"worker_spins\": {},", stats.worker_spins);
        let _ = writeln!(
            json,
            "      \"worker_idle_fraction\": {:.4},",
            stats.worker_idle_fraction()
        );
        let _ = writeln!(json, "      \"mean_window_items\": {mean:.4},");
        let _ = writeln!(
            json,
            "      \"mean_window_incl_singles\": {:.4},",
            stats.mean_window_incl_singles()
        );
        let _ = writeln!(json, "      \"size_hist\": {}", hist_json(&stats));
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < threads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    save_json("driver_bench", &json);

    // Forced-pool diagnostic: `min_dispatch = 0` lifts the dispatch
    // economics (including the host-parallelism clamp), so the persistent
    // pool, lease runs, and streaming merge are measured even on hosts
    // where the default path would run every window inline.
    let forced = run(
        &scenario,
        &knobs,
        DriverKind::ParallelTuned {
            threads: 2,
            min_dispatch: 0,
        },
    );
    assert_eq!(
        fingerprint(&seq.result),
        fingerprint(&forced.result),
        "forced-pool run must produce identical results"
    );
    let forced_ratio = forced.wall.as_secs_f64() / seq.wall.as_secs_f64().max(1e-9);
    println!(
        "  forced-pool: {:?} (2 threads, min_dispatch 0) -> {forced_ratio:.2}x of sequential",
        forced.wall
    );

    // Tracing overhead: the same sequential run with full lifecycle tracing
    // recording and exporting, against the untraced baseline above (which
    // already carries the disabled instrumentation — its cost is one branch
    // per site). The ratio lands in the trajectory entry so any creep in
    // either the disabled or the enabled path shows up across PRs.
    let trace_path =
        std::env::temp_dir().join(format!("driver_bench-{}.jsonl", std::process::id()));
    let trace_base = trace_path.to_str().expect("temp path is UTF-8");
    let traced = run(
        &scenario,
        &knobs.clone().with_trace(trace_base),
        DriverKind::Sequential,
    );
    assert_eq!(
        fingerprint(&seq.result),
        fingerprint(&traced.result),
        "tracing must not change the simulation"
    );
    let trace_summary = traced
        .result
        .trace_summary
        .expect("traced runs record a summary");
    let trace_ratio = traced.wall.as_secs_f64() / seq.wall.as_secs_f64().max(1e-9);
    println!(
        "  traced:     {:?} (sequential, {} events) -> {trace_ratio:.2}x of untraced",
        traced.wall, trace_summary.recorded
    );
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(format!("{trace_base}.chrome.json"));

    // One schema-stable entry for the cross-PR trajectory at the repo root.
    let label = std::env::var("TASHKENT_BENCH_LABEL").unwrap_or_else(|_| "local".into());
    let crossover = trajectory
        .iter()
        .map(|(_, _, r)| *r)
        .fold(f64::INFINITY, f64::min);
    let mut entry = String::from("  {\n");
    let _ = writeln!(entry, "    \"label\": {label:?},");
    let _ = writeln!(
        entry,
        "    \"config\": \"tpcw-mid-ordering-{policy_name}-16r{cert_label}\","
    );
    let _ = writeln!(entry, "    \"warmup_secs\": {warmup},");
    let _ = writeln!(entry, "    \"measured_secs\": {measured},");
    let _ = writeln!(entry, "    \"host_cores\": {cores},");
    let _ = writeln!(
        entry,
        "    \"sequential_wall_us\": {},",
        seq.wall.as_micros()
    );
    let _ = writeln!(entry, "    \"parallel\": [");
    for (i, (t, wall_us, ratio)) in trajectory.iter().enumerate() {
        let _ = writeln!(
            entry,
            "      {{ \"threads\": {t}, \"wall_us\": {wall_us}, \"ratio\": {ratio:.4} }}{}",
            if i + 1 < trajectory.len() { "," } else { "" }
        );
    }
    let _ = writeln!(entry, "    ],");
    let _ = writeln!(
        entry,
        "    \"forced_pool\": {{ \"threads\": 2, \"min_dispatch\": 0, \"wall_us\": {}, \"ratio\": {forced_ratio:.4} }},",
        forced.wall.as_micros()
    );
    let _ = writeln!(
        entry,
        "    \"trace\": {{ \"untraced_wall_us\": {}, \"traced_wall_us\": {}, \"overhead_ratio\": {trace_ratio:.4}, \"events\": {} }},",
        seq.wall.as_micros(),
        traced.wall.as_micros(),
        trace_summary.recorded
    );
    let _ = writeln!(
        entry,
        "    \"mean_window_incl_singles\": {mean_incl_singles:.4},"
    );
    let _ = writeln!(entry, "    \"crossover_ratio\": {crossover:.4}");
    entry.push_str("  }");
    append_repo_root_json("BENCH_driver.json", &entry);

    if let Ok(floor) = std::env::var("TASHKENT_BENCH_MIN_WINDOW") {
        let floor: f64 = floor
            .parse()
            .expect("TASHKENT_BENCH_MIN_WINDOW must be a number");
        assert!(
            worst_mean >= floor,
            "mean window size (incl. singles) regressed: {worst_mean:.2} < floor {floor} \
             (deferred-stopper windows should keep windows large; see \
             crates/cluster/src/driver.rs)"
        );
        println!("  window-size floor {floor} held (worst mean incl. singles {worst_mean:.2})");
    }
    if let Ok(ceiling) = std::env::var("TASHKENT_BENCH_MAX_RATIO") {
        let ceiling: f64 = ceiling
            .parse()
            .expect("TASHKENT_BENCH_MAX_RATIO must be a number");
        let (t, _, ratio) = trajectory[0];
        assert!(
            ratio <= ceiling,
            "parallel wall-clock regressed: {ratio:.2}x of sequential at {t} threads \
             exceeds the {ceiling}x ceiling (see crates/cluster/src/driver.rs)"
        );
        println!("  wall-clock ceiling {ceiling}x held ({ratio:.2}x at {t} threads)");
    }
}
