//! Wall-clock comparison of the sequential vs windowed-parallel drivers.
//!
//! Runs the same paper-scale experiment (16 replicas, TPC-W ordering,
//! MALB-SC) under both drivers, checks the results are bit-identical, and
//! prints wall-clock times. On a host with ≥ 4 cores the parallel driver
//! should win clearly; on one core it degrades to the inline windowed path
//! with small overhead.
//!
//! Usage: `cargo run --release -p tashkent-bench --bin driver_bench [threads]`

use std::time::Instant;

use tashkent_bench::{clients_per_replica, window};
use tashkent_cluster::{run_scenario, DriverKind, PolicySpec, ScenarioKnobs};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let (warmup, measured) = window();
    let knobs = ScenarioKnobs {
        replicas: 16,
        clients_per_replica: clients_per_replica("tpcw", "ordering"),
        warmup_secs: warmup,
        measured_secs: measured,
        ..ScenarioKnobs::default()
    }
    .with_policy(PolicySpec::malb_sc());

    let t = Instant::now();
    let seq = run_scenario(
        "tpcw-steady-state",
        &knobs.clone().with_driver(DriverKind::Sequential),
    )
    .expect("sequential run completes");
    let seq_wall = t.elapsed();

    let t = Instant::now();
    let par = run_scenario(
        "tpcw-steady-state",
        &knobs.clone().with_driver(DriverKind::Parallel { threads }),
    )
    .expect("parallel run completes");
    let par_wall = t.elapsed();

    assert_eq!(
        (seq.committed, seq.aborts, seq.updates),
        (par.committed, par.aborts, par.updates),
        "drivers must produce identical results"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "16 replicas x {}s simulated, {} committed txns, host cores: {cores}",
        warmup + measured,
        seq.committed
    );
    println!("  sequential: {seq_wall:?}");
    println!(
        "  parallel:   {par_wall:?} ({} threads) -> {:.2}x",
        if threads == 0 { cores } else { threads },
        seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9)
    );
}
