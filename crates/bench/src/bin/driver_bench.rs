//! Wall-clock comparison of the sequential vs windowed-parallel drivers,
//! with a machine-readable JSON report.
//!
//! Runs a Figure 3 full-size configuration (MidDB 1.8 GB, 512 MB RAM,
//! 16 replicas, TPC-W ordering; LARD by default — the fig03 point whose
//! hot-replica concentration yields the densest event stream) under the
//! sequential driver once and the parallel driver at each requested
//! thread count, checks the results are bit-identical, and reports
//! wall-clock times plus the parallel driver's window statistics (mean
//! window size, deferred stoppers, pooling, log2 size histogram). The
//! JSON lands in `bench_results/driver_bench.json`, seeding the repo's
//! perf trajectory.
//!
//! Usage: `cargo run --release -p tashkent-bench --bin driver_bench
//! [threads...]` (default thread counts: 2 4).
//!
//! Environment:
//! * `TASHKENT_BENCH_WINDOW` — simulated window (`full`/`quick`/`smoke`).
//! * `TASHKENT_BENCH_POLICY` — dispatch policy for the measured config
//!   (`leastconn` | `lard` | `malb-sc`; default `lard`, the fig03 point
//!   whose hot-replica concentration yields the densest windows).
//! * `TASHKENT_BENCH_CPR` — clients per replica (default: the calibrated
//!   85%-of-peak table entry). Raising it pushes the cluster into the
//!   overload regime the fig 8–10 sweeps cover, where every Gatekeeper
//!   slot is busy and event density — and so window size — peaks.
//! * `TASHKENT_BENCH_MIN_WINDOW` — when set, exit non-zero if the mean
//!   window size *including lone steps as windows of one* falls below
//!   this floor (the conservative gauge: a regression that shatters
//!   windows into singles cannot hide behind large surviving windows).
//!   The CI perf-smoke step asserts on window size, not wall clock, so
//!   shared runners cannot flake it.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use tashkent_bench::{clients_per_replica, save_json, window};
use tashkent_cluster::{
    DriverKind, DriverStats, PolicySpec, RunResult, Scenario, ScenarioKnobs, TpcwSteadyState,
};
use tashkent_workloads::tpcw::TpcwScale;

/// One driver run: wall clock plus the result it produced.
struct Timed {
    wall: Duration,
    result: RunResult,
}

fn run(scenario: &TpcwSteadyState, knobs: &ScenarioKnobs, driver: DriverKind) -> Timed {
    let t = Instant::now();
    let result = scenario
        .run(&knobs.clone().with_driver(driver))
        .expect("driver_bench run completes");
    Timed {
        wall: t.elapsed(),
        result,
    }
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64) {
    (r.committed, r.aborts, r.updates)
}

fn hist_json(stats: &DriverStats) -> String {
    let entries: Vec<String> = stats.size_hist.iter().map(u64::to_string).collect();
    format!("[{}]", entries.join(","))
}

fn main() {
    // Malformed input must fail loudly: a silent fallback would measure —
    // and gate CI on — a different configuration than the one requested.
    let threads: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse()
                    .unwrap_or_else(|_| panic!("thread-count argument must be a number, got {a:?}"))
            })
            .collect();
        if args.is_empty() {
            vec![2, 4]
        } else {
            args
        }
    };
    let (warmup, measured) = window();
    let (policy, policy_name) = match std::env::var("TASHKENT_BENCH_POLICY").as_deref() {
        Ok("leastconn") => (PolicySpec::LeastConnections, "leastconn"),
        Ok("malb-sc") => (PolicySpec::malb_sc(), "malb-sc"),
        Ok("lard") | Err(_) => (PolicySpec::Lard, "lard"),
        Ok(other) => {
            panic!("TASHKENT_BENCH_POLICY must be `leastconn`, `lard`, or `malb-sc`, got {other:?}")
        }
    };
    let scenario = TpcwSteadyState {
        scale: TpcwScale::Mid,
        mix: "ordering",
    };
    let cpr = match std::env::var("TASHKENT_BENCH_CPR") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("TASHKENT_BENCH_CPR must be a number, got {v:?}")),
        Err(_) => clients_per_replica("tpcw", "ordering"),
    };
    let knobs = ScenarioKnobs {
        replicas: 16,
        clients_per_replica: cpr,
        warmup_secs: warmup,
        measured_secs: measured,
        ..ScenarioKnobs::default()
    }
    .with_policy(policy);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let seq = run(&scenario, &knobs, DriverKind::Sequential);
    println!(
        "fig03 shape (MidDB, 512MB, 16 replicas, {policy_name}), {}s simulated, \
         {} committed txns, host cores: {cores}",
        warmup + measured,
        seq.result.committed
    );
    println!("  sequential: {:?}", seq.wall);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": \"tpcw-mid-ordering-{policy_name}-16r\","
    );
    let _ = writeln!(json, "  \"warmup_secs\": {warmup},");
    let _ = writeln!(json, "  \"measured_secs\": {measured},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"committed\": {},", seq.result.committed);
    let _ = writeln!(json, "  \"sequential_wall_us\": {},", seq.wall.as_micros());
    let _ = writeln!(json, "  \"parallel\": [");

    let mut worst_mean = f64::INFINITY;
    for (i, &t) in threads.iter().enumerate() {
        let par = run(&scenario, &knobs, DriverKind::Parallel { threads: t });
        assert_eq!(
            fingerprint(&seq.result),
            fingerprint(&par.result),
            "drivers must produce identical results ({t} threads)"
        );
        let stats = par
            .result
            .driver_stats
            .expect("parallel runs always record window stats");
        let mean = stats.mean_window_items();
        worst_mean = worst_mean.min(stats.mean_window_incl_singles());
        println!(
            "  parallel:   {:?} ({t} threads) -> {:.2}x | {:.2} items/window \
             ({:.2} incl. singles), {} deferred, {} pooled of {} windows",
            par.wall,
            seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
            mean,
            stats.mean_window_incl_singles(),
            stats.deferred,
            stats.pooled,
            stats.windows,
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"threads\": {t},");
        let _ = writeln!(json, "      \"wall_us\": {},", par.wall.as_micros());
        let _ = writeln!(json, "      \"windows\": {},", stats.windows);
        let _ = writeln!(json, "      \"singles\": {},", stats.singles);
        let _ = writeln!(json, "      \"items\": {},", stats.items);
        let _ = writeln!(json, "      \"steps\": {},", stats.steps);
        let _ = writeln!(json, "      \"deferred\": {},", stats.deferred);
        let _ = writeln!(json, "      \"shards\": {},", stats.shards);
        let _ = writeln!(json, "      \"pooled\": {},", stats.pooled);
        let _ = writeln!(json, "      \"mean_window_items\": {mean:.4},");
        let _ = writeln!(
            json,
            "      \"mean_window_incl_singles\": {:.4},",
            stats.mean_window_incl_singles()
        );
        let _ = writeln!(json, "      \"size_hist\": {}", hist_json(&stats));
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < threads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    save_json("driver_bench", &json);

    if let Ok(floor) = std::env::var("TASHKENT_BENCH_MIN_WINDOW") {
        let floor: f64 = floor
            .parse()
            .expect("TASHKENT_BENCH_MIN_WINDOW must be a number");
        assert!(
            worst_mean >= floor,
            "mean window size (incl. singles) regressed: {worst_mean:.2} < floor {floor} \
             (deferred-stopper windows should keep windows large; see \
             crates/cluster/src/driver.rs)"
        );
        println!("  window-size floor {floor} held (worst mean incl. singles {worst_mean:.2})");
    }
}
