//! Calibration driver: reproduces the §4.4 client-sizing procedure per
//! workload/mix, prints the `CLIENTS_PER_REPLICA` table for
//! `crates/bench/src/lib.rs`, and prints the Figure 3 / Figure 7 policy
//! comparison so model constants can be tuned against the paper's shape.
//!
//! Usage: `cargo run --release -p tashkent-bench --bin calibrate [quick]`

use tashkent_bench::{rubis_config, tpcw_config, WARMUP_SECS};
use tashkent_cluster::{calibrate_standalone, run, Experiment, PolicySpec};
use tashkent_workloads::tpcw::TpcwScale;

/// Client counts the §4.4 sweep considers, per replica.
const CANDIDATES: [usize; 8] = [2, 4, 6, 8, 10, 14, 20, 28];

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let (warmup, measured) = if quick { (60, 120) } else { (WARMUP_SECS, 180) };

    // 0. Per-workload client sizing: the CLIENTS_PER_REPLICA table every
    // figure reads. Paste the printed block into crates/bench/src/lib.rs
    // after model changes.
    println!("const CLIENTS_PER_REPLICA: &[(&str, &str, usize)] = &[");
    let tpcw_mixes = ["ordering", "shopping", "browsing"];
    let mut ordering_cal = None;
    for mix_name in tpcw_mixes {
        let (base, workload, mix) =
            tpcw_config(PolicySpec::LeastConnections, 512, TpcwScale::Mid, mix_name);
        let cal = calibrate_standalone(&base, &workload, &mix, &CANDIDATES, warmup, measured);
        println!(
            "    (\"tpcw\", \"{mix_name}\", {}), // peak {:.2} tps",
            cal.clients_at_85, cal.peak_tps
        );
        if mix_name == "ordering" {
            ordering_cal = Some(cal);
        }
    }
    for mix_name in ["bidding", "browsing"] {
        let (base, workload, mix) = rubis_config(PolicySpec::LeastConnections, 512, mix_name);
        let cal = calibrate_standalone(&base, &workload, &mix, &CANDIDATES, warmup, measured);
        println!(
            "    (\"rubis\", \"{mix_name}\", {}), // peak {:.2} tps",
            cal.clients_at_85, cal.peak_tps
        );
    }
    println!("];");

    // 1. Standalone sweep detail (MidDB, 512 MB, ordering) — reuses the
    // ordering calibration section 0 already ran.
    println!("standalone sweep (MidDB 1.8GB, 512MB RAM, ordering mix):");
    let cal = ordering_cal.expect("section 0 calibrated tpcw/ordering");
    for (n, tps) in &cal.sweep {
        println!("  clients={n:<3} tps={tps:.2}");
    }
    println!(
        "  peak={:.2} tps; 85% point at {} clients (paper: peak 3 tps)",
        cal.peak_tps, cal.clients_at_85
    );

    // 2. Policy comparison on 16 replicas.
    let policies = [
        PolicySpec::LeastConnections,
        PolicySpec::Lard,
        PolicySpec::malb_sc(),
        PolicySpec::malb_sc_uf(),
    ];
    let paper = [37.0, 50.0, 76.0, 113.0];
    println!(
        "\n16-replica comparison (clients/replica = {}):",
        cal.clients_at_85
    );
    for (policy, paper_tps) in policies.iter().zip(paper) {
        let (config, workload, mix) = tpcw_config(*policy, 512, TpcwScale::Mid, "ordering");
        let config = config.with_clients(16 * cal.clients_at_85);
        let names = workload.clone();
        let workload = names.clone();
        let r = run(Experiment::new(config, workload, mix).with_window(warmup, measured))
            .expect("calibration experiments schedule an End event");
        let workload = names;
        println!(
            "  {:<18} tps={:>7.1} (paper {paper_tps:>5.1})  resp={:.2}s  read/txn={:.0}KB write/txn={:.0}KB aborts={:.1}% cpu={:.0}% disk={:.0}%",
            policy.label(),
            r.tps,
            r.mean_response_s,
            r.read_kb_per_txn,
            r.write_kb_per_txn,
            100.0 * r.abort_fraction(),
            100.0 * r.cpu_util,
            100.0 * r.disk_util,
        );
        println!(
            "      lb: moves={} merges={} splits={} fast={} fallback={} filters={}",
            r.lb.moves,
            r.lb.merges,
            r.lb.splits,
            r.lb.fast_reallocs,
            r.lb.fallback,
            r.lb.filters_installed
        );
        for g in &r.assignments {
            println!("      {:?} x{} load={:.2}", g.types, g.replicas, g.load);
        }
        // Slowest transaction types (diagnostics for calibration).
        let mut typed: Vec<(usize, (u64, f64, f64, u64))> =
            r.per_type.iter().copied().enumerate().collect();
        typed.sort_by(|a, b| b.1 .1.total_cmp(&a.1 .1));
        for (tid, (count, mean, max, aborts)) in typed.iter().take(4) {
            println!(
                "      slow: {:<12} n={count:<6} mean={mean:.2}s max={max:.1}s aborts={aborts}",
                workload.type_name(tashkent_engine::TxnTypeId(*tid as u32)),
            );
        }
    }
}
