//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every bench target (one per table/figure, `harness = false`) uses these
//! helpers to build the paper's configurations, run experiments, and print
//! paper-vs-measured rows. CSV copies land in `bench_results/`.

use std::fs;
use std::path::PathBuf;

pub use tashkent_cluster::ScenarioKnobs;
use tashkent_cluster::{run, ClusterConfig, DriverKind, Experiment, PolicySpec, RunResult};
use tashkent_sim::SimTime;
use tashkent_workloads::tpcw::TpcwScale;
use tashkent_workloads::{rubis, tpcw, Mix, Workload};

/// Measurement window used by the bench targets (seconds).
pub const WARMUP_SECS: u64 = 120;
/// Measured portion of each run (seconds).
pub const MEASURED_SECS: u64 = 180;

/// The simulated `(warmup, measured)` window, in seconds.
///
/// Controlled by `TASHKENT_BENCH_WINDOW`: `full` (120 s + 180 s, the default
/// for single-figure runs), `quick` (60 s + 120 s, used by the wide
/// parameter sweeps), or `smoke` (10 s + 20 s, the CI bench-smoke job that
/// only guards against bit-rot).
pub fn window() -> (u64, u64) {
    match std::env::var("TASHKENT_BENCH_WINDOW").as_deref() {
        Ok("full") => (WARMUP_SECS, MEASURED_SECS),
        Ok("quick") => (60, 120),
        Ok("smoke") => (10, 20),
        _ => (90, 150),
    }
}

/// The event-loop driver the bench targets run under.
///
/// Multi-config sweeps (the fig 8/9/10 grids) are embarrassingly long on
/// one core; the windowed [`tashkent_cluster::ParallelDriver`] produces
/// bit-identical results and uses the host's spare cores, so it is the
/// default whenever more than one core is available. Override with
/// `TASHKENT_BENCH_DRIVER=sequential|parallel`.
pub fn sweep_driver() -> DriverKind {
    match std::env::var("TASHKENT_BENCH_DRIVER").as_deref() {
        Ok("sequential") => DriverKind::Sequential,
        Ok("parallel") => DriverKind::parallel(),
        // A typo silently running the wrong driver would defeat the
        // documented way to force the reference driver — fail loudly.
        Ok(other) => {
            panic!("TASHKENT_BENCH_DRIVER must be `sequential` or `parallel`, got {other:?}")
        }
        Err(_) => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if cores >= 2 {
                DriverKind::parallel()
            } else {
                DriverKind::Sequential
            }
        }
    }
}

/// Clients per replica driving ~85 % of standalone peak, per workload
/// configuration — the paper's §4.4 client-sizing procedure applied to each
/// workload/mix we reproduce. Regenerate with
/// `cargo run --release -p tashkent-bench --bin calibrate`, which re-runs
/// the sweeps and prints this table for pasting; fixed here so every figure
/// uses the same calibrated load.
const CLIENTS_PER_REPLICA: &[(&str, &str, usize)] = &[
    ("tpcw", "ordering", 8),  // peak 12.56 tps standalone
    ("tpcw", "shopping", 14), // peak 15.04 tps standalone
    ("tpcw", "browsing", 8),  // peak 8.23 tps standalone
    ("rubis", "bidding", 6),  // peak 4.67 tps standalone
    ("rubis", "browsing", 6), // peak 7.10 tps standalone
];

/// Looks up the calibrated client count for a workload/mix pair.
///
/// # Panics
///
/// Panics on a pair missing from the table: a silent fallback would run a
/// figure at an uncalibrated load, which is exactly the bug the table
/// exists to prevent. Run the `calibrate` bin and add the entry instead.
pub fn clients_per_replica(workload: &str, mix: &str) -> usize {
    CLIENTS_PER_REPLICA
        .iter()
        .find(|(w, m, _)| *w == workload && *m == mix)
        .map(|(_, _, n)| *n)
        .unwrap_or_else(|| {
            panic!("no calibrated client count for {workload}/{mix}; run the calibrate bin")
        })
}

/// Paper-scale scenario knobs for a figure run: 16 replicas, the client
/// load calibrated for `workload`/`mix`, and the window from [`window`].
/// Figures hand these to a [`tashkent_cluster::Scenario`] from the shared
/// registry.
pub fn paper_knobs(policy: PolicySpec, ram_mb: u64, workload: &str, mix: &str) -> ScenarioKnobs {
    let (warmup, measured) = window();
    ScenarioKnobs {
        replicas: 16,
        clients_per_replica: clients_per_replica(workload, mix),
        ram_mb,
        warmup_secs: warmup,
        measured_secs: measured,
        driver: sweep_driver(),
        ..ScenarioKnobs::default()
    }
    .with_policy(policy)
}

/// Standalone (single-replica) variant of [`paper_knobs`] — the paper's
/// `Single` reference bar.
pub fn standalone_knobs(
    policy: PolicySpec,
    ram_mb: u64,
    workload: &str,
    mix: &str,
) -> ScenarioKnobs {
    ScenarioKnobs {
        replicas: 1,
        ..paper_knobs(policy, ram_mb, workload, mix)
    }
}

/// The paper's cluster for a TPC-W configuration.
pub fn tpcw_config(
    policy: PolicySpec,
    ram_mb: u64,
    scale: TpcwScale,
    mix: &str,
) -> (ClusterConfig, Workload, Mix) {
    let (workload, m) = tpcw::workload_with_mix(scale, mix);
    let clients = 16 * clients_per_replica("tpcw", mix);
    let config = ClusterConfig::paper_default()
        .with_ram_mb(ram_mb)
        .with_policy(policy)
        .with_clients(clients);
    (config, workload, m)
}

/// The paper's cluster for a RUBiS configuration.
pub fn rubis_config(policy: PolicySpec, ram_mb: u64, mix: &str) -> (ClusterConfig, Workload, Mix) {
    let (workload, m) = rubis::workload_with_mix(mix);
    let clients = 16 * clients_per_replica("rubis", mix);
    let config = ClusterConfig::paper_default()
        .with_ram_mb(ram_mb)
        .with_policy(policy)
        .with_clients(clients);
    (config, workload, m)
}

/// Runs one experiment to completion, bailing out with a readable message
/// on a mis-scheduled run (drained event queue) instead of a panic trace.
pub fn run_exp(exp: Experiment) -> RunResult {
    run(exp).unwrap_or_else(|e| {
        eprintln!("bench experiment failed: {e}");
        std::process::exit(1);
    })
}

/// Runs one experiment with the standard window.
pub fn run_standard(config: ClusterConfig, workload: Workload, mix: Mix) -> RunResult {
    run_exp(
        Experiment::new(config, workload, mix)
            .with_window(WARMUP_SECS, MEASURED_SECS)
            .with_driver(sweep_driver()),
    )
}

/// Runs a standalone (single-replica) experiment with the standard window.
pub fn run_standalone(mut config: ClusterConfig, workload: Workload, mix: Mix) -> RunResult {
    let per_replica = config.clients / config.replicas.max(1);
    config = config.standalone(per_replica.max(1));
    run_exp(Experiment::new(config, workload, mix).with_window(WARMUP_SECS, MEASURED_SECS))
}

/// A comparison row: label, the paper's value, and ours.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (policy or configuration).
    pub label: String,
    /// Value reported in the paper.
    pub paper: f64,
    /// Value measured here.
    pub measured: f64,
}

/// Prints a `paper vs measured` table and returns the CSV body.
pub fn print_table(title: &str, unit: &str, rows: &[Row]) -> String {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "config",
        format!("paper ({unit})"),
        "measured",
        "ratio"
    );
    let mut csv = String::from("config,paper,measured\n");
    for r in rows {
        let ratio = if r.paper != 0.0 {
            r.measured / r.paper
        } else {
            0.0
        };
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>7.2}x",
            r.label, r.paper, r.measured, ratio
        );
        csv.push_str(&format!("{},{},{}\n", r.label, r.paper, r.measured));
    }
    csv
}

/// Writes CSV results under `bench_results/`.
pub fn save_csv(name: &str, body: &str) {
    save_with_ext(name, "csv", body);
}

/// Writes a JSON report under `bench_results/` (machine-readable bench
/// output, e.g. `driver_bench.json`).
pub fn save_json(name: &str, body: &str) {
    save_with_ext(name, "json", body);
}

fn save_with_ext(name: &str, ext: &str, body: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.{ext}")), body);
    }
}

/// Appends one JSON object to a JSON-array file at the repository root —
/// the cross-PR perf trajectory (`BENCH_driver.json`). The file is a plain
/// JSON array; the new entry is spliced in before the closing bracket, so
/// each PR's bench run appends one element and the history accumulates. A
/// missing or malformed file starts a fresh array rather than failing the
/// bench.
pub fn append_repo_root_json(file: &str, entry: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    let fresh = format!("[\n{entry}\n]\n");
    let body = match fs::read_to_string(&path) {
        Ok(existing) => match existing.trim_end().strip_suffix(']') {
            // An empty array gets its first element; a populated one gets
            // a comma-separated append.
            Some(prefix) if prefix.trim_end().ends_with('[') => fresh,
            Some(prefix) => format!("{},\n{entry}\n]\n", prefix.trim_end()),
            None => fresh,
        },
        Err(_) => fresh,
    };
    let _ = fs::write(&path, body);
}

/// Pretty time for logs.
pub fn fmt_time(t: SimTime) -> String {
    format!("{:.0}s", t.as_secs_f64())
}
