//! Property-based invariants of `grouping::pack_groups` (§2.3).
//!
//! Across arbitrary working-set populations, capacities, and all three
//! estimation modes:
//!
//! * every transaction type lands in exactly one group;
//! * no group exceeds the memory budget unless it is a singleton oversized
//!   (overflow) type;
//! * overlap credit can only shrink a group's estimate relative to the sum
//!   of its members' sizes, and size-only packing takes the exact sum.

use proptest::prelude::*;
use tashkent_core::{pack_groups, EstimationMode, WorkingSet};
use tashkent_engine::TxnTypeId;
use tashkent_storage::RelationId;

const MODES: [EstimationMode; 3] = [
    EstimationMode::Size,
    EstimationMode::SizeContent,
    EstimationMode::SizeContentAccessPattern,
];

fn working_sets(max_types: u32) -> impl Strategy<Value = Vec<WorkingSet>> {
    proptest::collection::vec(
        proptest::collection::btree_map(0u32..16, 1u64..6_000, 1..6),
        1..max_types as usize,
    )
    .prop_map(|maps| {
        maps.into_iter()
            .enumerate()
            .map(|(i, m)| WorkingSet {
                txn_type: TxnTypeId(i as u32),
                // Mark roughly half the relations scanned so SCAP differs
                // from SC.
                scanned: m
                    .keys()
                    .filter(|r| *r % 2 == 0)
                    .map(|r| RelationId(*r))
                    .collect(),
                relations: m.into_iter().map(|(r, p)| (RelationId(r), p)).collect(),
            })
            .collect()
    })
}

proptest! {
    /// Every transaction type appears in exactly one group, in every mode.
    #[test]
    fn each_type_in_exactly_one_group(sets in working_sets(24), capacity in 500u64..25_000) {
        for mode in MODES {
            let groups = pack_groups(&sets, mode, capacity);
            let mut seen: Vec<u32> = groups
                .iter()
                .flat_map(|g| g.types.iter().map(|t| t.0))
                .collect();
            seen.sort_unstable();
            let expected: Vec<u32> = (0..sets.len() as u32).collect();
            prop_assert_eq!(seen, expected, "{:?}: type partition broken", mode);
        }
    }

    /// A group over the memory budget must be a singleton oversized type —
    /// flagged overflow, holding exactly one type whose own estimate exceeds
    /// capacity. Everything else fits.
    #[test]
    fn only_singleton_oversized_types_exceed_budget(sets in working_sets(24),
                                                    capacity in 500u64..25_000) {
        for mode in MODES {
            for g in pack_groups(&sets, mode, capacity) {
                if g.estimate_pages > capacity {
                    prop_assert!(g.overflow, "{:?}: oversized group not flagged", mode);
                    prop_assert_eq!(g.types.len(), 1, "{:?}: oversized group not singleton", mode);
                    let only = g.types[0];
                    prop_assert!(
                        sets[only.0 as usize].pages_for(mode) > capacity,
                        "{:?}: {:?} fits alone yet its group overflows",
                        mode,
                        only
                    );
                } else {
                    prop_assert!(!g.overflow, "{:?}: fitting group flagged overflow", mode);
                }
            }
        }
    }

    /// Content-aware estimates never exceed the arithmetic sum of member
    /// sizes (overlap can only shrink); size-only packing is the exact sum.
    #[test]
    fn estimates_bounded_by_member_sum(sets in working_sets(16), capacity in 500u64..25_000) {
        for mode in MODES {
            for g in pack_groups(&sets, mode, capacity) {
                let sum: u64 = g
                    .types
                    .iter()
                    .map(|t| sets[t.0 as usize].pages_for(mode))
                    .sum();
                prop_assert!(g.estimate_pages <= sum, "{:?}: overlap grew the estimate", mode);
                if mode == EstimationMode::Size {
                    prop_assert_eq!(g.estimate_pages, sum, "size-only must double count");
                }
            }
        }
    }

    /// Packing is deterministic: same inputs, same groups.
    #[test]
    fn packing_is_deterministic(sets in working_sets(16), capacity in 500u64..25_000) {
        for mode in MODES {
            prop_assert_eq!(
                pack_groups(&sets, mode, capacity),
                pack_groups(&sets, mode, capacity)
            );
        }
    }
}
