//! Memory-aware load balancing (MALB) and update filtering — the Tashkent+
//! contribution (Elnikety, Dropsho, Zwaenepoel, EuroSys 2007).
//!
//! A memory-aware load balancer dispatches transactions to replicas such
//! that their working sets fit together in main memory, avoiding the memory
//! contention that connection-counting balancers (and even locality-aware
//! ones like LARD) cannot prevent when frequent transactions have large
//! working sets.
//!
//! The pipeline, module by module:
//!
//! * [`estimator`] — estimate each transaction type's working set (size,
//!   contents, access pattern) from its `EXPLAIN` plan and the catalog's
//!   `relpages` metadata (§2.2);
//! * [`grouping`] — pack transaction types into groups whose combined
//!   working sets fit a replica's memory, using Best-Fit-Decreasing bin
//!   packing with optional overlap credit (MALB-S / MALB-SC / MALB-SCAP,
//!   §2.3);
//! * [`allocation`] — dynamically allocate replicas to groups from smoothed
//!   `MAX(cpu, disk)` loads, with future-load extrapolation, 1.25×
//!   hysteresis, fast re-allocation via balance equations, and merging of
//!   under-utilized groups (§2.4);
//! * [`filtering`] — once the partition is stable, compute per-replica table
//!   lists so each replica only receives writesets for tables it serves,
//!   subject to availability constraints (§3);
//! * [`balancer`] — the dispatchers: RoundRobin, LeastConnections, LARD
//!   (§4.3 baselines) and the composite MALB balancer.

pub mod allocation;
pub mod balancer;
pub mod estimator;
pub mod filtering;
pub mod grouping;
pub mod lard;
pub mod types;

pub use allocation::{AllocationConfig, Allocator, GroupLoads, Move};
pub use balancer::{
    DispatchStats, LoadBalancer, MalbConfig, Policy, PolicyKind, ReconfigAction, ResourceLoad,
};
pub use estimator::{
    combined_pages, combined_pages_many, EstimationMode, WorkingSet, WorkingSetEstimator,
};
pub use filtering::{filter_lists, FilterPlan};
pub use grouping::{pack_groups, GroupId, TxnGroup};
pub use lard::{Lard, LardConfig};
pub use types::ReplicaId;
