//! Working-set estimation from `EXPLAIN` plans and catalog metadata (§2.2).
//!
//! The working set of a database transaction is dominated by the tables and
//! indices it references. The estimator therefore:
//!
//! 1. obtains the transaction type's `EXPLAIN` plan (which relations, and
//!    whether each is scanned linearly or probed randomly),
//! 2. resolves each relation's size in pages from the catalog (`relpages`),
//! 3. produces a [`WorkingSet`]: the referenced relation set, the scanned
//!    subset, and page totals.
//!
//! Three estimation modes correspond to the paper's three grouping methods:
//! size only (MALB-S), size + contents (MALB-SC), and size + contents +
//! access pattern (MALB-SCAP, which keeps only linearly-scanned relations as
//! a lower-bound estimate).

use std::collections::{BTreeMap, BTreeSet};

use tashkent_engine::{ExplainPlan, TxnTypeId};
use tashkent_storage::{Catalog, RelationId, PAGE_SIZE};

/// How much plan information the estimator uses (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMode {
    /// MALB-S: working-set *size* only; overlap between types is ignored
    /// when combining.
    Size,
    /// MALB-SC: size plus *contents* — shared relations are not double
    /// counted when types are grouped.
    SizeContent,
    /// MALB-SCAP: size, contents, and *access pattern* — only linearly
    /// scanned relations count, a lower-bound estimate.
    SizeContentAccessPattern,
}

/// The estimated working set of one transaction type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingSet {
    /// The transaction type.
    pub txn_type: TxnTypeId,
    /// Every referenced relation and its size in pages.
    pub relations: BTreeMap<RelationId, u64>,
    /// The subset reported as linearly scanned.
    pub scanned: BTreeSet<RelationId>,
}

impl WorkingSet {
    /// Upper-bound size in pages: all referenced relations (MALB-S/SC view).
    pub fn size_pages(&self) -> u64 {
        self.relations.values().sum()
    }

    /// Lower-bound size in pages: scanned relations only (MALB-SCAP view).
    pub fn scanned_pages(&self) -> u64 {
        self.scanned
            .iter()
            .map(|r| self.relations.get(r).copied().unwrap_or(0))
            .sum()
    }

    /// Size in pages under a given estimation mode.
    pub fn pages_for(&self, mode: EstimationMode) -> u64 {
        match mode {
            EstimationMode::Size | EstimationMode::SizeContent => self.size_pages(),
            EstimationMode::SizeContentAccessPattern => self.scanned_pages(),
        }
    }

    /// Relation set relevant under a given estimation mode.
    pub fn relations_for(&self, mode: EstimationMode) -> BTreeMap<RelationId, u64> {
        match mode {
            EstimationMode::Size | EstimationMode::SizeContent => self.relations.clone(),
            EstimationMode::SizeContentAccessPattern => self
                .relations
                .iter()
                .filter(|(r, _)| self.scanned.contains(r))
                .map(|(r, p)| (*r, *p))
                .collect(),
        }
    }

    /// Upper-bound size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_pages() * PAGE_SIZE
    }
}

/// Produces [`WorkingSet`]s from `EXPLAIN` plans and the catalog.
///
/// # Examples
///
/// ```
/// use tashkent_core::WorkingSetEstimator;
/// use tashkent_engine::{Access, ExplainPlan, PlanStep, TxnPlan, TxnTypeId};
/// use tashkent_storage::Catalog;
///
/// let mut catalog = Catalog::new();
/// let item = catalog.add_table("item", 1_250, 10_000);
/// let plan = TxnPlan::new(vec![PlanStep::Read { rel: item, access: Access::SeqScan }]);
/// let explain = ExplainPlan::from_plan(&plan, &catalog);
///
/// let est = WorkingSetEstimator::new(&catalog);
/// let ws = est.estimate(TxnTypeId(0), &explain);
/// assert_eq!(ws.size_pages(), 1_250);
/// assert_eq!(ws.scanned_pages(), 1_250);
/// ```
pub struct WorkingSetEstimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> WorkingSetEstimator<'a> {
    /// Creates an estimator reading sizes from `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        WorkingSetEstimator { catalog }
    }

    /// Estimates the working set of one transaction type from its plan.
    ///
    /// Relations named in the plan but missing from the catalog are skipped
    /// (a dropped table still mentioned by a stale plan).
    pub fn estimate(&self, txn_type: TxnTypeId, explain: &ExplainPlan) -> WorkingSet {
        let mut relations = BTreeMap::new();
        let mut scanned = BTreeSet::new();
        for name in explain.referenced() {
            if let Some(rel) = self.catalog.by_name(name) {
                relations.insert(rel.id, rel.pages as u64);
            }
        }
        for name in explain.scanned() {
            if let Some(rel) = self.catalog.by_name(name) {
                scanned.insert(rel.id);
            }
        }
        WorkingSet {
            txn_type,
            relations,
            scanned,
        }
    }
}

/// Combined size in pages of two working sets when grouped, per mode:
/// MALB-S sums sizes (double counting shared relations); MALB-SC and
/// MALB-SCAP take the union.
///
/// This reproduces the paper's example: T1 uses tables A and B, T2 uses B
/// and C — MALB-S estimates |A| + 2|B| + |C|, MALB-SC estimates
/// |A| + |B| + |C|.
pub fn combined_pages(a: &WorkingSet, b: &WorkingSet, mode: EstimationMode) -> u64 {
    match mode {
        EstimationMode::Size => a.size_pages() + b.size_pages(),
        EstimationMode::SizeContent | EstimationMode::SizeContentAccessPattern => {
            let mut union = a.relations_for(mode);
            for (r, p) in b.relations_for(mode) {
                union.insert(r, p);
            }
            union.values().sum()
        }
    }
}

/// Combined size in pages of several working sets when grouped, per mode
/// (the n-ary generalization of [`combined_pages`]).
pub fn combined_pages_many(sets: &[WorkingSet], mode: EstimationMode) -> u64 {
    match mode {
        EstimationMode::Size => sets.iter().map(|w| w.size_pages()).sum(),
        EstimationMode::SizeContent | EstimationMode::SizeContentAccessPattern => {
            let mut union = std::collections::BTreeMap::new();
            for ws in sets {
                for (r, p) in ws.relations_for(mode) {
                    union.insert(r, p);
                }
            }
            union.values().sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_engine::{Access, PlanStep, TxnPlan, WriteKind, WriteSpec};

    fn setup() -> (Catalog, TxnPlan, TxnPlan) {
        let mut c = Catalog::new();
        let a = c.add_table("a", 100, 10_000);
        let b = c.add_table("b", 200, 20_000);
        let cc = c.add_table("c", 50, 5_000);
        c.add_index("b_pk", b, 20, 20_000);
        // T1: scans a, scans b.
        let t1 = TxnPlan::new(vec![
            PlanStep::Read {
                rel: a,
                access: Access::SeqScan,
            },
            PlanStep::Read {
                rel: b,
                access: Access::SeqScan,
            },
        ]);
        // T2: scans c, probes b through its index.
        let bpk = c.by_name("b_pk").unwrap().id;
        let t2 = TxnPlan::new(vec![
            PlanStep::Read {
                rel: cc,
                access: Access::SeqScan,
            },
            PlanStep::Read {
                rel: bpk,
                access: Access::IndexLookup {
                    lookups: 3,
                    theta: 0.0,
                },
            },
        ]);
        (c, t1, t2)
    }

    fn estimate(c: &Catalog, plan: &TxnPlan, id: u32) -> WorkingSet {
        let explain = ExplainPlan::from_plan(plan, c);
        WorkingSetEstimator::new(c).estimate(TxnTypeId(id), &explain)
    }

    #[test]
    fn size_is_sum_of_referenced_relations() {
        let (c, t1, _) = setup();
        let ws = estimate(&c, &t1, 0);
        assert_eq!(ws.size_pages(), 300);
        assert_eq!(ws.size_bytes(), 300 * PAGE_SIZE);
    }

    #[test]
    fn index_probe_includes_index_and_heap() {
        let (c, _, t2) = setup();
        let ws = estimate(&c, &t2, 1);
        // c (50) + b_pk (20) + heap b (200) = 270.
        assert_eq!(ws.size_pages(), 270);
    }

    #[test]
    fn scanned_subset_excludes_probed_relations() {
        let (c, _, t2) = setup();
        let ws = estimate(&c, &t2, 1);
        // Only `c` is linearly scanned; b/b_pk are random.
        assert_eq!(ws.scanned_pages(), 50);
        assert_eq!(ws.pages_for(EstimationMode::SizeContentAccessPattern), 50);
        assert_eq!(ws.pages_for(EstimationMode::SizeContent), 270);
    }

    #[test]
    fn combined_sizes_match_paper_example() {
        // Paper §2.3: T1 uses A and B; T2 uses B and C.
        let mut c = Catalog::new();
        let a = c.add_table("A", 100, 1);
        let b = c.add_table("B", 200, 1);
        let cc = c.add_table("C", 50, 1);
        let t1 = TxnPlan::new(vec![
            PlanStep::Read {
                rel: a,
                access: Access::SeqScan,
            },
            PlanStep::Read {
                rel: b,
                access: Access::SeqScan,
            },
        ]);
        let t2 = TxnPlan::new(vec![
            PlanStep::Read {
                rel: b,
                access: Access::SeqScan,
            },
            PlanStep::Read {
                rel: cc,
                access: Access::SeqScan,
            },
        ]);
        let w1 = estimate(&c, &t1, 0);
        let w2 = estimate(&c, &t2, 1);
        // MALB-S double counts B: |A| + 2|B| + |C| = 550.
        assert_eq!(combined_pages(&w1, &w2, EstimationMode::Size), 550);
        // MALB-SC avoids recounting: |A| + |B| + |C| = 350.
        assert_eq!(combined_pages(&w1, &w2, EstimationMode::SizeContent), 350);
    }

    #[test]
    fn writes_contribute_written_tables_and_indices() {
        let mut c = Catalog::new();
        let orders = c.add_table("orders", 140, 10_000);
        c.add_index("orders_pk", orders, 20, 10_000);
        let plan = TxnPlan::new(vec![PlanStep::Write(WriteSpec {
            rel: orders,
            rows: 1,
            kind: WriteKind::Insert,
            theta: 0.0,
        })]);
        let ws = estimate(&c, &plan, 0);
        assert_eq!(ws.size_pages(), 160);
        assert_eq!(ws.scanned_pages(), 0, "writes are random access");
    }

    #[test]
    fn missing_relations_are_skipped() {
        let (c, t1, _) = setup();
        let mut explain = ExplainPlan::from_plan(&t1, &c);
        explain.steps.push(tashkent_engine::ExplainStep {
            relation: "ghost".to_string(),
            access: tashkent_engine::ExplainAccess::SeqScan,
        });
        let ws = WorkingSetEstimator::new(&c).estimate(TxnTypeId(0), &explain);
        assert_eq!(ws.size_pages(), 300);
    }

    #[test]
    fn relations_for_scap_filters_to_scanned() {
        let (c, _, t2) = setup();
        let ws = estimate(&c, &t2, 1);
        let scap = ws.relations_for(EstimationMode::SizeContentAccessPattern);
        assert_eq!(scap.len(), 1);
        let sc = ws.relations_for(EstimationMode::SizeContent);
        assert_eq!(sc.len(), 3);
    }
}
