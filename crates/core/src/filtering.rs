//! Update-filtering control: per-replica table lists (§3).
//!
//! Once MALB's partition of transaction types over replicas is stable, each
//! replica only needs the tables its assigned types reference; updates to
//! every other table can be filtered before they reach the replica. The
//! load balancer computes the per-replica table lists here, subject to two
//! availability constraints:
//!
//! 1. **Transaction-type availability** — every transaction type must be
//!    runnable on a minimum number of replicas, even if its group currently
//!    holds fewer for performance reasons; extra replicas are kept up to
//!    date as standbys.
//! 2. **Table availability** — enough copies of every table must stay
//!    current; this follows automatically from (1) since every table in the
//!    schema is referenced by some transaction type's working set.

use std::collections::BTreeSet;

use tashkent_storage::RelationId;

use crate::estimator::WorkingSet;
use crate::grouping::TxnGroup;
use crate::types::ReplicaId;

/// The computed filter assignment for one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterPlan {
    /// The replica.
    pub replica: ReplicaId,
    /// Tables the replica keeps up to date. `None` means "all tables"
    /// (filtering disabled for this replica).
    pub tables: Option<BTreeSet<RelationId>>,
}

/// Computes per-replica filter lists from a group → replicas assignment.
///
/// * `groups` — the transaction groups (their members' working sets define
///   the tables each group needs, always from the full referenced set, not
///   the SCAP lower bound: a replica must keep *everything its transactions
///   read* up to date);
/// * `working_sets` — working set per transaction type (indexed by type);
/// * `assignment` — replicas serving each group, parallel to `groups`;
/// * `min_copies` — minimum replicas that must stay current for every
///   group's table set (transaction-type availability).
///
/// Standby copies: when a group is served by fewer than `min_copies`
/// replicas, the group's tables are added to the filter lists of the
/// replicas with the largest existing overlap (cheapest standbys first).
///
/// # Panics
///
/// Panics if `assignment` and `groups` lengths differ, or if `min_copies`
/// exceeds the number of replicas.
pub fn filter_lists(
    groups: &[TxnGroup],
    working_sets: &[WorkingSet],
    assignment: &[Vec<ReplicaId>],
    all_replicas: &[ReplicaId],
    min_copies: usize,
) -> Vec<FilterPlan> {
    assert_eq!(
        groups.len(),
        assignment.len(),
        "one replica list per group required"
    );
    assert!(
        min_copies <= all_replicas.len(),
        "cannot keep {min_copies} copies on {} replicas",
        all_replicas.len()
    );

    // Tables needed by each group: union of members' *referenced* relations.
    let group_tables: Vec<BTreeSet<RelationId>> = groups
        .iter()
        .map(|g| {
            let mut set = BTreeSet::new();
            for t in &g.types {
                let ws = working_sets
                    .iter()
                    .find(|w| w.txn_type == *t)
                    .unwrap_or_else(|| panic!("missing working set for {t}"));
                set.extend(ws.relations.keys().copied());
            }
            set
        })
        .collect();

    let mut tables_of: Vec<BTreeSet<RelationId>> = vec![BTreeSet::new(); all_replicas.len()];
    let index_of = |r: ReplicaId| {
        all_replicas
            .iter()
            .position(|x| *x == r)
            .unwrap_or_else(|| panic!("{r} not in replica list"))
    };

    for (g, replicas) in group_tables.iter().zip(assignment) {
        for r in replicas {
            tables_of[index_of(*r)].extend(g.iter().copied());
        }
    }

    // Availability: give each group standbys until it has min_copies hosts.
    for (g, replicas) in group_tables.iter().zip(assignment) {
        let mut hosts: BTreeSet<usize> = replicas.iter().map(|r| index_of(*r)).collect();
        while hosts.len() < min_copies {
            // Cheapest standby: the non-host whose current list overlaps the
            // group's tables the most (fewest new tables to keep current);
            // ties to the lowest replica id.
            let candidate = (0..all_replicas.len())
                .filter(|i| !hosts.contains(i))
                .min_by_key(|i| {
                    let added = g.difference(&tables_of[*i]).count();
                    (added, *i)
                })
                .expect("min_copies bounded by replica count");
            tables_of[candidate].extend(g.iter().copied());
            hosts.insert(candidate);
        }
    }

    all_replicas
        .iter()
        .zip(tables_of)
        .map(|(r, tables)| FilterPlan {
            replica: *r,
            tables: Some(tables),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tashkent_engine::TxnTypeId;

    fn ws(id: u32, rels: &[u32]) -> WorkingSet {
        WorkingSet {
            txn_type: TxnTypeId(id),
            relations: rels
                .iter()
                .map(|r| (RelationId(*r), 10u64))
                .collect::<BTreeMap<_, _>>(),
            scanned: BTreeSet::new(),
        }
    }

    fn group(types: &[u32]) -> TxnGroup {
        TxnGroup {
            types: types.iter().map(|t| TxnTypeId(*t)).collect(),
            relations: BTreeMap::new(),
            estimate_pages: 0,
            overflow: false,
        }
    }

    fn rids(n: usize) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId).collect()
    }

    fn tables(plan: &FilterPlan) -> Vec<u32> {
        plan.tables.as_ref().unwrap().iter().map(|r| r.0).collect()
    }

    #[test]
    fn replicas_get_their_groups_tables() {
        let groups = [group(&[0]), group(&[1])];
        let sets = [ws(0, &[0, 1]), ws(1, &[2])];
        let assignment = vec![vec![ReplicaId(0)], vec![ReplicaId(1)]];
        let plans = filter_lists(&groups, &sets, &assignment, &rids(2), 1);
        assert_eq!(tables(&plans[0]), vec![0, 1]);
        assert_eq!(tables(&plans[1]), vec![2]);
    }

    #[test]
    fn shared_replica_unions_groups() {
        let groups = [group(&[0]), group(&[1])];
        let sets = [ws(0, &[0]), ws(1, &[1])];
        // Both groups on replica 0 (a merged pair).
        let assignment = vec![vec![ReplicaId(0)], vec![ReplicaId(0)]];
        let plans = filter_lists(&groups, &sets, &assignment, &rids(2), 1);
        assert_eq!(tables(&plans[0]), vec![0, 1]);
        assert!(tables(&plans[1]).is_empty());
    }

    #[test]
    fn min_copies_adds_standbys() {
        let groups = [group(&[0])];
        let sets = [ws(0, &[0, 1])];
        let assignment = vec![vec![ReplicaId(0)]];
        let plans = filter_lists(&groups, &sets, &assignment, &rids(3), 2);
        // One standby gained the tables.
        let hosting = plans.iter().filter(|p| !tables(p).is_empty()).count();
        assert_eq!(hosting, 2);
    }

    #[test]
    fn standby_choice_prefers_overlap() {
        let groups = [group(&[0]), group(&[1])];
        let sets = [ws(0, &[0, 1, 2]), ws(1, &[0, 1])];
        // Group 0 on replicas {0}; group 1 on replica 2. Replica 2 already
        // holds tables {0,1} → it is the cheapest standby for group 0
        // (adds only table 2), beating empty replica 1.
        let assignment = vec![vec![ReplicaId(0)], vec![ReplicaId(2)]];
        let plans = filter_lists(&groups, &sets, &assignment, &rids(3), 2);
        assert_eq!(tables(&plans[2]), vec![0, 1, 2]);
        // Replica 1 hosts group 1's standby copy ({0,1}): group 1 needed a
        // second host too, and replica 0 (holding {0,1,2}) adds nothing —
        // so replica 0 wins as group 1's standby, leaving replica 1 empty.
        assert!(tables(&plans[1]).is_empty());
    }

    #[test]
    fn multi_type_groups_union_member_tables() {
        let groups = [group(&[0, 1])];
        let sets = [ws(0, &[0]), ws(1, &[5])];
        let assignment = vec![vec![ReplicaId(0)]];
        let plans = filter_lists(&groups, &sets, &assignment, &rids(1), 1);
        assert_eq!(tables(&plans[0]), vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "cannot keep")]
    fn min_copies_bounded_by_cluster() {
        let groups = [group(&[0])];
        let sets = [ws(0, &[0])];
        filter_lists(&groups, &sets, &[vec![ReplicaId(0)]], &rids(1), 2);
    }

    #[test]
    #[should_panic(expected = "missing working set")]
    fn unknown_type_panics() {
        let groups = [group(&[9])];
        let sets = [ws(0, &[0])];
        filter_lists(&groups, &sets, &[vec![ReplicaId(0)]], &rids(1), 1);
    }
}
