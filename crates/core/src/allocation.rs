//! Dynamic replica allocation (§2.4).
//!
//! The load balancer summarizes each group's load as the mean over its
//! replicas of `MAX(cpu, disk)` (the bottleneck resource), then:
//!
//! * moves one replica from the least *future-loaded* group to the most
//!   loaded group — the future load of a group is what its average load
//!   would become if one replica were removed (`load × n / (n − 1)`), which
//!   naturally protects small groups;
//! * applies hysteresis: a move requires the most loaded group to be at
//!   least 1.25× the donor's future load;
//! * on drastic workload change, solves the balance equations on total
//!   resource needs (`utilization × replicas`) and re-allocates wholesale;
//! * merges groups that each under-utilize a single replica, and splits a
//!   merged group first if it becomes the most loaded (§2.4 "Merging Low
//!   Utilization Transaction Groups").

use crate::grouping::GroupId;
use crate::types::ReplicaId;

/// Per-group load summary fed to allocation decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupLoads {
    /// The group.
    pub group: GroupId,
    /// Mean bottleneck utilization over the group's replicas, in `[0, 1]`.
    pub load: f64,
    /// Replicas currently allocated.
    pub replicas: usize,
}

impl GroupLoads {
    /// Projected mean load if one replica were removed: `load × n/(n−1)`.
    ///
    /// Groups with a single replica report infinite future load — they can
    /// never donate their last replica.
    pub fn future_load(&self) -> f64 {
        if self.replicas <= 1 {
            f64::INFINITY
        } else {
            self.load * self.replicas as f64 / (self.replicas as f64 - 1.0)
        }
    }

    /// Total resource need: `utilization × replicas` (balance-equation
    /// input).
    pub fn total_need(&self) -> f64 {
        self.load * self.replicas as f64
    }
}

/// One replica move decided by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Donor group.
    pub from: GroupId,
    /// Receiving group.
    pub to: GroupId,
}

/// Allocation tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct AllocationConfig {
    /// Required ratio of receiver load to donor future load (paper: 1.25).
    pub hysteresis: f64,
    /// Mean load below which a single-replica group counts as substantially
    /// under-utilized and may be merged with another such group.
    pub merge_threshold: f64,
    /// Imbalance ratio (max future need per replica / min) that triggers
    /// wholesale re-allocation by balance equations.
    pub fast_realloc_ratio: f64,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        AllocationConfig {
            hysteresis: 1.25,
            merge_threshold: 0.30,
            fast_realloc_ratio: 3.0,
        }
    }
}

/// Pure allocation decision procedures.
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    config: AllocationConfig,
}

impl Allocator {
    /// Creates an allocator with the given knobs.
    pub fn new(config: AllocationConfig) -> Self {
        Allocator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> AllocationConfig {
        self.config
    }

    /// Decides at most one replica move given current group loads.
    ///
    /// The receiver is the most loaded group; the donor is the group with
    /// the lowest *future* load. The move happens when `receiver.load ≥
    /// hysteresis × donor.future_load()` — or, bypassing hysteresis, when
    /// the receiver is *saturated* (≥ 0.98) and the donor would stay below
    /// the receiver's load: hysteresis exists to damp measurement noise,
    /// and a pegged group is not noise.
    pub fn decide_move(&self, loads: &[GroupLoads]) -> Option<Move> {
        if loads.len() < 2 {
            return None;
        }
        let receiver = loads
            .iter()
            .max_by(|a, b| a.load.total_cmp(&b.load).then(b.group.cmp(&a.group)))?;
        let donor = loads
            .iter()
            .filter(|g| g.group != receiver.group)
            .min_by(|a, b| {
                a.future_load()
                    .total_cmp(&b.future_load())
                    .then(a.group.cmp(&b.group))
            })?;
        if donor.replicas <= 1 {
            return None;
        }
        let hysteresis_ok = receiver.load >= self.config.hysteresis * donor.future_load();
        let saturated_ok = receiver.load >= 0.98 && donor.future_load() < receiver.load;
        if hysteresis_ok || saturated_ok {
            Some(Move {
                from: donor.group,
                to: receiver.group,
            })
        } else {
            None
        }
    }

    /// Whether the imbalance is drastic enough for wholesale re-allocation.
    pub fn needs_fast_realloc(&self, loads: &[GroupLoads]) -> bool {
        if loads.len() < 2 {
            return false;
        }
        // Compare per-replica need if each group kept its allocation.
        let mut max_need = f64::MIN;
        let mut min_need = f64::MAX;
        for g in loads {
            let per_replica = g.total_need() / g.replicas.max(1) as f64;
            max_need = max_need.max(per_replica);
            min_need = min_need.min(per_replica);
        }
        min_need > 0.0 && max_need / min_need >= self.config.fast_realloc_ratio
    }

    /// Solves the balance equations: allocate `total` replicas to groups in
    /// proportion to their total resource needs (§2.4 "Fast Re-allocation").
    ///
    /// Rounding is conservative — every group keeps at least one replica,
    /// fractions round down, and leftover replicas go to the groups with the
    /// largest fractional parts (ties favour the *less* needy group, matching
    /// the paper's worked example where (7.5, 2.5) rounds to (7, 3)).
    ///
    /// # Panics
    ///
    /// Panics if `total` is smaller than the number of groups.
    pub fn solve_balance(&self, loads: &[GroupLoads], total: usize) -> Vec<(GroupId, usize)> {
        assert!(
            total >= loads.len(),
            "cannot allocate {total} replicas to {} groups",
            loads.len()
        );
        if loads.is_empty() {
            return Vec::new();
        }
        let needs: Vec<f64> = loads.iter().map(|g| g.total_need().max(1e-9)).collect();
        let sum: f64 = needs.iter().sum();
        // Ideal shares, floored with a minimum of one replica each.
        let mut alloc: Vec<usize> = Vec::with_capacity(loads.len());
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(loads.len());
        for (i, need) in needs.iter().enumerate() {
            let ideal = total as f64 * need / sum;
            let floor = (ideal.floor() as usize).max(1);
            alloc.push(floor);
            fracs.push((i, ideal - ideal.floor()));
        }
        let mut used: usize = alloc.iter().sum();
        // Distribute any remaining replicas by largest fractional part;
        // ties favour the smaller total need (conservative rounding).
        fracs.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(needs[a.0].total_cmp(&needs[b.0]))
                .then(a.0.cmp(&b.0))
        });
        let mut k = 0;
        while used < total {
            alloc[fracs[k % fracs.len()].0] += 1;
            used += 1;
            k += 1;
        }
        // If minimums pushed us over, reclaim from the largest allocations.
        while used > total {
            let (idx, _) = alloc
                .iter()
                .enumerate()
                .filter(|(_, a)| **a > 1)
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .expect("some group must hold more than one replica");
            alloc[idx] -= 1;
            used -= 1;
        }
        loads.iter().zip(alloc).map(|(g, n)| (g.group, n)).collect()
    }

    /// Finds a pair of single-replica groups that both substantially
    /// under-utilize their replicas and should share one (§2.4): returns the
    /// two least-loaded qualifying groups.
    pub fn decide_merge(&self, loads: &[GroupLoads]) -> Option<(GroupId, GroupId)> {
        let c = self.merge_candidates(loads);
        if c.len() < 2 {
            None
        } else {
            Some((c[0], c[1]))
        }
    }

    /// All merge candidates (single-replica groups under the threshold),
    /// least loaded first. The caller picks the first *pair whose combined
    /// working set fits a replica* — sharing a replica between groups whose
    /// union exceeds memory would create exactly the contention MALB exists
    /// to avoid.
    pub fn merge_candidates(&self, loads: &[GroupLoads]) -> Vec<GroupId> {
        let mut candidates: Vec<&GroupLoads> = loads
            .iter()
            .filter(|g| g.replicas == 1 && g.load < self.config.merge_threshold)
            .collect();
        candidates.sort_by(|a, b| a.load.total_cmp(&b.load).then(a.group.cmp(&b.group)));
        candidates.iter().map(|g| g.group).collect()
    }

    /// Whether a previously merged group should be split instead of being
    /// given another replica (§2.4: "instead of allocating another replica,
    /// the two transaction groups are split"): true when the merged group is
    /// among the most loaded — within 5 % of the maximum (the sharing is the
    /// contention source either way) — and its load is well past the
    /// merge threshold.
    pub fn should_split(&self, merged: GroupId, loads: &[GroupLoads]) -> bool {
        let Some(merged_load) = loads.iter().find(|g| g.group == merged).map(|g| g.load) else {
            return false;
        };
        let max_load = loads.iter().map(|g| g.load).fold(0.0, f64::max);
        merged_load >= self.config.merge_threshold * 2.0 && merged_load >= max_load - 0.05
    }
}

/// Assigns concrete replicas to groups from a target allocation, minimizing
/// movement relative to the current assignment.
///
/// `current` maps each replica to its group (or `None` if unassigned).
/// Returns the new mapping. Replicas stay with their group when possible;
/// surplus replicas of shrinking groups move to growing groups in id order.
pub fn assign_replicas(
    current: &[(ReplicaId, Option<GroupId>)],
    target: &[(GroupId, usize)],
) -> Vec<(ReplicaId, GroupId)> {
    let mut remaining: Vec<(GroupId, usize)> = target.to_vec();
    let mut out: Vec<(ReplicaId, GroupId)> = Vec::with_capacity(current.len());
    let mut unplaced: Vec<ReplicaId> = Vec::new();
    // First pass: keep replicas where their group still wants them.
    for (rid, g) in current {
        match g.and_then(|g| remaining.iter_mut().find(|(tg, n)| *tg == g && *n > 0)) {
            Some(slot) => {
                slot.1 -= 1;
                out.push((*rid, slot.0));
            }
            None => unplaced.push(*rid),
        }
    }
    // Second pass: fill remaining slots in group order.
    unplaced.sort_unstable();
    let mut iter = unplaced.into_iter();
    for (g, n) in remaining {
        for _ in 0..n {
            if let Some(rid) = iter.next() {
                out.push((rid, g));
            }
        }
    }
    out.sort_by_key(|(rid, _)| *rid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gl(id: usize, load: f64, replicas: usize) -> GroupLoads {
        GroupLoads {
            group: GroupId(id),
            load,
            replicas,
        }
    }

    #[test]
    fn future_load_matches_paper_example() {
        // §2.4: three replicas averaging 46 → removing one projects 69.
        let g = gl(0, 0.46, 3);
        assert!((g.future_load() - 0.69).abs() < 1e-9);
    }

    #[test]
    fn future_load_protects_small_groups() {
        // §2.4: two replicas at 20 project 40; six at 25 project 30 — the
        // six-replica group donates despite its higher current load.
        let small = gl(0, 0.20, 2);
        let big = gl(1, 0.25, 6);
        assert!(small.future_load() > big.future_load());
        let a = Allocator::default();
        let receiver = gl(2, 0.90, 3);
        let mv = a.decide_move(&[small, big, receiver]).unwrap();
        assert_eq!(mv.from, GroupId(1));
        assert_eq!(mv.to, GroupId(2));
    }

    #[test]
    fn single_replica_group_never_donates() {
        let a = Allocator::default();
        let loads = [gl(0, 0.01, 1), gl(1, 0.99, 1)];
        assert_eq!(a.decide_move(&loads), None);
    }

    #[test]
    fn hysteresis_blocks_marginal_moves() {
        let a = Allocator::default();
        // Donor future load = 0.4 × 4/3 ≈ 0.533; receiver at 0.6 < 1.25×0.533.
        let loads = [gl(0, 0.40, 4), gl(1, 0.60, 2)];
        assert_eq!(a.decide_move(&loads), None);
        // Receiver at 0.70 ≥ 1.25 × 0.533 ≈ 0.667 → move.
        let loads = [gl(0, 0.40, 4), gl(1, 0.70, 2)];
        assert_eq!(
            a.decide_move(&loads),
            Some(Move {
                from: GroupId(0),
                to: GroupId(1)
            })
        );
    }

    #[test]
    fn balance_equations_match_paper_example() {
        // §2.4: M = 3 replicas at 70%, N = 7 replicas at 10%, 10 total →
        // ideal m = 7.5, n = 2.5 → conservatively 7 and 3.
        let a = Allocator::default();
        let result = a.solve_balance(&[gl(0, 0.70, 3), gl(1, 0.10, 7)], 10);
        assert_eq!(result, vec![(GroupId(0), 7), (GroupId(1), 3)]);
    }

    #[test]
    fn balance_preserves_total_and_minimums() {
        let a = Allocator::default();
        let loads = [gl(0, 0.9, 2), gl(1, 0.001, 5), gl(2, 0.5, 3), gl(3, 0.0, 6)];
        let result = a.solve_balance(&loads, 16);
        let total: usize = result.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 16);
        assert!(result.iter().all(|(_, n)| *n >= 1));
        // The heaviest group's allocation matches the maximum.
        let max_alloc = result.iter().map(|(_, n)| *n).max().unwrap();
        let g0 = result.iter().find(|(g, _)| *g == GroupId(0)).unwrap();
        assert_eq!(g0.1, max_alloc);
    }

    #[test]
    #[should_panic(expected = "cannot allocate")]
    fn balance_rejects_too_few_replicas() {
        Allocator::default().solve_balance(&[gl(0, 0.5, 1), gl(1, 0.5, 1)], 1);
    }

    #[test]
    fn fast_realloc_triggers_on_drastic_imbalance() {
        let a = Allocator::default();
        assert!(a.needs_fast_realloc(&[gl(0, 0.70, 3), gl(1, 0.10, 7)]));
        assert!(!a.needs_fast_realloc(&[gl(0, 0.50, 5), gl(1, 0.45, 5)]));
        assert!(!a.needs_fast_realloc(&[gl(0, 0.5, 5)]));
    }

    #[test]
    fn merge_picks_two_least_loaded_singletons() {
        let a = Allocator::default();
        let loads = [
            gl(0, 0.05, 1),
            gl(1, 0.50, 1),
            gl(2, 0.10, 1),
            gl(3, 0.02, 2), // not a singleton
        ];
        assert_eq!(a.decide_merge(&loads), Some((GroupId(0), GroupId(2))));
    }

    #[test]
    fn no_merge_without_two_candidates() {
        let a = Allocator::default();
        assert_eq!(a.decide_merge(&[gl(0, 0.05, 1), gl(1, 0.50, 1)]), None);
        assert_eq!(a.decide_merge(&[]), None);
    }

    #[test]
    fn split_when_merged_group_is_hottest() {
        let a = Allocator::default();
        let loads = [gl(0, 0.80, 1), gl(1, 0.40, 3)];
        assert!(a.should_split(GroupId(0), &loads));
        assert!(!a.should_split(GroupId(1), &loads));
        // A merged group that is cool stays merged even if nothing is hotter.
        let cool = [gl(0, 0.10, 1), gl(1, 0.05, 3)];
        assert!(!a.should_split(GroupId(0), &cool));
    }

    #[test]
    fn repro_stuck_allocation() {
        // End-state observed in calibration: light group saturated on 4
        // replicas while BestSeller/AdminRespo idle on 2 each.
        let a = Allocator::default();
        let loads = [
            gl(0, 0.84, 3), // BuyConfirm
            gl(1, 0.62, 2), // OrderDispl
            gl(2, 0.13, 2), // BestSeller
            gl(3, 0.12, 2), // AdminRespo
            gl(4, 0.99, 4), // light
            gl(5, 0.39, 3), // ShopinCart
        ];
        assert!(
            a.needs_fast_realloc(&loads),
            "ratio 8x must trigger fast realloc"
        );
        let target = a.solve_balance(&loads, 16);
        let light = target.iter().find(|(g, _)| *g == GroupId(4)).unwrap();
        assert!(light.1 >= 6, "light group should get >=6, got {}", light.1);
        let mv = a.decide_move(&loads).unwrap();
        assert_eq!(mv.to, GroupId(4));
    }

    #[test]
    fn assign_replicas_minimizes_movement() {
        let current = [
            (ReplicaId(0), Some(GroupId(0))),
            (ReplicaId(1), Some(GroupId(0))),
            (ReplicaId(2), Some(GroupId(1))),
            (ReplicaId(3), Some(GroupId(1))),
        ];
        // Group 0 shrinks to 1; group 1 grows to 3.
        let target = [(GroupId(0), 1), (GroupId(1), 3)];
        let out = assign_replicas(&current, &target);
        assert_eq!(out.len(), 4);
        // Replica 0 stays in group 0; replicas 2 and 3 stay in group 1;
        // replica 1 moves.
        assert!(out.contains(&(ReplicaId(0), GroupId(0))));
        assert!(out.contains(&(ReplicaId(1), GroupId(1))));
        assert!(out.contains(&(ReplicaId(2), GroupId(1))));
        assert!(out.contains(&(ReplicaId(3), GroupId(1))));
    }

    #[test]
    fn assign_replicas_handles_fresh_cluster() {
        let current = [
            (ReplicaId(0), None),
            (ReplicaId(1), None),
            (ReplicaId(2), None),
        ];
        let target = [(GroupId(0), 2), (GroupId(1), 1)];
        let out = assign_replicas(&current, &target);
        let g0 = out.iter().filter(|(_, g)| *g == GroupId(0)).count();
        let g1 = out.iter().filter(|(_, g)| *g == GroupId(1)).count();
        assert_eq!((g0, g1), (2, 1));
    }
}
