//! Identifiers shared by the load-balancing layer.

use std::fmt;

/// Identifies one database replica in the cluster (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub usize);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replica{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(ReplicaId(1) < ReplicaId(2));
        assert_eq!(ReplicaId(3).to_string(), "replica3");
    }
}
