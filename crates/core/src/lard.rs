//! LARD: locality-aware request distribution (PAB+98), the paper's stronger
//! baseline (§4.3).
//!
//! LARD "knows only the transaction type and dispatches a transaction to a
//! replica where instances of the same transaction type have recently run".
//! This is the replica-set variant of the original algorithm: each type has
//! a server set; a request goes to the least-loaded member, and when that
//! member is overloaded while some cluster node is lightly loaded (or the
//! member is severely overloaded), the lightly-loaded node joins the set.
//! Load here is the balancer-visible outstanding-connection count — LARD has
//! no working-set information, which is exactly the limitation Tashkent+
//! targets.

use std::collections::HashMap;

use tashkent_engine::TxnTypeId;

use crate::types::ReplicaId;

/// LARD thresholds, in outstanding connections per replica.
#[derive(Debug, Clone, Copy)]
pub struct LardConfig {
    /// A set member above this is considered overloaded.
    pub t_high: usize,
    /// A cluster node below this is lightly loaded and may join a set.
    pub t_low: usize,
    /// A set member at or above `2 × t_high` forces set growth regardless
    /// of cluster state (severe overload, as in PAB+98).
    pub severe_factor: usize,
}

impl Default for LardConfig {
    /// Defaults scaled to a database MPL of ~8 (the original paper used
    /// 65/25 for web servers with hundreds of connections): a home replica
    /// with a Gatekeeper-deep queue counts as overloaded.
    fn default() -> Self {
        LardConfig {
            t_high: 6,
            t_low: 3,
            severe_factor: 2,
        }
    }
}

/// LARD dispatcher state.
#[derive(Debug, Clone)]
pub struct Lard {
    config: LardConfig,
    sets: HashMap<TxnTypeId, Vec<ReplicaId>>,
    replicas: usize,
}

impl Lard {
    /// Creates a LARD dispatcher over `replicas` nodes.
    pub fn new(replicas: usize, config: LardConfig) -> Self {
        Lard {
            config,
            sets: HashMap::new(),
            replicas,
        }
    }

    /// The server set currently assigned to `txn_type` (empty slice if the
    /// type has not been seen).
    pub fn server_set(&self, txn_type: TxnTypeId) -> &[ReplicaId] {
        self.sets.get(&txn_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Chooses a replica for `txn_type` given per-replica outstanding
    /// connection counts (`conns[i]` for replica `i`).
    pub fn dispatch(&mut self, txn_type: TxnTypeId, conns: &[usize]) -> ReplicaId {
        debug_assert_eq!(conns.len(), self.replicas);
        let cluster_least = least_loaded(conns, None);
        let set = self.sets.entry(txn_type).or_default();
        if set.is_empty() {
            set.push(cluster_least);
            return cluster_least;
        }
        // Least-loaded member of the set.
        let member = *set
            .iter()
            .min_by_key(|r| (conns[r.0], r.0))
            .expect("set is non-empty");
        let member_load = conns[member.0];
        let grow = (member_load > self.config.t_high && conns[cluster_least.0] < self.config.t_low)
            || member_load >= self.config.severe_factor * self.config.t_high;
        if grow && !set.contains(&cluster_least) {
            set.push(cluster_least);
            return cluster_least;
        }
        member
    }

    /// Removes `replica` from every server set (used when a replica fails).
    pub fn remove_replica(&mut self, replica: ReplicaId) {
        for set in self.sets.values_mut() {
            set.retain(|r| *r != replica);
        }
    }
}

/// Least-loaded replica by connection count, ties to the lowest id,
/// optionally excluding one replica.
fn least_loaded(conns: &[usize], exclude: Option<ReplicaId>) -> ReplicaId {
    conns
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(ReplicaId(*i)) != exclude)
        .min_by_key(|(i, c)| (**c, *i))
        .map(|(i, _)| ReplicaId(i))
        .expect("at least one replica")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lard(n: usize) -> Lard {
        Lard::new(n, LardConfig::default())
    }

    #[test]
    fn first_dispatch_assigns_least_loaded() {
        let mut l = lard(4);
        let conns = [3, 1, 2, 5];
        let r = l.dispatch(TxnTypeId(0), &conns);
        assert_eq!(r, ReplicaId(1));
        assert_eq!(l.server_set(TxnTypeId(0)), &[ReplicaId(1)]);
    }

    #[test]
    fn repeat_dispatches_stick_to_home() {
        let mut l = lard(4);
        let conns = [0, 0, 0, 0];
        let home = l.dispatch(TxnTypeId(7), &conns);
        for _ in 0..10 {
            // Home moderately loaded but under T_high: stays.
            let mut c = [3, 3, 3, 3];
            c[home.0] = 5;
            assert_eq!(l.dispatch(TxnTypeId(7), &c), home);
        }
    }

    #[test]
    fn overload_with_idle_node_grows_set() {
        let mut l = lard(3);
        let home = l.dispatch(TxnTypeId(1), &[0, 6, 6]);
        assert_eq!(home, ReplicaId(0));
        // Home above T_high (12) and replica 2 below T_low (4).
        let r = l.dispatch(TxnTypeId(1), &[13, 9, 2]);
        assert_eq!(r, ReplicaId(2));
        assert_eq!(
            l.server_set(TxnTypeId(1)),
            &[ReplicaId(0), ReplicaId(2)],
            "set grew"
        );
    }

    #[test]
    fn moderate_load_does_not_grow_set() {
        let mut l = lard(3);
        l.dispatch(TxnTypeId(1), &[0, 0, 0]);
        // Home above T_high (6) but below severe (12), and no node under
        // T_low (3): the set stays.
        let r = l.dispatch(TxnTypeId(1), &[8, 4, 4]);
        assert_eq!(r, ReplicaId(0));
        assert_eq!(l.server_set(TxnTypeId(1)).len(), 1);
    }

    #[test]
    fn severe_overload_forces_growth() {
        let mut l = lard(3);
        l.dispatch(TxnTypeId(1), &[0, 0, 0]);
        // Home at 24 = 2×T_high: grows even though no node is under T_low.
        let r = l.dispatch(TxnTypeId(1), &[24, 6, 5]);
        assert_eq!(r, ReplicaId(2));
    }

    #[test]
    fn dispatch_goes_to_least_loaded_member() {
        let mut l = lard(4);
        l.dispatch(TxnTypeId(0), &[0, 9, 9, 9]); // home = 0
        l.dispatch(TxnTypeId(0), &[13, 9, 9, 1]); // grows to {0, 3}
                                                  // Member 3 lighter than member 0 → dispatch to 3.
        assert_eq!(l.dispatch(TxnTypeId(0), &[8, 9, 9, 2]), ReplicaId(3));
        // Member 0 lighter → back to 0.
        assert_eq!(l.dispatch(TxnTypeId(0), &[1, 9, 9, 6]), ReplicaId(0));
    }

    #[test]
    fn types_get_independent_sets() {
        let mut l = lard(2);
        let a = l.dispatch(TxnTypeId(0), &[0, 1]);
        let b = l.dispatch(TxnTypeId(1), &[5, 1]);
        assert_eq!(a, ReplicaId(0));
        assert_eq!(b, ReplicaId(1));
        assert_ne!(l.server_set(TxnTypeId(0)), l.server_set(TxnTypeId(1)));
    }

    #[test]
    fn remove_replica_purges_sets() {
        let mut l = lard(2);
        l.dispatch(TxnTypeId(0), &[0, 5]);
        l.remove_replica(ReplicaId(0));
        assert!(l.server_set(TxnTypeId(0)).is_empty());
        // Next dispatch re-homes the type.
        let r = l.dispatch(TxnTypeId(0), &[0, 5]);
        assert_eq!(r, ReplicaId(0));
    }
}
