//! The load balancer: dispatch policies and the MALB composite.
//!
//! The balancer fronts the replica cluster (it is a JDBC driver in the
//! paper, §4.2.1): clients request a connection per transaction, supplying
//! the transaction type; the balancer picks a replica. It tracks outstanding
//! connections per replica (the only signal LeastConnections and LARD get)
//! and consumes smoothed load reports from the replica daemons (the signal
//! MALB's allocation uses).

use std::collections::{BTreeSet, HashMap};

use tashkent_engine::TxnTypeId;
use tashkent_sim::SimTime;
use tashkent_storage::RelationId;

use crate::allocation::{AllocationConfig, Allocator, GroupLoads};
use crate::estimator::{EstimationMode, WorkingSet};
use crate::filtering::filter_lists;
use crate::grouping::{pack_groups, GroupId, TxnGroup};
use crate::lard::{Lard, LardConfig};
use crate::types::ReplicaId;

/// A replica load report as seen by the balancer (mirrors the daemon's
/// CPU/disk utilizations; kept separate so the balancer layer does not
/// depend on the replica implementation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceLoad {
    /// Smoothed CPU utilization in `[0, 1]`.
    pub cpu: f64,
    /// Smoothed disk utilization in `[0, 1]`.
    pub disk: f64,
}

impl ResourceLoad {
    /// The paper's load function, `MAX(cpu, disk)` (§2.4).
    pub fn bottleneck(&self) -> f64 {
        self.cpu.max(self.disk)
    }
}

/// Which dispatch policy a balancer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Cycle through replicas.
    RoundRobin,
    /// Fewest outstanding connections (§4.3).
    LeastConnections,
    /// Locality-aware request distribution (§4.3).
    Lard,
    /// MALB with size-only packing (§2.3).
    MalbS,
    /// MALB with size + content packing (§2.3) — the headline technique.
    MalbSc,
    /// MALB with size + content + access-pattern packing (§2.3).
    MalbScap,
}

impl PolicyKind {
    /// The estimation mode behind a MALB variant, if any.
    pub fn estimation_mode(&self) -> Option<EstimationMode> {
        match self {
            PolicyKind::MalbS => Some(EstimationMode::Size),
            PolicyKind::MalbSc => Some(EstimationMode::SizeContent),
            PolicyKind::MalbScap => Some(EstimationMode::SizeContentAccessPattern),
            _ => None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "RoundRobin",
            PolicyKind::LeastConnections => "LeastConnections",
            PolicyKind::Lard => "LARD",
            PolicyKind::MalbS => "MALB-S",
            PolicyKind::MalbSc => "MALB-SC",
            PolicyKind::MalbScap => "MALB-SCAP",
        }
    }
}

/// MALB configuration.
#[derive(Debug, Clone)]
pub struct MalbConfig {
    /// Which working-set information the packing uses.
    pub mode: EstimationMode,
    /// Per-replica memory available for working sets, in pages (already net
    /// of the paper's 70 MB system overhead).
    pub capacity_pages: u64,
    /// Allocation knobs (hysteresis, merging, fast re-allocation).
    pub allocation: AllocationConfig,
    /// How often allocation decisions run.
    pub rebalance_period: SimTime,
    /// Whether replica allocation adapts at runtime (the Figure 6 "static
    /// configuration" baseline sets this to `false` after convergence).
    pub dynamic: bool,
    /// Whether update filtering is enabled (§3).
    pub update_filtering: bool,
    /// Availability: minimum up-to-date replicas per transaction group when
    /// filtering.
    pub min_copies: usize,
    /// Rebalance rounds without movement before filters are installed
    /// ("after the system stabilizes", §5.5).
    pub stable_rounds_for_filter: u32,
}

impl MalbConfig {
    /// A paper-shaped configuration for the given estimation mode and
    /// per-replica capacity.
    pub fn paper_default(mode: EstimationMode, capacity_pages: u64) -> Self {
        MalbConfig {
            mode,
            capacity_pages,
            allocation: AllocationConfig::default(),
            rebalance_period: SimTime::from_secs(5),
            dynamic: true,
            update_filtering: false,
            min_copies: 2,
            stable_rounds_for_filter: 10,
        }
    }
}

/// Reconfiguration produced by a rebalance round, applied by the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigAction {
    /// Install an update filter at a replica. `None` disables filtering.
    SetFilter {
        /// Target replica.
        replica: ReplicaId,
        /// Tables to keep current; `None` = all.
        tables: Option<BTreeSet<RelationId>>,
    },
    /// A replica changed groups (informational; caches migrate implicitly).
    Moved {
        /// The replica that changed assignment.
        replica: ReplicaId,
    },
}

/// Dispatch counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchStats {
    /// Total dispatches.
    pub dispatched: u64,
    /// Dispatches that fell back to least-connections because the type had
    /// no group (should stay zero in configured experiments).
    pub fallback: u64,
    /// Replica moves performed by MALB allocation.
    pub moves: u64,
    /// Group merges performed.
    pub merges: u64,
    /// Group splits performed.
    pub splits: u64,
    /// Fast re-allocations performed.
    pub fast_reallocs: u64,
}

/// An allocation unit: one or more groups sharing a replica set.
///
/// Units usually hold a single group; merging two under-utilized groups
/// (§2.4) yields a unit with two groups on one replica.
#[derive(Debug, Clone)]
struct Unit {
    groups: Vec<usize>,
    replicas: Vec<ReplicaId>,
}

/// MALB dispatcher state.
#[derive(Debug, Clone)]
struct MalbState {
    config: MalbConfig,
    working_sets: Vec<WorkingSet>,
    groups: Vec<TxnGroup>,
    group_of_type: HashMap<TxnTypeId, usize>,
    units: Vec<Unit>,
    allocator: Allocator,
    next_rebalance: SimTime,
    stable_rounds: u32,
    filters_installed: bool,
    /// Rebalance round counter.
    round: u32,
    /// No merges before this round (set after a split to damp
    /// merge/split oscillation).
    merge_cooldown_until: u32,
}

/// The policy state machine.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Round-robin cursor.
    RoundRobin {
        /// Next replica index.
        next: usize,
    },
    /// Least outstanding connections.
    LeastConnections,
    /// LARD state.
    Lard(Lard),
    /// MALB state.
    Malb(Box<MalbStateOpaque>),
}

/// Opaque wrapper keeping `MalbState` private while allowing `Policy` to be
/// public.
#[derive(Debug, Clone)]
pub struct MalbStateOpaque(MalbState);

/// The load balancer fronting the cluster.
pub struct LoadBalancer {
    n: usize,
    conns: Vec<usize>,
    loads: Vec<ResourceLoad>,
    alive: Vec<bool>,
    /// Partial-replication eligibility: `masks[t][r]` is whether replica `r`
    /// holds every relation transaction type `t` touches. `None` (full
    /// replication) leaves every decision exactly as before.
    type_eligible: Option<Vec<Vec<bool>>>,
    policy: Policy,
    stats: DispatchStats,
}

/// Whether replica `r` may serve type `t` under an optional eligibility row.
fn eligible_in(row: Option<&Vec<bool>>, r: usize) -> bool {
    row.is_none_or(|m| m.get(r).copied().unwrap_or(true))
}

/// Immutable cluster signals a rebalance round reads: per-replica loads,
/// liveness, and (under partial replication) per-type eligibility masks.
struct ClusterView<'a> {
    loads: &'a [ResourceLoad],
    alive: &'a [bool],
    elig: Option<&'a [Vec<bool>]>,
}

impl LoadBalancer {
    /// Creates a round-robin balancer.
    pub fn round_robin(n_replicas: usize) -> Self {
        Self::with_policy(n_replicas, Policy::RoundRobin { next: 0 })
    }

    /// Creates a least-connections balancer (§4.3).
    pub fn least_connections(n_replicas: usize) -> Self {
        Self::with_policy(n_replicas, Policy::LeastConnections)
    }

    /// Creates a LARD balancer (§4.3).
    pub fn lard(n_replicas: usize, config: LardConfig) -> Self {
        Self::with_policy(n_replicas, Policy::Lard(Lard::new(n_replicas, config)))
    }

    /// Creates a MALB balancer: packs `working_sets` into groups under
    /// `config.mode` and spreads replicas over the groups; allocation then
    /// adapts from load reports.
    pub fn malb(n_replicas: usize, working_sets: Vec<WorkingSet>, config: MalbConfig) -> Self {
        let groups = pack_groups(&working_sets, config.mode, config.capacity_pages);
        let mut group_of_type = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for t in &g.types {
                group_of_type.insert(*t, gi);
            }
        }
        // Seed units: one per group, merging the smallest groups if there
        // are more groups than replicas.
        let mut units: Vec<Unit> = groups
            .iter()
            .enumerate()
            .map(|(gi, _)| Unit {
                groups: vec![gi],
                replicas: Vec::new(),
            })
            .collect();
        while units.len() > n_replicas {
            // Merge the two units with the smallest combined estimates.
            units.sort_by_key(|u| {
                u.groups
                    .iter()
                    .map(|g| groups[*g].estimate_pages)
                    .sum::<u64>()
            });
            let mut absorbed = units.remove(0);
            units[0].groups.append(&mut absorbed.groups);
            units.sort_by_key(|u| u.groups.iter().min().copied().unwrap_or(usize::MAX));
        }
        // Spread replicas over units: overflow groups get two replicas
        // first when the cluster is big enough (they are both the heaviest
        // candidates and the ones §3's availability constraint wants at two
        // copies), then round-robin.
        let mut rid = 0;
        if n_replicas >= 2 * units.len() {
            for unit in units.iter_mut() {
                let is_overflow = unit.groups.iter().any(|g| groups[*g].overflow);
                if is_overflow && rid < n_replicas {
                    unit.replicas.push(ReplicaId(rid));
                    rid += 1;
                }
            }
        }
        let mut cursor = 0;
        while rid < n_replicas {
            let ulen = units.len();
            units[cursor % ulen].replicas.push(ReplicaId(rid));
            rid += 1;
            cursor += 1;
        }
        let allocator = Allocator::new(config.allocation);
        let next_rebalance = config.rebalance_period;
        let state = MalbState {
            config,
            working_sets,
            groups,
            group_of_type,
            units,
            allocator,
            next_rebalance,
            stable_rounds: 0,
            filters_installed: false,
            round: 0,
            merge_cooldown_until: 0,
        };
        Self::with_policy(n_replicas, Policy::Malb(Box::new(MalbStateOpaque(state))))
    }

    fn with_policy(n: usize, policy: Policy) -> Self {
        assert!(n > 0, "balancer needs at least one replica");
        LoadBalancer {
            n,
            conns: vec![0; n],
            loads: vec![ResourceLoad::default(); n],
            alive: vec![true; n],
            type_eligible: None,
            policy,
            stats: DispatchStats::default(),
        }
    }

    /// Installs (or clears) partial-replication eligibility masks:
    /// `masks[t][r]` says replica `r` holds every relation transaction type
    /// `t` touches. Dispatch then never routes a type to a non-holder, and
    /// MALB's allocation weighs only resident replicas when sizing groups.
    pub fn set_type_eligibility(&mut self, masks: Option<Vec<Vec<bool>>>) {
        self.type_eligible = masks;
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.n
    }

    /// Dispatch counters.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Balancer-side outstanding connections per replica.
    pub fn connections(&self) -> &[usize] {
        &self.conns
    }

    /// Latest load reports per replica.
    pub fn loads(&self) -> &[ResourceLoad] {
        &self.loads
    }

    /// Records a load report from a replica daemon.
    pub fn report(&mut self, replica: ReplicaId, load: ResourceLoad) {
        self.loads[replica.0] = load;
    }

    /// Chooses a replica for a transaction of `txn_type` and opens a
    /// connection to it. Under partial replication (eligibility masks
    /// installed), every policy restricts its choice to replicas holding the
    /// type's whole relation group.
    pub fn dispatch(&mut self, txn_type: TxnTypeId) -> ReplicaId {
        self.stats.dispatched += 1;
        let elig = self
            .type_eligible
            .as_ref()
            .and_then(|m| m.get(txn_type.0 as usize));
        let choice = match &mut self.policy {
            Policy::RoundRobin { next } => {
                let mut r = *next;
                // Skip dead and non-holder replicas.
                for _ in 0..self.n {
                    if self.alive[r] && eligible_in(elig, r) {
                        break;
                    }
                    r = (r + 1) % self.n;
                }
                *next = (r + 1) % self.n;
                ReplicaId(r)
            }
            Policy::LeastConnections => least_conn_alive(&self.conns, &self.alive, elig),
            Policy::Lard(lard) => {
                // LARD sees live replicas' connection counts; dead and
                // non-holder replicas are masked with a saturating count.
                let mut masked = self.conns.clone();
                for (i, alive) in self.alive.iter().enumerate() {
                    if !alive || !eligible_in(elig, i) {
                        masked[i] = usize::MAX;
                    }
                }
                lard.dispatch(txn_type, &masked)
            }
            Policy::Malb(state) => {
                let state = &mut state.0;
                match state.group_of_type.get(&txn_type) {
                    Some(gi) => {
                        let unit = state
                            .units
                            .iter()
                            .find(|u| u.groups.contains(gi))
                            .expect("every group belongs to a unit");
                        let live: Vec<ReplicaId> = unit
                            .replicas
                            .iter()
                            .copied()
                            .filter(|r| self.alive[r.0] && eligible_in(elig, r.0))
                            .collect();
                        match live.iter().min_by_key(|r| (self.conns[r.0], r.0)).copied() {
                            Some(r) => r,
                            None => {
                                self.stats.fallback += 1;
                                least_conn_alive(&self.conns, &self.alive, elig)
                            }
                        }
                    }
                    None => {
                        self.stats.fallback += 1;
                        least_conn_alive(&self.conns, &self.alive, elig)
                    }
                }
            }
        };
        self.conns[choice.0] += 1;
        choice
    }

    /// Closes the connection a transaction held on `replica`.
    ///
    /// # Panics
    ///
    /// Panics if the replica had no open connections (caller bookkeeping
    /// bug).
    pub fn complete(&mut self, replica: ReplicaId) {
        assert!(self.conns[replica.0] > 0, "no open connection on {replica}");
        self.conns[replica.0] -= 1;
    }

    /// Marks a replica dead (failure injection); MALB units and LARD sets
    /// drop it.
    pub fn replica_failed(&mut self, replica: ReplicaId) {
        self.alive[replica.0] = false;
        match &mut self.policy {
            Policy::Lard(l) => l.remove_replica(replica),
            Policy::Malb(state) => {
                for unit in &mut state.0.units {
                    unit.replicas.retain(|r| *r != replica);
                }
            }
            _ => {}
        }
    }

    /// Marks a replica alive again after recovery. For MALB the replica
    /// joins the least-replicated unit.
    pub fn replica_recovered(&mut self, replica: ReplicaId) {
        self.alive[replica.0] = true;
        if let Policy::Malb(state) = &mut self.policy {
            if let Some(unit) = state.0.units.iter_mut().min_by_key(|u| u.replicas.len()) {
                if !unit.replicas.contains(&replica) {
                    unit.replicas.push(replica);
                }
            }
        }
    }

    /// Stops MALB's dynamic re-allocation (Figure 6's static baseline; also
    /// used when freezing before enabling filters manually).
    pub fn freeze(&mut self) {
        if let Policy::Malb(state) = &mut self.policy {
            state.0.config.dynamic = false;
        }
    }

    /// Current MALB assignment: for each unit, its member types and its
    /// replicas (Table 2 / Table 4 output). Empty for non-MALB policies.
    pub fn assignments(&self) -> Vec<(Vec<TxnTypeId>, Vec<ReplicaId>)> {
        match &self.policy {
            Policy::Malb(state) => {
                let s = &state.0;
                s.units
                    .iter()
                    .map(|u| {
                        let mut types: Vec<TxnTypeId> = u
                            .groups
                            .iter()
                            .flat_map(|g| s.groups[*g].types.iter().copied())
                            .collect();
                        types.sort();
                        (types, u.replicas.clone())
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Whether MALB has installed update filters (always `false` for other
    /// policies).
    pub fn filters_installed(&self) -> bool {
        match &self.policy {
            Policy::Malb(state) => state.0.filters_installed,
            _ => false,
        }
    }

    /// The packed groups (for inspection/benches). Empty for non-MALB.
    pub fn groups(&self) -> Vec<TxnGroup> {
        match &self.policy {
            Policy::Malb(state) => state.0.groups.clone(),
            _ => Vec::new(),
        }
    }

    /// Runs one balancer tick at `now`: MALB rebalances (moves, merges,
    /// splits, fast re-allocation) and, once stable, installs update
    /// filters. Other policies do nothing. Under partial replication MALB's
    /// load estimates weigh only *resident* replicas — ones holding every
    /// relation a unit's types touch.
    pub fn tick(&mut self, now: SimTime) -> Vec<ReconfigAction> {
        let loads = self.loads.clone();
        let alive = self.alive.clone();
        let elig = self.type_eligible.clone();
        let view = ClusterView {
            loads: &loads,
            alive: &alive,
            elig: elig.as_deref(),
        };
        let stats = &mut self.stats;
        match &mut self.policy {
            Policy::Malb(state) => state.0.tick(now, &view, stats),
            _ => Vec::new(),
        }
    }
}

/// Least-connections choice over live (and, under partial replication,
/// holder) replicas.
fn least_conn_alive(conns: &[usize], alive: &[bool], elig: Option<&Vec<bool>>) -> ReplicaId {
    conns
        .iter()
        .enumerate()
        .filter(|(i, _)| alive[*i] && eligible_in(elig, *i))
        .min_by_key(|(i, c)| (**c, *i))
        .map(|(i, _)| ReplicaId(i))
        .expect("at least one live holder replica")
}

impl MalbState {
    fn tick(
        &mut self,
        now: SimTime,
        view: &ClusterView,
        stats: &mut DispatchStats,
    ) -> Vec<ReconfigAction> {
        let mut actions = Vec::new();
        if now < self.next_rebalance {
            return actions;
        }
        self.next_rebalance = now + self.config.rebalance_period.as_micros();
        if !self.config.dynamic && self.filters_installed {
            return actions;
        }

        let mut changed = false;
        if self.config.dynamic {
            changed = self.rebalance(view, stats, &mut actions);
        }

        if changed {
            self.stable_rounds = 0;
        } else {
            self.stable_rounds += 1;
        }

        // Install filters once the configuration has been stable long
        // enough; dynamic allocation is disabled from then on (§4.2.3).
        if self.config.update_filtering
            && !self.filters_installed
            && self.stable_rounds >= self.config.stable_rounds_for_filter
        {
            self.filters_installed = true;
            self.config.dynamic = false;
            let assignment: Vec<Vec<ReplicaId>> = {
                // Per *group* replica lists, in group order.
                let mut per_group: Vec<Vec<ReplicaId>> = vec![Vec::new(); self.groups.len()];
                for unit in &self.units {
                    for g in &unit.groups {
                        per_group[*g] = unit.replicas.clone();
                    }
                }
                per_group
            };
            let all: Vec<ReplicaId> = (0..view.loads.len()).map(ReplicaId).collect();
            let plans = filter_lists(
                &self.groups,
                &self.working_sets,
                &assignment,
                &all,
                self.config.min_copies.min(all.len()),
            );
            for p in plans {
                actions.push(ReconfigAction::SetFilter {
                    replica: p.replica,
                    tables: p.tables,
                });
            }
        }
        actions
    }

    /// One allocation round: merge, split, then move or fast-realloc.
    /// Returns whether anything changed.
    fn rebalance(
        &mut self,
        view: &ClusterView,
        stats: &mut DispatchStats,
        actions: &mut Vec<ReconfigAction>,
    ) -> bool {
        let unit_loads = self.unit_loads(view);
        if unit_loads.is_empty() {
            return false;
        }

        self.round += 1;

        // 1. Split a merged unit that became the hottest (§2.4: undo merging
        //    before allocating more replicas). A split starts a merge
        //    cooldown so the pair is not immediately re-merged while its
        //    load estimate is still settling.
        for (ui, unit) in self.units.iter().enumerate() {
            if unit.groups.len() > 1 && self.allocator.should_split(GroupId(ui), &unit_loads) {
                self.merge_cooldown_until = self.round + 12;
                return self.split_unit(ui, view, stats, actions);
            }
        }

        // 2. Merge two substantially under-utilized singleton units.
        //    Pairs whose combined working sets fit one replica merge freely;
        //    a non-fitting pair merges only when both are nearly idle (the
        //    paper accepts that merged groups may contend — the split above
        //    undoes it in a controlled fashion).
        if self.round >= self.merge_cooldown_until {
            let candidates = self.allocator.merge_candidates(&unit_loads);
            let idle = self.allocator.config().merge_threshold / 2.0;
            let load_of = |g: GroupId| {
                unit_loads
                    .iter()
                    .find(|l| l.group == g)
                    .map(|l| l.load)
                    .unwrap_or(0.0)
            };
            let mut choice: Option<(usize, usize)> = None;
            'pairs: for (i, a) in candidates.iter().enumerate() {
                for b in candidates.iter().skip(i + 1) {
                    let fits = self.units_fit_together(a.0, b.0);
                    let both_idle = load_of(*a) < idle && load_of(*b) < idle;
                    if fits || both_idle {
                        choice = Some((a.0, b.0));
                        break 'pairs;
                    }
                }
            }
            if let Some((a, b)) = choice {
                self.merge_units(a, b, view, stats, actions);
                return true;
            }
        }

        // 3. Fast re-allocation on drastic imbalance, else a single move.
        if self.allocator.needs_fast_realloc(&unit_loads) {
            let total: usize = self.units.iter().map(|u| u.replicas.len()).sum();
            if total >= self.units.len() {
                let target = self.allocator.solve_balance(&unit_loads, total);
                let changed = self.apply_target(&target, view, actions);
                if changed {
                    stats.fast_reallocs += 1;
                    return true;
                }
            }
        }
        if let Some(mv) = self.allocator.decide_move(&unit_loads) {
            let moved = self.move_one(mv.from.0, mv.to.0, view, actions);
            if moved {
                stats.moves += 1;
                return true;
            }
        }
        false
    }

    /// Whether replica `r` holds every relation `unit`'s transaction types
    /// touch — i.e. whether parking `r` in the unit lets it actually serve
    /// the unit's traffic. Trivially true under full replication (no
    /// eligibility masks installed).
    fn unit_resident(&self, unit: &Unit, r: usize, elig: Option<&[Vec<bool>]>) -> bool {
        let Some(masks) = elig else { return true };
        unit.groups
            .iter()
            .flat_map(|g| self.groups[*g].types.iter())
            .all(|t| eligible_in(masks.get(t.0 as usize), r))
    }

    /// Whether two units' combined working-set estimate fits one replica.
    fn units_fit_together(&self, a: usize, b: usize) -> bool {
        let mut union: std::collections::BTreeMap<tashkent_storage::RelationId, u64> =
            std::collections::BTreeMap::new();
        for ui in [a, b] {
            for gi in &self.units[ui].groups {
                for (r, p) in &self.groups[*gi].relations {
                    union.insert(*r, *p);
                }
            }
        }
        union.values().sum::<u64>() <= self.config.capacity_pages
    }

    /// Per-unit load estimates. Under partial replication (`elig` masks
    /// installed) a unit is weighed over its *resident* replicas only — the
    /// ones eligible for every transaction type the unit serves; a
    /// non-resident replica parked in the unit neither serves its traffic
    /// nor should count toward its capacity. When no live resident exists
    /// the live set is used as a fallback so the allocator still sees the
    /// unit.
    fn unit_loads(&self, view: &ClusterView) -> Vec<GroupLoads> {
        let resident = |unit: &Unit, r: usize| -> bool { self.unit_resident(unit, r, view.elig) };
        self.units
            .iter()
            .enumerate()
            .map(|(ui, unit)| {
                let live: Vec<&ReplicaId> =
                    unit.replicas.iter().filter(|r| view.alive[r.0]).collect();
                let serving: Vec<&ReplicaId> = live
                    .iter()
                    .copied()
                    .filter(|r| resident(unit, r.0))
                    .collect();
                let pool = if serving.is_empty() { &live } else { &serving };
                let load = if pool.is_empty() {
                    0.0
                } else {
                    pool.iter()
                        .map(|r| view.loads[r.0].bottleneck())
                        .sum::<f64>()
                        / pool.len() as f64
                };
                GroupLoads {
                    group: GroupId(ui),
                    load,
                    replicas: pool.len(),
                }
            })
            .collect()
    }

    /// Moves one replica from unit `from` to unit `to`. Placement-aware:
    /// under partial replication only replicas *resident* for the target
    /// unit (holding every relation its types touch) are proposed — a
    /// non-holder parked in the unit would serve none of its traffic, and
    /// dispatch would fall back outside the group on every request. When
    /// the donor has no resident replica the move is skipped (the allocator
    /// re-evaluates next round). Under full replication this is exactly the
    /// historical lowest-id choice. Returns whether a move happened.
    fn move_one(
        &mut self,
        from: usize,
        to: usize,
        view: &ClusterView,
        actions: &mut Vec<ReconfigAction>,
    ) -> bool {
        if from == to || self.units[from].replicas.len() <= 1 {
            return false;
        }
        let Some(rid) = self.units[from]
            .replicas
            .iter()
            .filter(|r| self.unit_resident(&self.units[to], r.0, view.elig))
            .min_by_key(|r| r.0)
            .copied()
        else {
            return false;
        };
        self.units[from].replicas.retain(|r| *r != rid);
        self.units[to].replicas.push(rid);
        actions.push(ReconfigAction::Moved { replica: rid });
        true
    }

    /// Applies a wholesale target allocation, minimizing replica movement.
    /// Placement-aware like [`MalbState::move_one`]: a growing unit only
    /// receives spares resident for it; spares no receiver can use stay
    /// inside the unit partition. `changed` reports *effective* movement —
    /// a spare shrunk out of a donor and parked straight back is a no-op,
    /// so a placement that blocks every growth cannot reset MALB's
    /// stability counter (which would permanently hold off §3 filter
    /// installation) or inflate the fast-realloc stat round after round.
    fn apply_target(
        &mut self,
        target: &[(GroupId, usize)],
        view: &ClusterView,
        actions: &mut Vec<ReconfigAction>,
    ) -> bool {
        let mut changed = false;
        // Shrink donors first, collecting spares with their donor unit.
        let mut spares: Vec<(ReplicaId, usize)> = Vec::new();
        for (g, want) in target {
            let unit = &mut self.units[g.0];
            while unit.replicas.len() > *want {
                let rid = unit.replicas.pop().expect("non-empty");
                spares.push((rid, g.0));
            }
        }
        spares.sort_unstable();
        // Then grow receivers. Under full replication every spare is
        // resident everywhere and this pops from the end exactly as the
        // historical code did (a donor never re-grows within one target,
        // so every placement is a real move there).
        for (g, want) in target {
            while self.units[g.0].replicas.len() < *want {
                let Some(pos) = spares
                    .iter()
                    .rposition(|(r, _)| self.unit_resident(&self.units[g.0], r.0, view.elig))
                else {
                    break;
                };
                let (rid, donor) = spares.remove(pos);
                self.units[g.0].replicas.push(rid);
                if donor != g.0 {
                    changed = true;
                    actions.push(ReconfigAction::Moved { replica: rid });
                }
            }
        }
        // Leftover spares no receiver could use must stay inside the unit
        // partition: park each in the emptiest unit it is resident for
        // (emptiest overall when it is resident nowhere). Unreachable under
        // full replication — the balance targets sum to the replica count.
        for (rid, donor) in spares {
            let emptiest = |resident_only: bool| {
                (0..self.units.len())
                    .filter(|ui| {
                        !resident_only || self.unit_resident(&self.units[*ui], rid.0, view.elig)
                    })
                    .min_by_key(|ui| (self.units[*ui].replicas.len(), *ui))
            };
            let home = emptiest(true)
                .or_else(|| emptiest(false))
                .expect("allocation targets imply at least one unit");
            self.units[home].replicas.push(rid);
            if home != donor {
                changed = true;
                actions.push(ReconfigAction::Moved { replica: rid });
            }
        }
        changed
    }

    /// Merges unit `b` into unit `a`: the pair shares `a`'s single replica;
    /// `b`'s replica goes to the most loaded other unit.
    fn merge_units(
        &mut self,
        a: usize,
        b: usize,
        view: &ClusterView,
        stats: &mut DispatchStats,
        actions: &mut Vec<ReconfigAction>,
    ) {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        let mut unit_b = self.units.remove(b);
        let freed: Vec<ReplicaId> = std::mem::take(&mut unit_b.replicas);
        self.units[a].groups.append(&mut unit_b.groups);
        stats.merges += 1;
        // Freed replica(s) reinforce the most loaded unit they are
        // *resident* for (placement-aware: a non-holder would reinforce
        // nothing); the overall most loaded unit when resident nowhere.
        let unit_loads = self.unit_loads(view);
        let mut by_load: Vec<&GroupLoads> = unit_loads.iter().collect();
        by_load.sort_by(|x, y| y.load.total_cmp(&x.load).then(x.group.cmp(&y.group)));
        for rid in freed {
            let most = by_load
                .iter()
                .find(|g| self.unit_resident(&self.units[g.group.0], rid.0, view.elig))
                .or_else(|| by_load.first())
                .map(|g| g.group.0);
            if let Some(most) = most {
                self.units[most].replicas.push(rid);
                actions.push(ReconfigAction::Moved { replica: rid });
            }
        }
    }

    /// Splits a merged unit into its first group and the rest; the new unit
    /// takes one replica from the least future-loaded other unit.
    /// Placement-aware: the donated replica must be *resident* for the
    /// split-off group (under partial replication a non-holder could not
    /// serve it and dispatch would fall back); donor units with no such
    /// replica are passed over, and the split waits when none exists.
    fn split_unit(
        &mut self,
        ui: usize,
        view: &ClusterView,
        stats: &mut DispatchStats,
        actions: &mut Vec<ReconfigAction>,
    ) -> bool {
        let moved_group = *self.units[ui].groups.last().expect("merged unit");
        let split_off = Unit {
            groups: vec![moved_group],
            replicas: Vec::new(),
        };
        let unit_loads = self.unit_loads(view);
        let mut donors: Vec<&GroupLoads> = unit_loads
            .iter()
            .filter(|g| g.group.0 != ui && g.replicas > 1)
            .collect();
        donors.sort_by(|x, y| {
            x.future_load()
                .total_cmp(&y.future_load())
                .then(x.group.cmp(&y.group))
        });
        let rid = donors.iter().find_map(|donor| {
            self.units[donor.group.0]
                .replicas
                .iter()
                .filter(|r| self.unit_resident(&split_off, r.0, view.elig))
                .min_by_key(|r| r.0)
                .copied()
                .map(|rid| (donor.group.0, rid))
        });
        let Some((donor_idx, rid)) = rid else {
            return false;
        };
        self.units[donor_idx].replicas.retain(|r| *r != rid);
        let moved_group = self.units[ui].groups.pop().expect("merged unit");
        self.units.push(Unit {
            groups: vec![moved_group],
            replicas: vec![rid],
        });
        stats.splits += 1;
        actions.push(ReconfigAction::Moved { replica: rid });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ws(id: u32, rels: &[(u32, u64)]) -> WorkingSet {
        WorkingSet {
            txn_type: TxnTypeId(id),
            relations: rels
                .iter()
                .map(|(r, p)| (RelationId(*r), *p))
                .collect::<BTreeMap<_, _>>(),
            scanned: rels.iter().map(|(r, _)| RelationId(*r)).collect(),
        }
    }

    fn malb_config(capacity: u64) -> MalbConfig {
        MalbConfig::paper_default(EstimationMode::SizeContent, capacity)
    }

    #[test]
    fn round_robin_cycles() {
        let mut lb = LoadBalancer::round_robin(3);
        let seq: Vec<usize> = (0..6).map(|_| lb.dispatch(TxnTypeId(0)).0).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_connections_picks_min() {
        let mut lb = LoadBalancer::least_connections(3);
        let a = lb.dispatch(TxnTypeId(0));
        let b = lb.dispatch(TxnTypeId(1));
        let c = lb.dispatch(TxnTypeId(2));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        lb.complete(ReplicaId(1));
        assert_eq!(lb.dispatch(TxnTypeId(3)).0, 1);
    }

    #[test]
    #[should_panic(expected = "no open connection")]
    fn complete_without_dispatch_panics() {
        LoadBalancer::least_connections(2).complete(ReplicaId(0));
    }

    #[test]
    fn malb_routes_types_to_their_groups() {
        // Two disjoint 80-page types on a 100-page capacity → 2 groups.
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut lb = LoadBalancer::malb(4, sets, malb_config(100));
        let r0 = lb.dispatch(TxnTypeId(0));
        let r1 = lb.dispatch(TxnTypeId(1));
        // Same type always lands in the same unit's replica set.
        let a = lb.assignments();
        assert_eq!(a.len(), 2);
        let unit_of = |t: TxnTypeId| {
            a.iter()
                .find(|(types, _)| types.contains(&t))
                .unwrap()
                .1
                .clone()
        };
        assert!(unit_of(TxnTypeId(0)).contains(&r0));
        assert!(unit_of(TxnTypeId(1)).contains(&r1));
        // The two groups' replica sets are disjoint.
        assert!(unit_of(TxnTypeId(0))
            .iter()
            .all(|r| !unit_of(TxnTypeId(1)).contains(r)));
    }

    #[test]
    fn malb_all_replicas_assigned() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)]), ws(2, &[(2, 30)])];
        let lb = LoadBalancer::malb(16, sets, malb_config(100));
        let total: usize = lb.assignments().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn malb_more_groups_than_replicas_merges_seeds() {
        let sets: Vec<WorkingSet> = (0..6).map(|i| ws(i, &[(i, 90)])).collect();
        let lb = LoadBalancer::malb(3, sets, malb_config(100));
        let a = lb.assignments();
        assert!(a.len() <= 3, "units bounded by replicas: {}", a.len());
        let types: usize = a.iter().map(|(t, _)| t.len()).sum();
        assert_eq!(types, 6, "every type served");
        assert!(a.iter().all(|(_, r)| !r.is_empty()));
    }

    #[test]
    fn malb_rebalances_toward_loaded_group() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(8, sets, cfg);
        // Unit of type 0 is hot; unit of type 1 idle.
        let hot: Vec<ReplicaId> = lb.assignments()[0].1.clone();
        for r in 0..8 {
            let load = if hot.contains(&ReplicaId(r)) {
                ResourceLoad {
                    cpu: 0.95,
                    disk: 0.2,
                }
            } else {
                ResourceLoad {
                    cpu: 0.05,
                    disk: 0.01,
                }
            };
            lb.report(ReplicaId(r), load);
        }
        let mut moved = 0;
        for s in 1..20 {
            let actions = lb.tick(SimTime::from_secs(s));
            moved += actions
                .iter()
                .filter(|a| matches!(a, ReconfigAction::Moved { .. }))
                .count();
        }
        assert!(moved > 0, "allocation must shift replicas to the hot group");
        let a = lb.assignments();
        let hot_now = a.iter().find(|(t, _)| t.contains(&TxnTypeId(0))).unwrap();
        let cold_now = a.iter().find(|(t, _)| t.contains(&TxnTypeId(1))).unwrap();
        assert!(hot_now.1.len() > cold_now.1.len());
        assert!(!cold_now.1.is_empty(), "donor keeps at least one replica");
    }

    #[test]
    fn malb_merges_underutilized_singletons() {
        // Three disjoint 80-page types: none pack together at 100 pages, so
        // all start as singleton units. Units 0 and 1 are nearly idle (below
        // the both-idle bar), so they merge even though their union exceeds
        // memory — the paper accepts that risk and undoes it by splitting.
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)]), ws(2, &[(2, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(3, sets, cfg);
        // All three units singleton; two are nearly idle, one moderately hot.
        let a = lb.assignments();
        let unit_replica = |t: u32| {
            a.iter()
                .find(|(ts, _)| ts.contains(&TxnTypeId(t)))
                .unwrap()
                .1[0]
        };
        lb.report(
            unit_replica(0),
            ResourceLoad {
                cpu: 0.05,
                disk: 0.0,
            },
        );
        lb.report(
            unit_replica(1),
            ResourceLoad {
                cpu: 0.08,
                disk: 0.0,
            },
        );
        lb.report(
            unit_replica(2),
            ResourceLoad {
                cpu: 0.70,
                disk: 0.1,
            },
        );
        lb.tick(SimTime::from_secs(1));
        assert_eq!(lb.stats().merges, 1);
        let after = lb.assignments();
        // Two units remain; the merged one serves two types on one replica.
        assert_eq!(after.len(), 2);
        let merged = after.iter().find(|(t, _)| t.len() == 2).unwrap();
        assert_eq!(merged.1.len(), 1);
        // The freed replica reinforced the hot unit.
        let hot = after
            .iter()
            .find(|(t, _)| t.contains(&TxnTypeId(2)))
            .unwrap();
        assert_eq!(hot.1.len(), 2);
    }

    #[test]
    fn malb_splits_contended_merge() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)]), ws(2, &[(2, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(3, sets, cfg);
        let a = lb.assignments();
        let unit_replica = |t: u32| {
            a.iter()
                .find(|(ts, _)| ts.contains(&TxnTypeId(t)))
                .unwrap()
                .1[0]
        };
        let merged_replica = unit_replica(0);
        lb.report(
            unit_replica(0),
            ResourceLoad {
                cpu: 0.05,
                disk: 0.0,
            },
        );
        lb.report(
            unit_replica(1),
            ResourceLoad {
                cpu: 0.08,
                disk: 0.0,
            },
        );
        lb.report(
            unit_replica(2),
            ResourceLoad {
                cpu: 0.70,
                disk: 0.1,
            },
        );
        lb.tick(SimTime::from_secs(1));
        assert_eq!(lb.stats().merges, 1);
        // Now the merged replica becomes the hottest: memory contention.
        lb.report(
            merged_replica,
            ResourceLoad {
                cpu: 0.2,
                disk: 0.98,
            },
        );
        lb.report(
            unit_replica(2),
            ResourceLoad {
                cpu: 0.3,
                disk: 0.1,
            },
        );
        lb.tick(SimTime::from_secs(2));
        assert_eq!(lb.stats().splits, 1, "contended merge must split");
        let after = lb.assignments();
        assert!(after.iter().all(|(t, _)| t.len() == 1));
    }

    #[test]
    fn malb_fast_realloc_on_drastic_change() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(10, sets, cfg);
        // 5/5 split; group 0 at 70%, group 1 at 10%: needs 3.5 vs 0.5 →
        // ideal 8.75 / 1.25 → 9 / 1 after rounding.
        let a = lb.assignments();
        for (types, replicas) in &a {
            let load = if types.contains(&TxnTypeId(0)) {
                ResourceLoad {
                    cpu: 0.70,
                    disk: 0.0,
                }
            } else {
                ResourceLoad {
                    cpu: 0.10,
                    disk: 0.0,
                }
            };
            for r in replicas {
                lb.report(*r, load);
            }
        }
        lb.tick(SimTime::from_secs(1));
        assert!(lb.stats().fast_reallocs >= 1);
        let after = lb.assignments();
        let hot = after
            .iter()
            .find(|(t, _)| t.contains(&TxnTypeId(0)))
            .unwrap();
        assert_eq!(hot.1.len(), 9, "balance equations give the hot group 9");
    }

    #[test]
    fn filters_install_after_stability() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        cfg.update_filtering = true;
        cfg.stable_rounds_for_filter = 3;
        cfg.min_copies = 1;
        let mut lb = LoadBalancer::malb(4, sets, cfg);
        // Balanced loads → no moves → stability accrues.
        for r in 0..4 {
            lb.report(
                ReplicaId(r),
                ResourceLoad {
                    cpu: 0.5,
                    disk: 0.4,
                },
            );
        }
        let mut filter_actions = Vec::new();
        for s in 1..10 {
            for act in lb.tick(SimTime::from_secs(s)) {
                if matches!(act, ReconfigAction::SetFilter { .. }) {
                    filter_actions.push(act);
                }
            }
        }
        assert_eq!(filter_actions.len(), 4, "one filter per replica");
        // Filters partition tables: replicas of group 0 keep table 0 only.
        let a = lb.assignments();
        let g0_replicas = &a.iter().find(|(t, _)| t.contains(&TxnTypeId(0))).unwrap().1;
        for act in &filter_actions {
            if let ReconfigAction::SetFilter { replica, tables } = act {
                let tables = tables.as_ref().unwrap();
                if g0_replicas.contains(replica) {
                    assert!(tables.contains(&RelationId(0)));
                    assert!(!tables.contains(&RelationId(1)));
                }
            }
        }
        // Once filtered, allocation is frozen: further ticks do nothing.
        for r in 0..4 {
            lb.report(
                ReplicaId(r),
                ResourceLoad {
                    cpu: 0.9,
                    disk: 0.1,
                },
            );
        }
        let acts = lb.tick(SimTime::from_secs(30));
        assert!(acts.is_empty());
    }

    #[test]
    fn failed_replica_excluded_from_dispatch() {
        let mut lb = LoadBalancer::least_connections(3);
        lb.replica_failed(ReplicaId(0));
        for _ in 0..10 {
            assert_ne!(lb.dispatch(TxnTypeId(0)).0, 0);
        }
        lb.replica_recovered(ReplicaId(0));
        let hits = (0..10).filter(|_| lb.dispatch(TxnTypeId(0)).0 == 0).count();
        assert!(hits > 0, "recovered replica serves again");
    }

    #[test]
    fn malb_survives_replica_failure() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut lb = LoadBalancer::malb(2, sets, malb_config(100));
        // Kill the replica of type 0's unit; dispatch falls back.
        let a = lb.assignments();
        let victim = a.iter().find(|(t, _)| t.contains(&TxnTypeId(0))).unwrap().1[0];
        lb.replica_failed(victim);
        let r = lb.dispatch(TxnTypeId(0));
        assert_ne!(r, victim);
        assert_eq!(lb.stats().fallback, 1);
    }

    #[test]
    fn freeze_stops_rebalancing() {
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(8, sets, cfg);
        lb.freeze();
        let hot: Vec<ReplicaId> = lb.assignments()[0].1.clone();
        for r in 0..8 {
            let load = if hot.contains(&ReplicaId(r)) {
                ResourceLoad {
                    cpu: 0.95,
                    disk: 0.2,
                }
            } else {
                ResourceLoad {
                    cpu: 0.05,
                    disk: 0.01,
                }
            };
            lb.report(ReplicaId(r), load);
        }
        for s in 1..10 {
            assert!(lb.tick(SimTime::from_secs(s)).is_empty());
        }
        assert_eq!(lb.stats().moves, 0);
    }

    #[test]
    fn eligibility_masks_restrict_every_policy() {
        // Replica 0 holds type 0's group; replica 2 holds type 1's.
        let masks = vec![vec![true, false, false], vec![false, false, true]];
        let sets = vec![ws(0, &[(0, 40)]), ws(1, &[(1, 40)])];
        let make = |which: u8| -> LoadBalancer {
            let mut lb = match which {
                0 => LoadBalancer::round_robin(3),
                1 => LoadBalancer::least_connections(3),
                2 => LoadBalancer::lard(3, LardConfig::default()),
                _ => LoadBalancer::malb(3, sets.clone(), malb_config(100)),
            };
            lb.set_type_eligibility(Some(masks.clone()));
            lb
        };
        for which in 0..4 {
            let mut lb = make(which);
            for i in 0..12 {
                let t = TxnTypeId(i % 2);
                let choice = lb.dispatch(t);
                let expect = if t.0 == 0 { 0 } else { 2 };
                assert_eq!(
                    choice.0, expect,
                    "policy {which} routed type {} to non-holder {}",
                    t.0, choice.0
                );
            }
        }
        // Clearing the masks restores unrestricted dispatch.
        let mut lb = make(1);
        lb.set_type_eligibility(None);
        lb.dispatch(TxnTypeId(0));
        lb.dispatch(TxnTypeId(0));
        assert!(lb.connections()[1] > 0, "replica 1 serves again");
    }

    /// Drives the hot/cold load shape until the allocator reconfigures,
    /// returning the replica sets of type 0's and type 1's units.
    fn tick_hot_cold(lb: &mut LoadBalancer) -> (Vec<ReplicaId>, Vec<ReplicaId>) {
        let unit_of = |lb: &LoadBalancer, t: TxnTypeId| {
            lb.assignments()
                .iter()
                .find(|(types, _)| types.contains(&t))
                .expect("type has a unit")
                .1
                .clone()
        };
        for s in 1..20 {
            let hot: Vec<ReplicaId> = unit_of(lb, TxnTypeId(0));
            for r in 0..lb.replicas() {
                let load = if hot.contains(&ReplicaId(r)) {
                    ResourceLoad {
                        cpu: 0.95,
                        disk: 0.2,
                    }
                } else {
                    ResourceLoad {
                        cpu: 0.05,
                        disk: 0.01,
                    }
                };
                lb.report(ReplicaId(r), load);
            }
            lb.tick(SimTime::from_secs(s));
        }
        (unit_of(lb, TxnTypeId(0)), unit_of(lb, TxnTypeId(1)))
    }

    #[test]
    fn malb_moves_propose_only_holder_replicas_under_placement() {
        // Two disjoint groups on 4 replicas: the seed parks {0, 2} on type
        // 0's unit and {1, 3} on type 1's. Placement allows type 0 only on
        // replicas {0, 3}: when type 0's unit runs hot, the donor's
        // lowest-id replica (1) is *not* a holder — the placement-aware
        // chooser must hand over replica 3 instead, and replica 1 must
        // never enter the unit.
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(4, sets, cfg);
        lb.set_type_eligibility(Some(vec![
            vec![true, false, false, true],
            vec![false, true, true, true],
        ]));
        let (hot_unit, cold_unit) = tick_hot_cold(&mut lb);
        assert!(
            hot_unit.contains(&ReplicaId(3)),
            "the holder replica must reinforce the hot unit: {hot_unit:?}"
        );
        assert!(
            !hot_unit.contains(&ReplicaId(1)),
            "a non-holder must never be parked in the unit: {hot_unit:?}"
        );
        assert!(
            cold_unit.contains(&ReplicaId(1)),
            "the non-holder stays with its own unit: {cold_unit:?}"
        );
    }

    #[test]
    fn malb_moves_wait_when_no_holder_donor_exists() {
        // Type 0 lives only on replica 0: no donor replica can serve the
        // hot unit, so the chooser proposes nothing — membership is stable
        // instead of parking useless non-holders (the dispatch-intersection
        // fallback shape this chooser exists to cut).
        let sets = vec![ws(0, &[(0, 80)]), ws(1, &[(1, 80)])];
        let mut cfg = malb_config(100);
        cfg.rebalance_period = SimTime::from_secs(1);
        let mut lb = LoadBalancer::malb(4, sets, cfg);
        lb.set_type_eligibility(Some(vec![
            vec![true, false, false, false],
            vec![false, true, true, true],
        ]));
        let before = lb.assignments();
        let (hot_unit, _) = tick_hot_cold(&mut lb);
        assert_eq!(
            hot_unit,
            before
                .iter()
                .find(|(t, _)| t.contains(&TxnTypeId(0)))
                .unwrap()
                .1,
            "no holder donor: the unit must keep its seed membership"
        );
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(PolicyKind::MalbSc.label(), "MALB-SC");
        assert_eq!(PolicyKind::LeastConnections.label(), "LeastConnections");
        assert_eq!(
            PolicyKind::MalbScap.estimation_mode(),
            Some(EstimationMode::SizeContentAccessPattern)
        );
        assert_eq!(PolicyKind::Lard.estimation_mode(), None);
    }
}
