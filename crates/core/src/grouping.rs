//! Transaction grouping by Best-Fit-Decreasing bin packing (§2.3).
//!
//! Given working-set estimates, transaction types are packed into groups
//! whose combined working sets fit the available memory of one replica.
//! Types whose individual estimate already exceeds memory are *overflow*
//! types and get dedicated groups.
//!
//! The three methods differ in what they count:
//! * **MALB-S** packs by size alone: a bin's load is the arithmetic sum of
//!   its members' sizes (shared relations double counted).
//! * **MALB-SC** packs by contents: a bin's load is the size of the *union*
//!   of its members' relation sets; a type fits when its non-overlapping
//!   pages fit, and among fitting bins the one with maximal overlap wins.
//! * **MALB-SCAP** is MALB-SC restricted to linearly-scanned relations.

use std::collections::BTreeMap;

use tashkent_engine::TxnTypeId;
use tashkent_storage::RelationId;

use crate::estimator::{EstimationMode, WorkingSet};

/// Identifies a transaction group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub usize);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "group{}", self.0)
    }
}

/// A group of transaction types sharing replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnGroup {
    /// Member transaction types, in packing order.
    pub types: Vec<TxnTypeId>,
    /// The group's estimated combined working set: relation → pages under
    /// the packing mode (for MALB-S this holds each member's relations, but
    /// the load is tracked separately to preserve double counting).
    pub relations: BTreeMap<RelationId, u64>,
    /// Estimated combined working-set size in pages (mode-dependent).
    pub estimate_pages: u64,
    /// Whether this is a dedicated group for an overflow type.
    pub overflow: bool,
}

impl TxnGroup {
    fn new_overflow(ws: &WorkingSet, mode: EstimationMode) -> Self {
        TxnGroup {
            types: vec![ws.txn_type],
            relations: ws.relations_for(mode),
            estimate_pages: ws.pages_for(mode),
            overflow: true,
        }
    }

    fn new_seeded(ws: &WorkingSet, mode: EstimationMode) -> Self {
        TxnGroup {
            types: vec![ws.txn_type],
            relations: ws.relations_for(mode),
            estimate_pages: ws.pages_for(mode),
            overflow: false,
        }
    }

    /// Pages a candidate adds to this group (its non-overlap component)
    /// under content-aware packing; under size-only packing, its full size.
    fn added_pages(&self, ws: &WorkingSet, mode: EstimationMode) -> u64 {
        match mode {
            EstimationMode::Size => ws.pages_for(mode),
            _ => ws
                .relations_for(mode)
                .iter()
                .filter(|(r, _)| !self.relations.contains_key(*r))
                .map(|(_, p)| *p)
                .sum(),
        }
    }

    /// Pages a candidate shares with this group (zero under size-only
    /// packing, where overlap is not considered).
    fn overlap_pages(&self, ws: &WorkingSet, mode: EstimationMode) -> u64 {
        match mode {
            EstimationMode::Size => 0,
            _ => ws
                .relations_for(mode)
                .iter()
                .filter(|(r, _)| self.relations.contains_key(*r))
                .map(|(_, p)| *p)
                .sum(),
        }
    }

    fn add(&mut self, ws: &WorkingSet, mode: EstimationMode) {
        self.estimate_pages += self.added_pages(ws, mode);
        for (r, p) in ws.relations_for(mode) {
            self.relations.entry(r).or_insert(p);
        }
        self.types.push(ws.txn_type);
    }
}

/// Packs working sets into groups that fit `capacity_pages`, using
/// Best-Fit-Decreasing with the mode's size semantics.
///
/// Returns groups in creation order; group indices are stable [`GroupId`]s.
///
/// # Examples
///
/// ```
/// use std::collections::{BTreeMap, BTreeSet};
/// use tashkent_core::{pack_groups, EstimationMode, WorkingSet};
/// use tashkent_engine::TxnTypeId;
/// use tashkent_storage::RelationId;
///
/// let ws = |id: u32, rels: &[(u32, u64)]| WorkingSet {
///     txn_type: TxnTypeId(id),
///     relations: rels.iter().map(|(r, p)| (RelationId(*r), *p)).collect(),
///     scanned: rels.iter().map(|(r, _)| RelationId(*r)).collect(),
/// };
/// // Two types sharing a 60-page table fit one 100-page bin under SC…
/// let groups = pack_groups(
///     &[ws(0, &[(0, 60), (1, 20)]), ws(1, &[(0, 60), (2, 20)])],
///     EstimationMode::SizeContent,
///     100,
/// );
/// assert_eq!(groups.len(), 1);
/// // …but not under size-only packing (60+20+60+20 = 160 > 100).
/// let groups = pack_groups(
///     &[ws(0, &[(0, 60), (1, 20)]), ws(1, &[(0, 60), (2, 20)])],
///     EstimationMode::Size,
///     100,
/// );
/// assert_eq!(groups.len(), 2);
/// ```
pub fn pack_groups(
    working_sets: &[WorkingSet],
    mode: EstimationMode,
    capacity_pages: u64,
) -> Vec<TxnGroup> {
    // Decreasing size order; ties break by type id for determinism.
    let mut order: Vec<&WorkingSet> = working_sets.iter().collect();
    order.sort_by(|a, b| {
        b.pages_for(mode)
            .cmp(&a.pages_for(mode))
            .then(a.txn_type.cmp(&b.txn_type))
    });

    let mut groups: Vec<TxnGroup> = Vec::new();
    for ws in order {
        if ws.pages_for(mode) > capacity_pages {
            groups.push(TxnGroup::new_overflow(ws, mode));
            continue;
        }
        // Best fit: among non-overflow bins where the added pages fit,
        // prefer maximal overlap, then minimal resulting free space, then
        // lowest index. Overflow bins are closed — lightly loaded groups
        // may still end up sharing a replica later via the allocator's
        // merge step (§2.4), which is how the paper's Table 2 puts the
        // small probing types next to OrderDisplay.
        let mut best: Option<(usize, u64, u64)> = None; // (idx, overlap, free_after)
        for (idx, g) in groups.iter().enumerate() {
            if g.overflow {
                continue;
            }
            let added = g.added_pages(ws, mode);
            if g.estimate_pages + added > capacity_pages {
                continue;
            }
            let overlap = g.overlap_pages(ws, mode);
            let free_after = capacity_pages - g.estimate_pages - added;
            let better = match best {
                None => true,
                Some((_, bo, bf)) => overlap > bo || (overlap == bo && free_after < bf),
            };
            if better {
                best = Some((idx, overlap, free_after));
            }
        }
        match best {
            Some((idx, _, _)) => groups[idx].add(ws, mode),
            None => groups.push(TxnGroup::new_seeded(ws, mode)),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ws(id: u32, rels: &[(u32, u64)]) -> WorkingSet {
        ws_scanned(id, rels, rels.iter().map(|(r, _)| *r).collect::<Vec<_>>())
    }

    fn ws_scanned(id: u32, rels: &[(u32, u64)], scanned: Vec<u32>) -> WorkingSet {
        WorkingSet {
            txn_type: TxnTypeId(id),
            relations: rels.iter().map(|(r, p)| (RelationId(*r), *p)).collect(),
            scanned: scanned.into_iter().map(RelationId).collect::<BTreeSet<_>>(),
        }
    }

    fn types_of(g: &TxnGroup) -> Vec<u32> {
        let mut t: Vec<u32> = g.types.iter().map(|t| t.0).collect();
        t.sort();
        t
    }

    #[test]
    fn every_type_lands_in_exactly_one_group() {
        let sets = vec![
            ws(0, &[(0, 50)]),
            ws(1, &[(1, 30)]),
            ws(2, &[(2, 80)]),
            ws(3, &[(3, 200)]),
        ];
        let groups = pack_groups(&sets, EstimationMode::SizeContent, 100);
        let mut seen: Vec<u32> = groups
            .iter()
            .flat_map(|g| g.types.iter().map(|t| t.0))
            .collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn oversized_type_becomes_overflow_group() {
        let sets = vec![ws(0, &[(0, 500)]), ws(1, &[(1, 10)])];
        let groups = pack_groups(&sets, EstimationMode::SizeContent, 100);
        assert_eq!(groups.len(), 2);
        let overflow = groups.iter().find(|g| g.overflow).unwrap();
        assert_eq!(types_of(overflow), vec![0]);
        assert_eq!(overflow.estimate_pages, 500);
    }

    #[test]
    fn overflow_groups_accept_no_members() {
        // Type 1 would "fit" in the overflow bin arithmetically if overlap
        // were credited, but overflow bins are closed at packing time;
        // sharing only happens later through the allocator's merge step.
        let sets = vec![ws(0, &[(0, 500)]), ws(1, &[(0, 500)])];
        let groups = pack_groups(&sets, EstimationMode::SizeContent, 100);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.overflow));
    }

    #[test]
    fn sc_credits_overlap_s_does_not() {
        let sets = vec![ws(0, &[(0, 60), (1, 20)]), ws(1, &[(0, 60), (2, 20)])];
        let sc = pack_groups(&sets, EstimationMode::SizeContent, 100);
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0].estimate_pages, 100); // 60 + 20 + 20
        let s = pack_groups(&sets, EstimationMode::Size, 100);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn scap_uses_scanned_only_and_overpacks() {
        // Each type references 90 pages but scans only 10: SCAP packs many
        // together where SC would not.
        let sets = vec![
            ws_scanned(0, &[(0, 80), (1, 10)], vec![1]),
            ws_scanned(1, &[(2, 80), (3, 10)], vec![3]),
            ws_scanned(2, &[(4, 80), (5, 10)], vec![5]),
        ];
        let scap = pack_groups(&sets, EstimationMode::SizeContentAccessPattern, 100);
        assert_eq!(scap.len(), 1, "SCAP packs all three by their scans");
        let sc = pack_groups(&sets, EstimationMode::SizeContent, 100);
        assert_eq!(sc.len(), 3, "SC sees the full 90-page footprints");
    }

    #[test]
    fn best_fit_prefers_maximal_overlap() {
        // Bin A = {0:40}, bin B = {1:40}. A new type {1:40, 2:10} overlaps B.
        let sets = vec![
            ws(0, &[(0, 40)]),
            ws(1, &[(1, 40)]),
            ws(2, &[(1, 40), (2, 10)]),
        ];
        let groups = pack_groups(&sets, EstimationMode::SizeContent, 60);
        // Type 2 must share a group with type 1.
        let with2 = groups
            .iter()
            .find(|g| g.types.contains(&TxnTypeId(2)))
            .unwrap();
        assert!(with2.types.contains(&TxnTypeId(1)));
    }

    #[test]
    fn bfd_places_largest_first() {
        // Descending order matters: the 70-page type seeds the first bin.
        let sets = vec![ws(0, &[(0, 30)]), ws(1, &[(1, 70)])];
        let groups = pack_groups(&sets, EstimationMode::SizeContent, 100);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].types[0], TxnTypeId(1), "largest seeds first bin");
    }

    #[test]
    fn non_overflow_bins_respect_capacity() {
        let sets: Vec<WorkingSet> = (0..20)
            .map(|i| ws(i, &[(i, 10 + (i as u64 * 7) % 60)]))
            .collect();
        for mode in [
            EstimationMode::Size,
            EstimationMode::SizeContent,
            EstimationMode::SizeContentAccessPattern,
        ] {
            let groups = pack_groups(&sets, mode, 100);
            for g in &groups {
                if !g.overflow {
                    assert!(g.estimate_pages <= 100, "{mode:?}: {g:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic_for_equal_sizes() {
        let sets = vec![ws(2, &[(0, 50)]), ws(0, &[(1, 50)]), ws(1, &[(2, 50)])];
        let a = pack_groups(&sets, EstimationMode::SizeContent, 100);
        let b = pack_groups(&sets, EstimationMode::SizeContent, 100);
        assert_eq!(a, b);
        // Ties broken by type id: type 0 placed before 1 before 2.
        assert_eq!(a[0].types[0], TxnTypeId(0));
    }

    #[test]
    fn empty_input_gives_no_groups() {
        assert!(pack_groups(&[], EstimationMode::SizeContent, 100).is_empty());
    }
}
