//! Property-based tests for the transaction executor.

use proptest::prelude::*;
use tashkent_engine::{
    Access, PlanStep, Snapshot, TxnExecutor, TxnId, TxnPlan, TxnTypeId, Version, WriteKind,
    WriteSpec,
};
use tashkent_sim::SimRng;
use tashkent_storage::Catalog;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let t0 = c.add_table("t0", 64, 6_400);
    c.add_index("t0_pk", t0, 8, 6_400);
    let t1 = c.add_table("t1", 32, 1_600);
    c.add_index("t1_pk", t1, 4, 1_600);
    c
}

/// An arbitrary plan step over the two-table catalog.
fn step_strategy() -> impl Strategy<Value = PlanStep> {
    let rel = 0u32..4; // ids 0..4 cover both tables and their indices
    prop_oneof![
        rel.clone().prop_map(|r| PlanStep::Read {
            rel: tashkent_storage::RelationId(r),
            access: Access::SeqScan,
        }),
        (rel.clone(), 0.05f64..1.0, any::<bool>()).prop_map(|(r, f, recent)| PlanStep::Read {
            rel: tashkent_storage::RelationId(r),
            access: Access::RangeScan {
                fraction: f,
                recent
            },
        }),
        (rel.clone(), 1u32..10, 0.0f64..0.9).prop_map(|(r, n, theta)| PlanStep::Read {
            rel: tashkent_storage::RelationId(r),
            access: Access::IndexLookup { lookups: n, theta },
        }),
        // Writes only against the tables (ids 0 and 2).
        (prop_oneof![Just(0u32), Just(2u32)], 1u32..5).prop_map(|(r, rows)| PlanStep::Write(
            WriteSpec {
                rel: tashkent_storage::RelationId(r),
                rows,
                kind: WriteKind::Insert,
                theta: 0.0,
            }
        )),
        (prop_oneof![Just(0u32), Just(2u32)], 1u32..5, 0.0f64..0.9).prop_map(|(r, rows, theta)| {
            PlanStep::Write(WriteSpec {
                rel: tashkent_storage::RelationId(r),
                rows,
                kind: WriteKind::Update,
                theta,
            })
        }),
    ]
}

fn run_plan(plan: &TxnPlan, seed: u64) -> (Vec<tashkent_storage::GlobalPageId>, usize, u64) {
    let c = catalog();
    let mut rng = SimRng::seed_from(seed);
    let mut ex = TxnExecutor::new(
        TxnId(1),
        TxnTypeId(0),
        plan.clone(),
        Snapshot::at(Version(0)),
    );
    let mut pages = Vec::new();
    let mut cpu = 0u64;
    while let Some(t) = ex.next_touch(&c, &mut rng) {
        pages.push(t.page);
        cpu += t.cpu_us;
    }
    let ws_len = ex.into_writeset().items.len();
    (pages, ws_len, cpu)
}

proptest! {
    /// Every touched page lies within its relation's bounds.
    #[test]
    fn touches_stay_in_bounds(steps in proptest::collection::vec(step_strategy(), 1..6),
                              seed in 0u64..1_000) {
        let plan = TxnPlan::new(steps);
        let c = catalog();
        let (pages, _, _) = run_plan(&plan, seed);
        for p in pages {
            let rel = c.get(p.rel);
            prop_assert!(p.page < rel.pages.max(1), "{p} beyond {} pages", rel.pages);
        }
    }

    /// The executor is deterministic for a given seed and differs across
    /// seeds only through its random draws.
    #[test]
    fn deterministic_per_seed(steps in proptest::collection::vec(step_strategy(), 1..6),
                              seed in 0u64..1_000) {
        let plan = TxnPlan::new(steps);
        prop_assert_eq!(run_plan(&plan, seed), run_plan(&plan, seed));
    }

    /// Read-only plans never produce writeset items; write plans always do.
    #[test]
    fn writeset_presence_matches_plan(steps in proptest::collection::vec(step_strategy(), 1..6),
                                      seed in 0u64..1_000) {
        let plan = TxnPlan::new(steps);
        let (_, ws_len, _) = run_plan(&plan, seed);
        if plan.is_update() {
            prop_assert!(ws_len > 0, "update plan with empty writeset");
        } else {
            prop_assert_eq!(ws_len, 0, "read-only plan wrote");
        }
    }

    /// CPU cost is at least the base cost plus one unit of work per touch.
    #[test]
    fn cpu_accounting_is_monotone(steps in proptest::collection::vec(step_strategy(), 1..4),
                                  seed in 0u64..1_000) {
        let plan = TxnPlan::new(steps);
        let (pages, _, cpu) = run_plan(&plan, seed);
        if !pages.is_empty() {
            prop_assert!(cpu >= plan.cpu.base_us, "base cost missing");
            prop_assert!(
                cpu >= pages.len() as u64 * plan.cpu.per_page_us.min(plan.cpu.per_write_us),
                "per-touch cost missing"
            );
        }
    }

    /// Sequential scans touch exactly the relation's pages, in order.
    #[test]
    fn seq_scan_is_exact(rel in prop_oneof![Just(0u32), Just(2u32)], seed in 0u64..100) {
        let c = catalog();
        let rid = tashkent_storage::RelationId(rel);
        let plan = TxnPlan::new(vec![PlanStep::Read { rel: rid, access: Access::SeqScan }]);
        let (pages, _, _) = run_plan(&plan, seed);
        let n = c.get(rid).pages;
        prop_assert_eq!(pages.len() as u32, n);
        for (i, p) in pages.iter().enumerate() {
            prop_assert_eq!(p.page, i as u32);
        }
    }
}
