//! Writesets: the unit of update propagation and certification.
//!
//! A writeset is "the core information required to reflect the effects of an
//! update transaction's changes" (§4.1, citing Kemme & Alonso). Here it is
//! the list of (relation, row) pairs the transaction wrote, plus enough
//! metadata to certify it (the snapshot it read from) and to apply it at
//! remote replicas (page locations derive from the catalog). The paper
//! reports an average writeset size of ~275 bytes; the byte model below
//! reproduces that for the TPC-W write shapes.

use tashkent_storage::RelationId;

use crate::types::{Snapshot, TxnId, TxnTypeId};

/// Serialized-size model: fixed header bytes per writeset.
pub const WS_HEADER_BYTES: u64 = 64;
/// Serialized-size model: bytes per written row (identifiers + new values).
pub const WS_ITEM_BYTES: u64 = 70;

/// One written row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WritesetItem {
    /// Relation written.
    pub rel: RelationId,
    /// Row written.
    pub row: u64,
}

/// The writeset of one update transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Writeset {
    /// Transaction instance that produced it.
    pub txn: TxnId,
    /// Transaction type (used by update filtering and metrics).
    pub txn_type: TxnTypeId,
    /// Snapshot the transaction read from (certification input).
    pub snapshot: Snapshot,
    /// Written rows, sorted and deduplicated.
    pub items: Vec<WritesetItem>,
}

impl Writeset {
    /// Builds a writeset, normalizing items (sorted, deduplicated).
    pub fn new(
        txn: TxnId,
        txn_type: TxnTypeId,
        snapshot: Snapshot,
        mut items: Vec<WritesetItem>,
    ) -> Self {
        items.sort_unstable();
        items.dedup();
        Writeset {
            txn,
            txn_type,
            snapshot,
            items,
        }
    }

    /// Whether the writeset is empty (a read-only transaction; never
    /// certified).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Serialized size in bytes under the paper's ~275 B average model.
    pub fn bytes(&self) -> u64 {
        WS_HEADER_BYTES + self.items.len() as u64 * WS_ITEM_BYTES
    }

    /// Relations this writeset touches, deduplicated, in sorted order.
    pub fn relations(&self) -> Vec<RelationId> {
        let mut rels: Vec<RelationId> = self.items.iter().map(|i| i.rel).collect();
        rels.dedup(); // Items are sorted by (rel, row), so dedup suffices.
        rels
    }

    /// Whether two writesets write any common row (write-write conflict).
    ///
    /// Both item lists are sorted, so this is a linear merge.
    pub fn conflicts_with(&self, other: &Writeset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }

    /// Restricts the writeset to relations accepted by `keep`, returning the
    /// filtered items. This is the proxy-side half of update filtering (§3):
    /// the proxy "only forwards the writesets for those tables to the
    /// replica".
    pub fn filtered(&self, keep: impl Fn(RelationId) -> bool) -> Vec<WritesetItem> {
        self.items.iter().copied().filter(|i| keep(i.rel)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Version;

    fn ws(items: Vec<(u32, u64)>) -> Writeset {
        Writeset::new(
            TxnId(1),
            TxnTypeId(0),
            Snapshot::at(Version(0)),
            items
                .into_iter()
                .map(|(r, row)| WritesetItem {
                    rel: RelationId(r),
                    row,
                })
                .collect(),
        )
    }

    #[test]
    fn items_are_normalized() {
        let w = ws(vec![(2, 5), (1, 9), (2, 5), (1, 3)]);
        let rows: Vec<(u32, u64)> = w.items.iter().map(|i| (i.rel.0, i.row)).collect();
        assert_eq!(rows, vec![(1, 3), (1, 9), (2, 5)]);
    }

    #[test]
    fn conflict_requires_same_row() {
        let a = ws(vec![(1, 5), (2, 7)]);
        let b = ws(vec![(1, 6), (2, 7)]);
        let c = ws(vec![(1, 6), (3, 7)]);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a), "conflict must be symmetric");
        assert!(!a.conflicts_with(&c));
        assert!(!c.conflicts_with(&a));
    }

    #[test]
    fn empty_writeset_never_conflicts() {
        let a = ws(vec![]);
        let b = ws(vec![(1, 1)]);
        assert!(a.is_empty());
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
    }

    #[test]
    fn byte_model_matches_paper_scale() {
        // A typical TPC-W update writes ~3 rows → ~274 B, matching the
        // paper's reported 275 B average.
        let w = ws(vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(w.bytes(), WS_HEADER_BYTES + 3 * WS_ITEM_BYTES);
        assert!((200..350).contains(&w.bytes()));
    }

    #[test]
    fn relations_are_deduplicated() {
        let w = ws(vec![(2, 1), (1, 4), (1, 2), (2, 9)]);
        assert_eq!(w.relations(), vec![RelationId(1), RelationId(2)]);
    }

    #[test]
    fn filtered_drops_other_relations() {
        let w = ws(vec![(1, 1), (2, 2), (3, 3)]);
        let kept = w.filtered(|r| r.0 != 2);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|i| i.rel != RelationId(2)));
    }
}
