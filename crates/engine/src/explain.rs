//! `EXPLAIN` output: the plan view the load balancer is allowed to see.
//!
//! The paper's load balancer sends each transaction type through PostgreSQL's
//! `EXPLAIN` and parses "all tables and indices accessed as well as how they
//! are accessed" (§4.2.2). [`ExplainPlan`] is that parsed form: relation
//! names plus a scan-vs-random classification, and nothing else — in
//! particular no ground-truth page-touch counts, keeping the estimator
//! honest about its information channel.

use tashkent_storage::Catalog;

use crate::plan::{Access, PlanStep, TxnPlan};

/// How `EXPLAIN` reports a relation being accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplainAccess {
    /// The relation is read linearly (`Seq Scan` node).
    SeqScan,
    /// The relation is probed at a handful of points (`Index Scan` node).
    IndexScan,
}

/// One referenced relation in an `EXPLAIN` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainStep {
    /// Name of the table or index (resolvable via the catalog).
    pub relation: String,
    /// Linear or random access.
    pub access: ExplainAccess,
}

/// The parsed `EXPLAIN` output for one transaction type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExplainPlan {
    /// Referenced relations in plan order (duplicates collapsed, keeping the
    /// "most linear" access seen for each relation).
    pub steps: Vec<ExplainStep>,
}

impl ExplainPlan {
    /// Renders the plan the way the load balancer would receive it from the
    /// database, given the catalog for name resolution.
    ///
    /// Mapping:
    /// * `SeqScan` and `RangeScan` report as `Seq Scan` — PostgreSQL picks a
    ///   sequential scan for large contiguous ranges, and the paper's SCAP
    ///   estimator treats "linearly scanned" relations as the heavily-used
    ///   lower bound (§2.3).
    /// * `IndexLookup` reports an `Index Scan` on the index **and** random
    ///   access to its base table (the heap fetch).
    /// * Writes report random access to the written relation and its indices
    ///   (index maintenance).
    pub fn from_plan(plan: &TxnPlan, catalog: &Catalog) -> Self {
        let mut out = ExplainPlan::default();
        for step in &plan.steps {
            match step {
                PlanStep::Read { rel, access } => {
                    let name = catalog.get(*rel).name.clone();
                    match access {
                        Access::SeqScan | Access::RangeScan { .. } => {
                            out.push(name, ExplainAccess::SeqScan);
                        }
                        Access::IndexLookup { .. } => {
                            out.push(name, ExplainAccess::IndexScan);
                            // The heap fetch behind an index scan touches the
                            // base table randomly.
                            if let Some(table) = catalog.get(*rel).table {
                                out.push(catalog.get(table).name.clone(), ExplainAccess::IndexScan);
                            }
                        }
                    }
                }
                PlanStep::Write(w) => {
                    out.push(catalog.get(w.rel).name.clone(), ExplainAccess::IndexScan);
                    for idx in catalog.indices_of(w.rel) {
                        out.push(idx.name.clone(), ExplainAccess::IndexScan);
                    }
                }
            }
        }
        out
    }

    fn push(&mut self, relation: String, access: ExplainAccess) {
        if let Some(existing) = self.steps.iter_mut().find(|s| s.relation == relation) {
            // A relation both scanned and probed counts as scanned: the scan
            // dominates its memory footprint.
            if access == ExplainAccess::SeqScan {
                existing.access = ExplainAccess::SeqScan;
            }
        } else {
            self.steps.push(ExplainStep { relation, access });
        }
    }

    /// Names of all referenced relations.
    pub fn referenced(&self) -> impl Iterator<Item = &str> {
        self.steps.iter().map(|s| s.relation.as_str())
    }

    /// Names of relations reported as linearly scanned.
    pub fn scanned(&self) -> impl Iterator<Item = &str> {
        self.steps
            .iter()
            .filter(|s| s.access == ExplainAccess::SeqScan)
            .map(|s| s.relation.as_str())
    }

    /// Pretty text form, close to what `EXPLAIN` prints.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for step in &self.steps {
            let kind = match step.access {
                ExplainAccess::SeqScan => "Seq Scan",
                ExplainAccess::IndexScan => "Index Scan",
            };
            s.push_str(&format!("{} on {}\n", kind, step.relation));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{WriteKind, WriteSpec};
    use tashkent_storage::Catalog;

    fn setup() -> (Catalog, TxnPlan) {
        let mut c = Catalog::new();
        let orders = c.add_table("orders", 100, 10_000);
        let opk = c.add_index("orders_pk", orders, 10, 10_000);
        let item = c.add_table("item", 50, 1_000);
        c.add_index("item_pk", item, 5, 1_000);
        let plan = TxnPlan::new(vec![
            PlanStep::Read {
                rel: opk,
                access: Access::IndexLookup {
                    lookups: 3,
                    theta: 0.0,
                },
            },
            PlanStep::Read {
                rel: item,
                access: Access::SeqScan,
            },
            PlanStep::Write(WriteSpec {
                rel: item,
                rows: 1,
                kind: WriteKind::Update,
                theta: 0.0,
            }),
        ]);
        (c, plan)
    }

    #[test]
    fn index_lookup_reports_index_and_heap() {
        let (c, plan) = setup();
        let ex = ExplainPlan::from_plan(&plan, &c);
        let names: Vec<&str> = ex.referenced().collect();
        assert!(names.contains(&"orders_pk"));
        assert!(names.contains(&"orders"));
    }

    #[test]
    fn scan_dominates_probe_for_same_relation() {
        let (c, plan) = setup();
        let ex = ExplainPlan::from_plan(&plan, &c);
        // `item` is seq-scanned and then written; it must classify as scanned.
        let item = ex.steps.iter().find(|s| s.relation == "item").unwrap();
        assert_eq!(item.access, ExplainAccess::SeqScan);
    }

    #[test]
    fn writes_pull_in_indices_for_maintenance() {
        let (c, plan) = setup();
        let ex = ExplainPlan::from_plan(&plan, &c);
        let names: Vec<&str> = ex.referenced().collect();
        assert!(names.contains(&"item_pk"), "index maintenance missing");
    }

    #[test]
    fn scanned_filter_returns_only_seq_scans() {
        let (c, plan) = setup();
        let ex = ExplainPlan::from_plan(&plan, &c);
        let scanned: Vec<&str> = ex.scanned().collect();
        assert_eq!(scanned, vec!["item"]);
    }

    #[test]
    fn no_duplicate_relations() {
        let (c, plan) = setup();
        let ex = ExplainPlan::from_plan(&plan, &c);
        let mut names: Vec<&str> = ex.referenced().collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn render_is_explain_like() {
        let (c, plan) = setup();
        let text = ExplainPlan::from_plan(&plan, &c).render();
        assert!(text.contains("Index Scan on orders_pk"));
        assert!(text.contains("Seq Scan on item"));
    }

    #[test]
    fn range_scan_reports_as_seq_scan() {
        let mut c = Catalog::new();
        let t = c.add_table("order_line", 1000, 100_000);
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: t,
            access: Access::RangeScan {
                fraction: 0.3,
                recent: true,
            },
        }]);
        let ex = ExplainPlan::from_plan(&plan, &c);
        assert_eq!(ex.scanned().collect::<Vec<_>>(), vec!["order_line"]);
    }
}
