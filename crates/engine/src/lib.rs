//! Plan-driven transaction execution engine.
//!
//! The paper's transactions are parameterized SQL against PostgreSQL; their
//! memory behaviour is "dominated by the tables and indices needed for
//! processing" (§1). This crate models exactly that level: a transaction
//! type carries a [`TxnPlan`] — an ordered list of relation accesses
//! (sequential scans, index lookups, range scans) and row writes — and a
//! [`TxnExecutor`] turns one transaction instance into a stream of page
//! touches with CPU costs. The replica layer feeds those touches through its
//! buffer pool and disk.
//!
//! The engine also produces [`ExplainPlan`]s — the `EXPLAIN` output the load
//! balancer is allowed to inspect (§4.2.2) — and [`Writeset`]s, the unit of
//! update propagation and certification under generalized snapshot isolation.

pub mod executor;
pub mod explain;
pub mod plan;
pub mod types;
pub mod writeset;

pub use executor::{PageTouch, TxnExecutor};
pub use explain::{ExplainAccess, ExplainPlan, ExplainStep};
pub use plan::{Access, CpuCosts, PlanStep, TxnPlan, TxnType, WriteKind, WriteSpec};
pub use types::{Snapshot, TxnId, TxnTypeId, Version};
pub use writeset::{Writeset, WritesetItem, WS_HEADER_BYTES, WS_ITEM_BYTES};
