//! Core identifier and versioning types for transaction processing.

use std::fmt;

/// Identifies a transaction *type* — one of the application's fixed set of
/// parameterized interactions (e.g. TPC-W `BestSeller`).
///
/// The paper assumes "the database application has a fixed set of
/// parameterized transaction types" (§1); the application supplies the type
/// with every connection request, and all load-balancing decisions key on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnTypeId(pub u32);

impl fmt::Display for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txntype{}", self.0)
    }
}

/// Identifies one transaction *instance* within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// A position in the certifier's global commit order.
///
/// Version `n` means "the database state after the first `n` committed
/// update transactions have been applied". A replica's state is always a
/// consistent prefix of the certifier's log (§4.1), so a single counter
/// fully describes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The initial (empty-log) version.
    pub const ZERO: Version = Version(0);

    /// The next version in the commit order.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The snapshot a transaction reads from under generalized snapshot
/// isolation: the replica-local database version at the time it started.
///
/// GSI lets a transaction observe a (possibly slightly old) snapshot; at
/// certification the transaction conflicts iff some update transaction
/// committed a writeset intersecting its own after `version` (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Database version the transaction observes.
    pub version: Version,
}

impl Snapshot {
    /// Creates a snapshot at `version`.
    pub fn at(version: Version) -> Self {
        Snapshot { version }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_and_next() {
        assert!(Version(1) < Version(2));
        assert_eq!(Version::ZERO.next(), Version(1));
        assert_eq!(Version(41).next(), Version(42));
    }

    #[test]
    fn displays_are_stable() {
        assert_eq!(TxnTypeId(3).to_string(), "txntype3");
        assert_eq!(TxnId(9).to_string(), "txn9");
        assert_eq!(Version(7).to_string(), "v7");
    }

    #[test]
    fn snapshot_carries_version() {
        let s = Snapshot::at(Version(5));
        assert_eq!(s.version, Version(5));
    }
}
