//! The transaction executor: turns a plan into a stream of page touches.
//!
//! A [`TxnExecutor`] holds the progress of one running transaction instance.
//! The replica repeatedly calls [`TxnExecutor::next_touch`], feeds the page
//! through its buffer pool (and disk on a miss), charges the CPU cost, and
//! continues until the stream ends. Written rows accumulate into the
//! transaction's [`Writeset`].

use tashkent_sim::SimRng;
use tashkent_storage::{Catalog, GlobalPageId, RelationId};

use crate::plan::{Access, PlanStep, TxnPlan, WriteKind, WriteSpec};
use crate::types::{Snapshot, TxnId, TxnTypeId};
use crate::writeset::{Writeset, WritesetItem};

/// One page reference produced by the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageTouch {
    /// The page referenced.
    pub page: GlobalPageId,
    /// CPU time consumed processing the page, in µs.
    pub cpu_us: u64,
    /// When `Some`, the touch dirties the page and records the row in the
    /// transaction's writeset.
    pub write: Option<WritesetItem>,
}

/// Progress within the current plan step.
#[derive(Debug, Clone)]
enum StepState {
    /// Not yet initialized for the current step.
    Fresh,
    /// Scanning pages `next..end` of a relation.
    Scanning {
        rel: RelationId,
        next: u32,
        end: u32,
    },
    /// `remaining` index lookups; each lookup emits its index-page touches
    /// then the heap-page touch.
    Lookups {
        remaining: u32,
        /// Queued touches for the in-progress lookup.
        pending_heap: Option<GlobalPageId>,
    },
    /// `remaining` row writes; index-maintenance page touches for the
    /// in-progress row are queued in `pending_index`.
    Writes {
        remaining: u32,
        pending_index: Vec<GlobalPageId>,
    },
}

/// Executes one transaction instance against a replica's storage.
#[derive(Debug, Clone)]
pub struct TxnExecutor {
    txn: TxnId,
    txn_type: TxnTypeId,
    plan: TxnPlan,
    snapshot: Snapshot,
    step: usize,
    state: StepState,
    base_charged: bool,
    items: Vec<WritesetItem>,
}

impl TxnExecutor {
    /// Starts executing `plan` for transaction `txn` at `snapshot`.
    pub fn new(txn: TxnId, txn_type: TxnTypeId, plan: TxnPlan, snapshot: Snapshot) -> Self {
        TxnExecutor {
            txn,
            txn_type,
            plan,
            snapshot,
            step: 0,
            state: StepState::Fresh,
            base_charged: false,
            items: Vec::new(),
        }
    }

    /// The transaction instance id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The transaction type id.
    pub fn txn_type(&self) -> TxnTypeId {
        self.txn_type
    }

    /// The snapshot this transaction reads from.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot
    }

    /// Produces the next page touch, or `None` when the plan is exhausted.
    ///
    /// The very first touch additionally carries the plan's fixed base CPU
    /// cost.
    pub fn next_touch(&mut self, catalog: &Catalog, rng: &mut SimRng) -> Option<PageTouch> {
        loop {
            if self.step >= self.plan.steps.len() {
                return None;
            }
            if matches!(self.state, StepState::Fresh) {
                self.state = self.init_step(catalog, rng);
            }
            match self.advance(catalog, rng) {
                Some(mut touch) => {
                    if !self.base_charged {
                        touch.cpu_us += self.plan.cpu.base_us;
                        self.base_charged = true;
                    }
                    return Some(touch);
                }
                None => {
                    self.step += 1;
                    self.state = StepState::Fresh;
                }
            }
        }
    }

    fn init_step(&self, catalog: &Catalog, rng: &mut SimRng) -> StepState {
        match &self.plan.steps[self.step] {
            PlanStep::Read { rel, access } => match access {
                Access::SeqScan => {
                    let pages = catalog.get(*rel).pages;
                    StepState::Scanning {
                        rel: *rel,
                        next: 0,
                        end: pages,
                    }
                }
                Access::RangeScan { fraction, recent } => {
                    let pages = catalog.get(*rel).pages;
                    let span = ((pages as f64 * fraction).ceil() as u32).clamp(1, pages.max(1));
                    let start = if *recent {
                        pages.saturating_sub(span)
                    } else {
                        let slack = pages.saturating_sub(span);
                        rng.uniform_u64(0, slack as u64 + 1) as u32
                    };
                    StepState::Scanning {
                        rel: *rel,
                        next: start,
                        end: start + span,
                    }
                }
                Access::IndexLookup { lookups, .. } => StepState::Lookups {
                    remaining: *lookups,
                    pending_heap: None,
                },
            },
            PlanStep::Write(w) => StepState::Writes {
                remaining: w.rows,
                pending_index: Vec::new(),
            },
        }
    }

    fn advance(&mut self, catalog: &Catalog, rng: &mut SimRng) -> Option<PageTouch> {
        let cpu = self.plan.cpu;
        match &mut self.state {
            StepState::Fresh => unreachable!("state initialized before advance"),
            StepState::Scanning { rel, next, end } => {
                if next >= end {
                    return None;
                }
                let page = GlobalPageId::new(*rel, *next);
                *next += 1;
                Some(PageTouch {
                    page,
                    cpu_us: cpu.per_page_us,
                    write: None,
                })
            }
            StepState::Lookups {
                remaining,
                pending_heap,
            } => {
                // Emit the heap fetch queued by the previous index touch.
                if let Some(page) = pending_heap.take() {
                    return Some(PageTouch {
                        page,
                        cpu_us: cpu.per_page_us,
                        write: None,
                    });
                }
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let (rel, theta) = match &self.plan.steps[self.step] {
                    PlanStep::Read {
                        rel,
                        access: Access::IndexLookup { theta, .. },
                    } => (*rel, *theta),
                    _ => unreachable!("Lookups state only for IndexLookup steps"),
                };
                let index = catalog.get(rel);
                let row = rng.zipf_rank(index.rows.max(1), theta);
                // Touch a leaf page of the index now…
                let leaf = index.page_of_row(row);
                // …and queue the heap fetch on the base table (if this is an
                // index; a direct table probe touches only the table page).
                if let Some(table) = index.table {
                    *pending_heap = Some(catalog.get(table).page_of_row(row));
                }
                Some(PageTouch {
                    page: leaf,
                    cpu_us: cpu.per_page_us,
                    write: None,
                })
            }
            StepState::Writes {
                remaining,
                pending_index,
            } => {
                // Emit queued index-maintenance touches for the previous row
                // (each write also dirties the relation's index pages —
                // PostgreSQL 8.0 updates every index on every row version).
                if let Some(page) = pending_index.pop() {
                    return Some(PageTouch {
                        page,
                        cpu_us: cpu.per_page_us,
                        write: Some(WritesetItem {
                            rel: page.rel,
                            row: 0, // Index pages carry no writeset row.
                        }),
                    });
                }
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let spec = match &self.plan.steps[self.step] {
                    PlanStep::Write(w) => *w,
                    _ => unreachable!("Writes state only for Write steps"),
                };
                let row = choose_written_row(&spec, catalog, rng);
                let rel = catalog.get(spec.rel);
                let page = rel.page_of_row(row);
                let item = WritesetItem { rel: spec.rel, row };
                self.items.push(item);
                *pending_index = catalog
                    .indices_of(spec.rel)
                    .map(|idx| idx.page_of_row(row))
                    .collect();
                Some(PageTouch {
                    page,
                    cpu_us: cpu.per_write_us,
                    write: Some(item),
                })
            }
        }
    }

    /// Finishes the transaction, producing its writeset (empty for read-only
    /// transactions).
    pub fn into_writeset(self) -> Writeset {
        Writeset::new(self.txn, self.txn_type, self.snapshot, self.items)
    }
}

/// Picks the row an insert or update writes.
///
/// Inserts allocate fresh row ids past the relation's end — they can never
/// produce a write-write conflict (two inserts are distinct rows), and
/// `page_of_row` clamps them onto the relation's tail page, giving the
/// append locality (and write coalescing) of a real heap. Updates pick an
/// existing row across the relation with the spec's skew.
fn choose_written_row(spec: &WriteSpec, catalog: &Catalog, rng: &mut SimRng) -> u64 {
    let rel = catalog.get(spec.rel);
    let rows = rel.rows.max(1);
    match spec.kind {
        WriteKind::Insert => rows + rng.uniform_u64(0, 1 << 40),
        WriteKind::Update => rng.zipf_rank(rows, spec.theta),
        WriteKind::UpdateTail { window } => {
            let w = window.clamp(1, rows);
            rows - 1 - rng.uniform_u64(0, w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CpuCosts;
    use crate::types::Version;
    use tashkent_sim::SimRng;
    use tashkent_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let orders = c.add_table("orders", 100, 10_000);
        c.add_index("orders_pk", orders, 10, 10_000);
        c.add_table("item", 20, 1_000);
        c
    }

    fn run(plan: TxnPlan, catalog: &Catalog) -> (Vec<PageTouch>, Writeset) {
        let mut rng = SimRng::seed_from(1);
        let mut ex = TxnExecutor::new(TxnId(7), TxnTypeId(0), plan, Snapshot::at(Version(0)));
        let mut touches = Vec::new();
        while let Some(t) = ex.next_touch(catalog, &mut rng) {
            touches.push(t);
        }
        (touches, ex.into_writeset())
    }

    #[test]
    fn seq_scan_touches_every_page_in_order() {
        let c = catalog();
        let item = c.by_name("item").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: item,
            access: Access::SeqScan,
        }]);
        let (touches, ws) = run(plan, &c);
        assert_eq!(touches.len(), 20);
        for (i, t) in touches.iter().enumerate() {
            assert_eq!(t.page, GlobalPageId::new(item, i as u32));
        }
        assert!(ws.is_empty());
    }

    #[test]
    fn base_cpu_charged_once_on_first_touch() {
        let c = catalog();
        let item = c.by_name("item").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: item,
            access: Access::SeqScan,
        }])
        .with_cpu(CpuCosts {
            base_us: 1_000,
            per_page_us: 10,
            per_write_us: 0,
        });
        let (touches, _) = run(plan, &c);
        assert_eq!(touches[0].cpu_us, 1_010);
        assert!(touches[1..].iter().all(|t| t.cpu_us == 10));
    }

    #[test]
    fn recent_range_scan_is_anchored_at_tail() {
        let c = catalog();
        let orders = c.by_name("orders").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: orders,
            access: Access::RangeScan {
                fraction: 0.25,
                recent: true,
            },
        }]);
        let (touches, _) = run(plan, &c);
        assert_eq!(touches.len(), 25);
        assert_eq!(touches.first().unwrap().page.page, 75);
        assert_eq!(touches.last().unwrap().page.page, 99);
    }

    #[test]
    fn random_range_scans_differ_across_instances() {
        let c = catalog();
        let orders = c.by_name("orders").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: orders,
            access: Access::RangeScan {
                fraction: 0.1,
                recent: false,
            },
        }]);
        let mut rng = SimRng::seed_from(42);
        let mut starts = std::collections::BTreeSet::new();
        for i in 0..20 {
            let mut ex = TxnExecutor::new(
                TxnId(i),
                TxnTypeId(0),
                plan.clone(),
                Snapshot::at(Version(0)),
            );
            let first = ex.next_touch(&c, &mut rng).unwrap();
            starts.insert(first.page.page);
        }
        assert!(starts.len() > 5, "random ranges should vary: {starts:?}");
    }

    #[test]
    fn index_lookup_touches_leaf_then_heap() {
        let c = catalog();
        let opk = c.by_name("orders_pk").unwrap().id;
        let orders = c.by_name("orders").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: opk,
            access: Access::IndexLookup {
                lookups: 5,
                theta: 0.0,
            },
        }]);
        let (touches, _) = run(plan, &c);
        assert_eq!(touches.len(), 10);
        for pair in touches.chunks(2) {
            assert_eq!(pair[0].page.rel, opk);
            assert_eq!(pair[1].page.rel, orders);
        }
    }

    #[test]
    fn writes_accumulate_into_writeset() {
        let c = catalog();
        let item = c.by_name("item").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Write(WriteSpec {
            rel: item,
            rows: 3,
            kind: WriteKind::Update,
            theta: 0.0,
        })]);
        let (touches, ws) = run(plan, &c);
        assert_eq!(touches.len(), 3);
        assert!(touches.iter().all(|t| t.write.is_some()));
        assert_eq!(ws.txn, TxnId(7));
        assert!(!ws.is_empty());
        assert!(ws.items.len() <= 3, "dedup may collapse repeats");
        assert!(ws.items.iter().all(|i| i.rel == item));
    }

    #[test]
    fn inserts_land_on_tail_page_with_fresh_rows() {
        let c = catalog();
        let orders = c.by_name("orders").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Write(WriteSpec {
            rel: orders,
            rows: 8,
            kind: WriteKind::Insert,
            theta: 0.0,
        })]);
        let (touches, ws) = run(plan, &c);
        let orders = c.by_name("orders").unwrap().id;
        let opk = c.by_name("orders_pk").unwrap().id;
        // Heap appends clamp onto the table's last page; each insert also
        // maintains the index (its tail page).
        for t in &touches {
            if t.page.rel == orders {
                assert_eq!(t.page.page, 99, "insert off the tail page: {t:?}");
            } else {
                assert_eq!(t.page.rel, opk, "unexpected relation: {t:?}");
                assert_eq!(t.page.page, 9, "index append off tail: {t:?}");
            }
        }
        assert_eq!(touches.len(), 16, "8 heap + 8 index touches");
        // Fresh row ids beyond the existing rows: inserts cannot conflict.
        assert!(ws.items.iter().all(|i| i.row >= 10_000));
    }

    #[test]
    fn multi_step_plans_execute_in_order() {
        let c = catalog();
        let item = c.by_name("item").unwrap().id;
        let orders = c.by_name("orders").unwrap().id;
        let plan = TxnPlan::new(vec![
            PlanStep::Read {
                rel: item,
                access: Access::SeqScan,
            },
            PlanStep::Write(WriteSpec {
                rel: orders,
                rows: 1,
                kind: WriteKind::Insert,
                theta: 0.0,
            }),
        ]);
        let (touches, ws) = run(plan, &c);
        // 20 scan pages + 1 heap write + 1 index-maintenance touch.
        assert_eq!(touches.len(), 22);
        assert!(touches[..20].iter().all(|t| t.page.rel == item));
        assert_eq!(touches[20].page.rel, orders);
        assert_eq!(ws.items.len(), 1, "index touches add no writeset items");
    }

    #[test]
    fn empty_plan_finishes_immediately() {
        let c = catalog();
        let mut rng = SimRng::seed_from(0);
        let mut ex = TxnExecutor::new(
            TxnId(0),
            TxnTypeId(0),
            TxnPlan::new(vec![]),
            Snapshot::at(Version(0)),
        );
        assert_eq!(ex.next_touch(&c, &mut rng), None);
        assert!(ex.into_writeset().is_empty());
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let c = catalog();
        let opk = c.by_name("orders_pk").unwrap().id;
        let plan = TxnPlan::new(vec![PlanStep::Read {
            rel: opk,
            access: Access::IndexLookup {
                lookups: 10,
                theta: 0.5,
            },
        }]);
        let collect = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let mut ex = TxnExecutor::new(
                TxnId(0),
                TxnTypeId(0),
                plan.clone(),
                Snapshot::at(Version(0)),
            );
            let mut v = Vec::new();
            while let Some(t) = ex.next_touch(&c, &mut rng) {
                v.push(t.page);
            }
            v
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }
}
