//! Transaction plans: the memory- and CPU-relevant shape of a transaction type.

use tashkent_storage::{Catalog, RelationId};

use crate::types::TxnTypeId;

/// How a plan step reads a relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// Read every page of the relation in page order (PostgreSQL `Seq Scan`).
    SeqScan,
    /// Read a contiguous fraction of the relation in page order.
    ///
    /// `recent = true` anchors the range at the end of the relation (e.g.
    /// "orders from the last 3.5 days" in TPC-W BestSeller), which makes
    /// repeated executions touch the *same* pages and therefore cache well.
    /// `recent = false` picks a random start, modelling parameter-dependent
    /// ranges that only overlap partially across executions.
    RangeScan {
        /// Fraction of the relation's pages covered, in `(0, 1]`.
        fraction: f64,
        /// Anchor at the tail of the relation instead of a random offset.
        recent: bool,
    },
    /// `lookups` point queries via an index: each touches one or two index
    /// pages and one heap page chosen by the lookup key.
    IndexLookup {
        /// Number of point lookups in this step.
        lookups: u32,
        /// Skew of the looked-up rows (0 = uniform, →1 = highly skewed).
        theta: f64,
    },
}

/// What a write step does to a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Append new rows; they land on the relation's tail pages, so repeated
    /// inserts coalesce into few dirty pages.
    Insert,
    /// Update existing rows chosen by key across the whole relation (with
    /// the spec's zipf skew) — products, sellers, other shared entities.
    Update,
    /// Update a row uniformly drawn from the relation's last `window` rows —
    /// the "active session" pattern (a client updates *its own* recent cart
    /// or customer row): strong page locality, negligible write-write
    /// conflicts.
    UpdateTail {
        /// Size of the active tail window, in rows.
        window: u64,
    },
}

/// A write performed by a transaction against one relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteSpec {
    /// The relation written.
    pub rel: RelationId,
    /// Rows inserted or updated.
    pub rows: u32,
    /// Insert versus update.
    pub kind: WriteKind,
    /// Row-choice skew for updates (0 = uniform over the relation).
    pub theta: f64,
}

/// One step of a transaction plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Read access to a relation.
    Read {
        /// Relation read.
        rel: RelationId,
        /// How it is read.
        access: Access,
    },
    /// Write access to a relation (also touches the pages it dirties, and
    /// each written row is recorded in the transaction's writeset).
    Write(WriteSpec),
}

/// CPU cost model for a transaction type.
///
/// Costs are charged by the executor: a fixed per-transaction cost plus a
/// per-page cost for every page processed (hit or miss — the CPU work of
/// scanning rows happens either way) and a per-written-row cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// Fixed parse/plan/commit overhead per transaction, in µs.
    pub base_us: u64,
    /// Per page processed, in µs.
    pub per_page_us: u64,
    /// Per row written, in µs.
    pub per_write_us: u64,
}

impl Default for CpuCosts {
    /// ~50 µs fixed, ~20 µs per 8 KB page (≈ 100 rows), ~200 µs per write —
    /// calibrated to a 2.4 GHz 2007 Xeon running PostgreSQL.
    fn default() -> Self {
        CpuCosts {
            base_us: 50,
            per_page_us: 20,
            per_write_us: 200,
        }
    }
}

/// The full plan of a transaction type.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnPlan {
    /// Ordered steps.
    pub steps: Vec<PlanStep>,
    /// CPU cost model.
    pub cpu: CpuCosts,
}

impl TxnPlan {
    /// Creates a plan from steps with default CPU costs.
    pub fn new(steps: Vec<PlanStep>) -> Self {
        TxnPlan {
            steps,
            cpu: CpuCosts::default(),
        }
    }

    /// Replaces the CPU cost model.
    pub fn with_cpu(mut self, cpu: CpuCosts) -> Self {
        self.cpu = cpu;
        self
    }

    /// Whether any step writes (the transaction is an update transaction).
    pub fn is_update(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, PlanStep::Write(_)))
    }

    /// All relations referenced by the plan (reads and writes), deduplicated,
    /// in first-reference order.
    pub fn referenced_relations(&self) -> Vec<RelationId> {
        let mut out = Vec::new();
        for step in &self.steps {
            let rel = match step {
                PlanStep::Read { rel, .. } => *rel,
                PlanStep::Write(w) => w.rel,
            };
            if !out.contains(&rel) {
                out.push(rel);
            }
        }
        out
    }

    /// Relations written by the plan, deduplicated, in first-write order.
    pub fn written_relations(&self) -> Vec<RelationId> {
        let mut out = Vec::new();
        for step in &self.steps {
            if let PlanStep::Write(w) = step {
                if !out.contains(&w.rel) {
                    out.push(w.rel);
                }
            }
        }
        out
    }

    /// Expected number of pages processed per execution, given a catalog.
    ///
    /// Used for calibration and sanity tests; the executor is the ground
    /// truth.
    pub fn expected_pages(&self, catalog: &Catalog) -> f64 {
        let mut pages = 0.0;
        for step in &self.steps {
            match step {
                PlanStep::Read { rel, access } => {
                    let n = catalog.get(*rel).pages as f64;
                    pages += match access {
                        Access::SeqScan => n,
                        Access::RangeScan { fraction, .. } => n * fraction,
                        // Root-ish index page + leaf + heap per lookup ≈ 3,
                        // counted on the indexed table's side.
                        Access::IndexLookup { lookups, .. } => *lookups as f64 * 3.0,
                    };
                }
                PlanStep::Write(w) => pages += w.rows as f64,
            }
        }
        pages
    }
}

/// A named transaction type: id, name, and plan.
#[derive(Debug, Clone)]
pub struct TxnType {
    /// Stable identifier (index into the workload's type table).
    pub id: TxnTypeId,
    /// Human-readable name (e.g. `"BestSeller"`).
    pub name: String,
    /// The execution plan.
    pub plan: TxnPlan,
}

impl TxnType {
    /// Creates a transaction type.
    pub fn new(id: TxnTypeId, name: &str, plan: TxnPlan) -> Self {
        TxnType {
            id,
            name: name.to_string(),
            plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_storage::Catalog;

    fn catalog() -> (Catalog, RelationId, RelationId, RelationId) {
        let mut c = Catalog::new();
        let orders = c.add_table("orders", 100, 10_000);
        let item = c.add_table("item", 50, 1_000);
        let idx = c.add_index("orders_pk", orders, 10, 10_000);
        (c, orders, item, idx)
    }

    #[test]
    fn is_update_detects_writes() {
        let (_, orders, item, _) = catalog();
        let ro = TxnPlan::new(vec![PlanStep::Read {
            rel: item,
            access: Access::SeqScan,
        }]);
        assert!(!ro.is_update());
        let rw = TxnPlan::new(vec![
            PlanStep::Read {
                rel: item,
                access: Access::SeqScan,
            },
            PlanStep::Write(WriteSpec {
                rel: orders,
                rows: 1,
                kind: WriteKind::Insert,
                theta: 0.0,
            }),
        ]);
        assert!(rw.is_update());
    }

    #[test]
    fn referenced_relations_dedup_in_order() {
        let (_, orders, item, idx) = catalog();
        let plan = TxnPlan::new(vec![
            PlanStep::Read {
                rel: idx,
                access: Access::IndexLookup {
                    lookups: 2,
                    theta: 0.0,
                },
            },
            PlanStep::Read {
                rel: orders,
                access: Access::SeqScan,
            },
            PlanStep::Write(WriteSpec {
                rel: orders,
                rows: 1,
                kind: WriteKind::Update,
                theta: 0.0,
            }),
            PlanStep::Read {
                rel: item,
                access: Access::SeqScan,
            },
        ]);
        assert_eq!(plan.referenced_relations(), vec![idx, orders, item]);
        assert_eq!(plan.written_relations(), vec![orders]);
    }

    #[test]
    fn expected_pages_accounts_access_kinds() {
        let (c, orders, item, idx) = catalog();
        let plan = TxnPlan::new(vec![
            PlanStep::Read {
                rel: orders,
                access: Access::SeqScan,
            },
            PlanStep::Read {
                rel: item,
                access: Access::RangeScan {
                    fraction: 0.5,
                    recent: true,
                },
            },
            PlanStep::Read {
                rel: idx,
                access: Access::IndexLookup {
                    lookups: 4,
                    theta: 0.0,
                },
            },
        ]);
        assert_eq!(plan.expected_pages(&c), 100.0 + 25.0 + 12.0);
    }

    #[test]
    fn default_cpu_costs_in_expected_band() {
        let c = CpuCosts::default();
        assert!(c.per_page_us >= 5 && c.per_page_us <= 100);
        assert!(c.base_us < 10_000);
    }
}
