//! Property-based tests for GSI certification.

use proptest::prelude::*;
use tashkent_certifier::{Certifier, CertifyOutcome};
use tashkent_engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent_sim::SimTime;
use tashkent_storage::RelationId;

fn ws(txn: u64, snap: u64, items: &[(u32, u64)]) -> Writeset {
    Writeset::new(
        TxnId(txn),
        TxnTypeId(0),
        Snapshot::at(Version(snap)),
        items
            .iter()
            .map(|(r, row)| WritesetItem {
                rel: RelationId(*r),
                row: *row,
            })
            .collect(),
    )
}

proptest! {
    /// Commit versions are dense and strictly increasing, regardless of the
    /// conflict pattern.
    #[test]
    fn versions_are_dense(writes in proptest::collection::vec(
        (0u64..5 /* snapshot lag */, proptest::collection::vec((0u32..3, 0u64..30), 1..4)),
        1..40,
    )) {
        let mut cert = Certifier::default();
        let mut last = 0u64;
        for (i, (lag, items)) in writes.iter().enumerate() {
            let head = cert.version().0;
            let snap = head.saturating_sub(*lag);
            let outcome = cert.certify(
                SimTime::from_micros(i as u64),
                ws(i as u64, snap, items),
            );
            if let CertifyOutcome::Committed { version, .. } = outcome {
                prop_assert_eq!(version.0, last + 1, "versions must be dense");
                last = version.0;
            }
        }
        prop_assert_eq!(cert.version().0, last);
    }

    /// The log suffix returned for any `after` version contains exactly the
    /// versions `(after, head]`.
    #[test]
    fn log_suffixes_are_exact(n in 1u64..60, after in 0u64..80) {
        let mut cert = Certifier::default();
        for i in 0..n {
            let head = cert.version().0;
            cert.certify(SimTime::from_micros(i), ws(i, head, &[(0, i)]));
        }
        let suffix = cert.writesets_since(Version(after));
        let expect_len = cert.version().0.saturating_sub(after) as usize;
        prop_assert_eq!(suffix.len(), expect_len);
        for (k, cw) in suffix.iter().enumerate() {
            prop_assert_eq!(cw.version.0, after + 1 + k as u64);
        }
    }

    /// Pruning the conflict index at any horizon at or below every active
    /// snapshot never changes certification outcomes.
    #[test]
    fn pruning_preserves_outcomes(rows in proptest::collection::vec(0u64..20, 5..30),
                                  horizon_frac in 0.0f64..1.0) {
        // Build the same history twice; prune one; compare the outcome of a
        // probe whose snapshot is at or above the prune horizon.
        let build = || {
            let mut cert = Certifier::default();
            for (i, row) in rows.iter().enumerate() {
                let head = cert.version().0;
                cert.certify(SimTime::from_micros(i as u64), ws(i as u64, head, &[(0, *row)]));
            }
            cert
        };
        let mut pruned = build();
        let mut intact = build();
        let head = pruned.version().0;
        let horizon = (head as f64 * horizon_frac) as u64;
        pruned.prune_index(Version(horizon));
        // Probe every row with a snapshot at the horizon (a legal snapshot:
        // nothing older is active).
        for row in 0..20u64 {
            let probe = |c: &mut Certifier| {
                matches!(
                    c.certify(SimTime::from_secs(1), ws(10_000 + row, horizon, &[(0, row)])),
                    CertifyOutcome::Conflict
                )
            };
            prop_assert_eq!(probe(&mut pruned), probe(&mut intact), "row {}", row);
            // Keep the two logs in lockstep: committing in one must commit
            // in the other (same outcome ⇒ same state evolution).
        }
    }

    /// Group-commit durability is monotone in arrival time.
    #[test]
    fn durability_is_monotone(times in proptest::collection::vec(0u64..100_000, 2..20)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut cert = Certifier::default();
        let mut last_durable = 0u64;
        for (i, t) in sorted.iter().enumerate() {
            let head = cert.version().0;
            let out = cert.certify(SimTime::from_micros(*t), ws(i as u64, head, &[(0, i as u64)]));
            if let CertifyOutcome::Committed { durable_at, .. } = out {
                prop_assert!(durable_at.as_micros() >= *t);
                prop_assert!(durable_at.as_micros() >= last_durable);
                last_durable = durable_at.as_micros();
            }
        }
    }
}
