//! The replicated certifier group.
//!
//! "For the certifier, we use a leader and two backups for fault tolerance"
//! (§4.4). The group model keeps the leader's log logically replicated to
//! the backups (the simulation shares one log object; what matters for the
//! experiments is the failover behaviour and its latency, not byte-level
//! replication), elects the next member on leader failure, and reports
//! whether the service is available.

use tashkent_sim::SimTime;

/// Events the group reports to the cluster layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupEvent {
    /// A new leader took over after a failure.
    FailedOver {
        /// Index of the new leader.
        leader: usize,
        /// When the new leader starts serving.
        available_at: SimTime,
    },
    /// No members remain; certification is unavailable.
    Unavailable,
}

/// Membership and leadership of the certifier group.
#[derive(Debug, Clone)]
pub struct CertifierGroup {
    alive: Vec<bool>,
    leader: usize,
    failover_delay: SimTime,
    failovers: u64,
}

impl CertifierGroup {
    /// Creates a group of `members` certifiers (leader is member 0).
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    pub fn new(members: usize, failover_delay: SimTime) -> Self {
        assert!(members > 0, "certifier group needs at least one member");
        CertifierGroup {
            alive: vec![true; members],
            leader: 0,
            failover_delay,
            failovers: 0,
        }
    }

    /// A paper-shaped group: one leader, two backups, 200 ms failover.
    pub fn paper_default() -> Self {
        Self::new(3, SimTime::from_millis(200))
    }

    /// Index of the current leader, if any member is alive.
    pub fn leader(&self) -> Option<usize> {
        self.alive
            .get(self.leader)
            .copied()
            .unwrap_or(false)
            .then_some(self.leader)
    }

    /// Number of live members.
    pub fn live_members(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Times the group has failed over.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Whether certification is currently served.
    pub fn is_available(&self) -> bool {
        self.leader().is_some()
    }

    /// Kills member `idx` at time `now`; if it was the leader, a backup is
    /// elected after the failover delay.
    pub fn kill(&mut self, now: SimTime, idx: usize) -> Option<GroupEvent> {
        if idx >= self.alive.len() || !self.alive[idx] {
            return None;
        }
        self.alive[idx] = false;
        if idx != self.leader {
            return None;
        }
        match self.alive.iter().position(|a| *a) {
            Some(next) => {
                self.leader = next;
                self.failovers += 1;
                Some(GroupEvent::FailedOver {
                    leader: next,
                    available_at: now + self.failover_delay.as_micros(),
                })
            }
            None => Some(GroupEvent::Unavailable),
        }
    }

    /// Restarts member `idx` (it rejoins as a backup).
    pub fn restart(&mut self, idx: usize) {
        if idx < self.alive.len() {
            self.alive[idx] = true;
        }
    }

    /// Restarts member `idx` at time `now`, electing it leader if the group
    /// had no live members (the queue-and-wait drain point): the revived
    /// member pays the election delay before serving. Rejoining a group
    /// that still has a leader is an ordinary backup [`Self::restart`].
    pub fn revive(&mut self, now: SimTime, idx: usize) -> Option<GroupEvent> {
        if idx >= self.alive.len() || self.alive[idx] {
            return None;
        }
        let was_down = !self.is_available();
        self.alive[idx] = true;
        if !was_down {
            return None;
        }
        self.leader = idx;
        self.failovers += 1;
        Some(GroupEvent::FailedOver {
            leader: idx,
            available_at: now + self.failover_delay.as_micros(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_three_members() {
        let g = CertifierGroup::paper_default();
        assert_eq!(g.live_members(), 3);
        assert_eq!(g.leader(), Some(0));
        assert!(g.is_available());
    }

    #[test]
    fn backup_failure_keeps_leader() {
        let mut g = CertifierGroup::paper_default();
        assert_eq!(g.kill(SimTime::ZERO, 2), None);
        assert_eq!(g.leader(), Some(0));
        assert_eq!(g.failovers(), 0);
    }

    #[test]
    fn leader_failure_elects_backup_after_delay() {
        let mut g = CertifierGroup::paper_default();
        let ev = g.kill(SimTime::from_secs(5), 0).unwrap();
        match ev {
            GroupEvent::FailedOver {
                leader,
                available_at,
            } => {
                assert_eq!(leader, 1);
                assert_eq!(available_at, SimTime::from_secs(5) + 200_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(g.leader(), Some(1));
        assert_eq!(g.failovers(), 1);
    }

    #[test]
    fn all_dead_is_unavailable() {
        let mut g = CertifierGroup::paper_default();
        g.kill(SimTime::ZERO, 1);
        g.kill(SimTime::ZERO, 2);
        let ev = g.kill(SimTime::ZERO, 0).unwrap();
        assert_eq!(ev, GroupEvent::Unavailable);
        assert!(!g.is_available());
        assert_eq!(g.leader(), None);
    }

    #[test]
    fn restart_rejoins_as_backup() {
        let mut g = CertifierGroup::paper_default();
        g.kill(SimTime::ZERO, 0);
        g.restart(0);
        // Member 0 is alive again but member 1 keeps leadership.
        assert_eq!(g.leader(), Some(1));
        assert_eq!(g.live_members(), 3);
    }

    #[test]
    fn killing_dead_member_is_noop() {
        let mut g = CertifierGroup::paper_default();
        g.kill(SimTime::ZERO, 2);
        assert_eq!(g.kill(SimTime::ZERO, 2), None);
        assert_eq!(g.live_members(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_rejected() {
        CertifierGroup::new(0, SimTime::ZERO);
    }

    #[test]
    fn revive_elects_the_restarted_member_when_the_group_was_down() {
        let mut g = CertifierGroup::paper_default();
        g.kill(SimTime::ZERO, 1);
        g.kill(SimTime::ZERO, 2);
        assert_eq!(g.kill(SimTime::ZERO, 0), Some(GroupEvent::Unavailable));
        let ev = g.revive(SimTime::from_secs(3), 2).unwrap();
        assert_eq!(
            ev,
            GroupEvent::FailedOver {
                leader: 2,
                available_at: SimTime::from_secs(3) + 200_000,
            }
        );
        assert_eq!(g.leader(), Some(2));
        assert!(g.is_available());
    }

    #[test]
    fn revive_into_a_live_group_is_a_backup_rejoin() {
        let mut g = CertifierGroup::paper_default();
        g.kill(SimTime::ZERO, 0);
        assert_eq!(g.revive(SimTime::from_secs(1), 0), None);
        assert_eq!(g.leader(), Some(1), "existing leader keeps the lease");
        assert_eq!(g.live_members(), 3);
        // Reviving a live member is a no-op.
        assert_eq!(g.revive(SimTime::from_secs(2), 1), None);
    }
}
