//! The replicated certifier: GSI certification, global commit order, and
//! update propagation.
//!
//! In Tashkent (§4.1), replicas execute update transactions locally and send
//! the writeset to a certifier at commit time. The certifier detects
//! write-write conflicts against writesets committed since the transaction's
//! snapshot, appends successful writesets to a persistent log (establishing
//! the global commit order), and ships remote writesets back to replicas so
//! every copy converges. Durability lives here — replicas never `fsync` —
//! which is what makes the replicas' disk channels efficient and the paper's
//! techniques all the more interesting when they still pay off.
//!
//! Modules:
//! * [`certifier`] — the certification state machine and the commit log,
//! * [`sharded`] — per-relation-group certification shards (group-local
//!   conflict checks; the decide half stays with the coordinator),
//! * [`propagation`] — the pull/prod trigger policy (500 ms pull, 25-commit
//!   prod),
//! * [`group`] — the leader/backup certifier group used for fault tolerance.

pub mod certifier;
pub mod group;
pub mod propagation;
pub mod sharded;

pub use certifier::{
    Certifier, CertifierParams, CertifierStats, CertifyOutcome, CommittedWriteset,
};
pub use group::{CertifierGroup, GroupEvent};
pub use propagation::{PropagationAction, PropagationPolicy};
pub use sharded::{CertShard, ShardCheck};
