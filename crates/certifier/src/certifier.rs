//! Certification and the global commit log.

use std::collections::HashMap;

use tashkent_engine::{Version, Writeset, WritesetItem};
use tashkent_sim::SimTime;

/// Timing parameters for the certifier's service model.
#[derive(Debug, Clone, Copy)]
pub struct CertifierParams {
    /// CPU time to run one conflict check, in µs.
    pub check_us: u64,
    /// Latency of one group-commit log write, in µs.
    pub log_write_us: u64,
    /// Width of the group-commit window, in µs: checks completing within the
    /// same window share one log write.
    pub group_window_us: u64,
}

impl Default for CertifierParams {
    /// ~50 µs check, ~1 ms log write, 2 ms group-commit window.
    fn default() -> Self {
        CertifierParams {
            check_us: 50,
            log_write_us: 1_000,
            group_window_us: 2_000,
        }
    }
}

/// Counters describing certifier activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CertifierStats {
    /// Writesets certified successfully.
    pub committed: u64,
    /// Writesets rejected for write-write conflicts.
    pub conflicts: u64,
    /// Total bytes appended to the persistent log.
    pub log_bytes: u64,
}

/// A writeset that passed certification, stamped with its commit version.
#[derive(Debug, Clone)]
pub struct CommittedWriteset {
    /// Position in the global commit order (1-based: the first committed
    /// writeset has version 1).
    pub version: Version,
    /// The writeset itself.
    pub writeset: Writeset,
}

/// Outcome of certifying one writeset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyOutcome {
    /// No conflict: the writeset is committed at `version` and will be
    /// durable at `durable_at`.
    Committed {
        /// Assigned global commit version.
        version: Version,
        /// When the group-commit log write completes.
        durable_at: SimTime,
    },
    /// A write-write conflict with a transaction committed after the
    /// writeset's snapshot; the transaction must abort.
    Conflict,
}

/// The certification state machine plus the persistent commit log.
///
/// Certification under GSI: a writeset with snapshot version `s` commits iff
/// no writeset with version `> s` intersects it (write-write conflict
/// detection, §4.1). The full log is retained — it is the paper's persistent
/// log, also used for replica recovery — while an item→last-writer index
/// keeps certification O(|writeset|).
///
/// # Examples
///
/// ```
/// use tashkent_certifier::{Certifier, CertifyOutcome};
/// use tashkent_engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
/// use tashkent_sim::SimTime;
/// use tashkent_storage::RelationId;
///
/// let mut cert = Certifier::default();
/// let item = WritesetItem { rel: RelationId(0), row: 7 };
/// let ws = |snap| Writeset::new(TxnId(0), TxnTypeId(0), Snapshot::at(snap), vec![item]);
///
/// // First writer commits...
/// assert!(matches!(cert.certify(SimTime::ZERO, ws(Version(0))),
///                  CertifyOutcome::Committed { version: Version(1), .. }));
/// // ...a second writer with a pre-commit snapshot conflicts.
/// assert_eq!(cert.certify(SimTime::ZERO, ws(Version(0))), CertifyOutcome::Conflict);
/// ```
#[derive(Debug, Clone)]
pub struct Certifier {
    params: CertifierParams,
    /// Full commit log; entry `i` has version `i + 1`.
    log: Vec<CommittedWriteset>,
    /// Last writer version per item, for O(1) conflict probes.
    last_writer: HashMap<WritesetItem, Version>,
    stats: CertifierStats,
    /// Completion horizon of the certification CPU (serial service).
    busy_until: SimTime,
}

impl Default for Certifier {
    fn default() -> Self {
        Self::new(CertifierParams::default())
    }
}

impl Certifier {
    /// Creates a certifier with the given service parameters.
    pub fn new(params: CertifierParams) -> Self {
        Certifier {
            params,
            log: Vec::new(),
            last_writer: HashMap::new(),
            stats: CertifierStats::default(),
            busy_until: SimTime::ZERO,
        }
    }

    /// Latest committed version (log head).
    pub fn version(&self) -> Version {
        Version(self.log.len() as u64)
    }

    /// Activity counters.
    pub fn stats(&self) -> CertifierStats {
        self.stats
    }

    /// Certifies `ws` arriving at time `now`.
    ///
    /// Read-only writesets (empty item lists) never reach the certifier in
    /// Tashkent; passing one here commits it without consuming a version.
    pub fn certify(&mut self, now: SimTime, ws: Writeset) -> CertifyOutcome {
        // Serial service: requests queue behind one another.
        let start = self.busy_until.max(now);
        let checked_at = start + self.params.check_us;
        self.busy_until = checked_at;

        if ws.is_empty() {
            return CertifyOutcome::Committed {
                version: self.version(),
                durable_at: checked_at,
            };
        }

        let snapshot = ws.snapshot.version;
        let conflict = ws
            .items
            .iter()
            .any(|item| self.last_writer.get(item).is_some_and(|v| *v > snapshot));
        if conflict {
            self.stats.conflicts += 1;
            return CertifyOutcome::Conflict;
        }

        let version = self.version().next();
        for item in &ws.items {
            self.last_writer.insert(*item, version);
        }
        self.stats.committed += 1;
        self.stats.log_bytes += ws.bytes();
        self.log.push(CommittedWriteset {
            version,
            writeset: ws,
        });

        // Group commit: the log write completes at the end of the window the
        // check fell into, plus the write itself.
        let w = self.params.group_window_us.max(1);
        let boundary = checked_at.as_micros().div_ceil(w) * w;
        let durable_at = SimTime::from_micros(boundary + self.params.log_write_us);
        CertifyOutcome::Committed {
            version,
            durable_at,
        }
    }

    /// Committed writesets with versions in `(after, head]` — what a replica
    /// at version `after` must apply to catch up.
    pub fn writesets_since(&self, after: Version) -> &[CommittedWriteset] {
        let idx = (after.0 as usize).min(self.log.len());
        &self.log[idx..]
    }

    /// How many commits a replica at `applied` is behind the log head.
    pub fn lag_of(&self, applied: Version) -> u64 {
        self.version().0.saturating_sub(applied.0)
    }

    /// Rebuilds the conflict index keeping only writers newer than
    /// `horizon` (the oldest snapshot still active anywhere). Bounds index
    /// growth on long runs without touching the persistent log.
    pub fn prune_index(&mut self, horizon: Version) {
        self.last_writer.retain(|_, v| *v > horizon);
    }

    /// Number of entries in the conflict index (for tests and metrics).
    pub fn index_len(&self) -> usize {
        self.last_writer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_engine::{Snapshot, TxnId, TxnTypeId};
    use tashkent_storage::RelationId;

    fn ws(txn: u64, snap: u64, items: &[(u32, u64)]) -> Writeset {
        Writeset::new(
            TxnId(txn),
            TxnTypeId(0),
            Snapshot::at(Version(snap)),
            items
                .iter()
                .map(|(r, row)| WritesetItem {
                    rel: RelationId(*r),
                    row: *row,
                })
                .collect(),
        )
    }

    fn commit_version(out: CertifyOutcome) -> Version {
        match out {
            CertifyOutcome::Committed { version, .. } => version,
            CertifyOutcome::Conflict => panic!("unexpected conflict"),
        }
    }

    #[test]
    fn versions_are_sequential() {
        let mut c = Certifier::default();
        let v1 = commit_version(c.certify(SimTime::ZERO, ws(1, 0, &[(0, 1)])));
        let v2 = commit_version(c.certify(SimTime::ZERO, ws(2, 1, &[(0, 2)])));
        assert_eq!(v1, Version(1));
        assert_eq!(v2, Version(2));
        assert_eq!(c.version(), Version(2));
    }

    #[test]
    fn conflict_on_same_row_with_stale_snapshot() {
        let mut c = Certifier::default();
        c.certify(SimTime::ZERO, ws(1, 0, &[(0, 7)]));
        assert_eq!(
            c.certify(SimTime::ZERO, ws(2, 0, &[(0, 7)])),
            CertifyOutcome::Conflict
        );
        assert_eq!(c.stats().conflicts, 1);
    }

    #[test]
    fn no_conflict_when_snapshot_is_fresh() {
        let mut c = Certifier::default();
        c.certify(SimTime::ZERO, ws(1, 0, &[(0, 7)]));
        // Snapshot 1 already saw the first commit → same row is fine.
        let out = c.certify(SimTime::ZERO, ws(2, 1, &[(0, 7)]));
        assert_eq!(commit_version(out), Version(2));
    }

    #[test]
    fn disjoint_rows_never_conflict() {
        let mut c = Certifier::default();
        c.certify(SimTime::ZERO, ws(1, 0, &[(0, 1), (1, 2)]));
        let out = c.certify(SimTime::ZERO, ws(2, 0, &[(0, 2), (2, 2)]));
        assert_eq!(commit_version(out), Version(2));
    }

    #[test]
    fn conflicting_writeset_consumes_no_version() {
        let mut c = Certifier::default();
        c.certify(SimTime::ZERO, ws(1, 0, &[(0, 1)]));
        c.certify(SimTime::ZERO, ws(2, 0, &[(0, 1)]));
        assert_eq!(c.version(), Version(1));
        let out = c.certify(SimTime::ZERO, ws(3, 1, &[(0, 9)]));
        assert_eq!(commit_version(out), Version(2));
    }

    #[test]
    fn writesets_since_returns_suffix() {
        let mut c = Certifier::default();
        for i in 0..5 {
            c.certify(SimTime::ZERO, ws(i, i, &[(0, i)]));
        }
        let tail = c.writesets_since(Version(3));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].version, Version(4));
        assert_eq!(tail[1].version, Version(5));
        assert!(c.writesets_since(Version(99)).is_empty());
        assert_eq!(c.writesets_since(Version(0)).len(), 5);
    }

    #[test]
    fn lag_reflects_distance_to_head() {
        let mut c = Certifier::default();
        for i in 0..30 {
            c.certify(SimTime::ZERO, ws(i, i, &[(0, i)]));
        }
        assert_eq!(c.lag_of(Version(30)), 0);
        assert_eq!(c.lag_of(Version(5)), 25);
    }

    #[test]
    fn empty_writeset_commits_without_version() {
        let mut c = Certifier::default();
        let out = c.certify(SimTime::ZERO, ws(1, 0, &[]));
        assert!(matches!(
            out,
            CertifyOutcome::Committed {
                version: Version(0),
                ..
            }
        ));
        assert_eq!(c.version(), Version(0));
    }

    #[test]
    fn group_commit_batches_durability() {
        let params = CertifierParams {
            check_us: 10,
            log_write_us: 500,
            group_window_us: 2_000,
        };
        let mut c = Certifier::new(params);
        let d1 = match c.certify(SimTime::from_micros(100), ws(1, 0, &[(0, 1)])) {
            CertifyOutcome::Committed { durable_at, .. } => durable_at,
            _ => panic!(),
        };
        let d2 = match c.certify(SimTime::from_micros(200), ws(2, 1, &[(0, 2)])) {
            CertifyOutcome::Committed { durable_at, .. } => durable_at,
            _ => panic!(),
        };
        // Both checks fall in the first 2 ms window → same durability point.
        assert_eq!(d1, d2);
        assert_eq!(d1.as_micros(), 2_500);
    }

    #[test]
    fn serial_service_queues_requests() {
        let params = CertifierParams {
            check_us: 1_000,
            log_write_us: 0,
            group_window_us: 1,
        };
        let mut c = Certifier::new(params);
        c.certify(SimTime::ZERO, ws(1, 0, &[(0, 1)]));
        let out = c.certify(SimTime::ZERO, ws(2, 1, &[(0, 2)]));
        match out {
            CertifyOutcome::Committed { durable_at, .. } => {
                // Second check starts after the first completes (1 ms).
                assert!(durable_at.as_micros() >= 2_000);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn prune_index_keeps_recent_writers_only() {
        let mut c = Certifier::default();
        for i in 0..10 {
            c.certify(SimTime::ZERO, ws(i, i, &[(0, i)]));
        }
        assert_eq!(c.index_len(), 10);
        c.prune_index(Version(8));
        assert_eq!(c.index_len(), 2);
        // Conflicts against surviving index entries still detected.
        assert_eq!(
            c.certify(SimTime::ZERO, ws(99, 8, &[(0, 9)])),
            CertifyOutcome::Conflict
        );
    }

    #[test]
    fn log_bytes_accumulate() {
        let mut c = Certifier::default();
        c.certify(SimTime::ZERO, ws(1, 0, &[(0, 1), (0, 2)]));
        let expected = ws(1, 0, &[(0, 1), (0, 2)]).bytes();
        assert_eq!(c.stats().log_bytes, expected);
    }
}
