//! Update-propagation triggers.
//!
//! Writesets reach replicas primarily as a side effect of certification
//! responses. Tashkent adds two triggers for replicas that are not
//! certifying (§4.1): the proxy *pulls* new updates every 500 ms when idle,
//! and the certifier *prods* replicas that fall 25 or more commits behind.
//! This module is the pure decision logic; the cluster layer turns the
//! decisions into messages.

use tashkent_engine::Version;
use tashkent_sim::SimTime;

/// When and why a replica should fetch updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationAction {
    /// Nothing to do yet.
    None,
    /// The replica has been idle past the pull period; it should pull.
    Pull,
    /// The replica lags at least the prod threshold; the certifier should
    /// send it a prod notification.
    Prod,
}

/// The trigger policy (pull period + prod threshold).
#[derive(Debug, Clone, Copy)]
pub struct PropagationPolicy {
    /// Idle time after which the proxy pulls (paper: 500 ms).
    pub pull_period: SimTime,
    /// Commit lag at which the certifier prods a replica (paper: 25).
    pub prod_threshold: u64,
}

impl Default for PropagationPolicy {
    fn default() -> Self {
        PropagationPolicy {
            pull_period: SimTime::from_millis(500),
            prod_threshold: 25,
        }
    }
}

impl PropagationPolicy {
    /// Decides the next action for a replica.
    ///
    /// * `now` — current time,
    /// * `last_contact` — when the replica last exchanged writesets with the
    ///   certifier (certification request or pull),
    /// * `applied` — the replica's applied version,
    /// * `head` — the certifier's log head.
    ///
    /// Prodding takes priority over pulling: a badly lagging replica is
    /// notified immediately regardless of its pull timer.
    pub fn decide(
        &self,
        now: SimTime,
        last_contact: SimTime,
        applied: Version,
        head: Version,
    ) -> PropagationAction {
        let lag = head.0.saturating_sub(applied.0);
        if lag >= self.prod_threshold {
            return PropagationAction::Prod;
        }
        if lag > 0 && now.saturating_since(last_contact) >= self.pull_period.as_micros() {
            return PropagationAction::Pull;
        }
        PropagationAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: PropagationPolicy = PropagationPolicy {
        pull_period: SimTime::from_millis(500),
        prod_threshold: 25,
    };

    #[test]
    fn up_to_date_replica_does_nothing() {
        let a = POLICY.decide(
            SimTime::from_secs(10),
            SimTime::ZERO,
            Version(40),
            Version(40),
        );
        assert_eq!(a, PropagationAction::None);
    }

    #[test]
    fn small_lag_waits_for_pull_period() {
        let now = SimTime::from_millis(300);
        let a = POLICY.decide(now, SimTime::ZERO, Version(10), Version(12));
        assert_eq!(a, PropagationAction::None);
        let later = SimTime::from_millis(500);
        let b = POLICY.decide(later, SimTime::ZERO, Version(10), Version(12));
        assert_eq!(b, PropagationAction::Pull);
    }

    #[test]
    fn recent_contact_defers_pull() {
        let a = POLICY.decide(
            SimTime::from_millis(600),
            SimTime::from_millis(400),
            Version(10),
            Version(12),
        );
        assert_eq!(a, PropagationAction::None);
    }

    #[test]
    fn big_lag_prods_immediately() {
        let a = POLICY.decide(
            SimTime::from_millis(1),
            SimTime::ZERO,
            Version(0),
            Version(25),
        );
        assert_eq!(a, PropagationAction::Prod);
    }

    #[test]
    fn prod_threshold_is_inclusive() {
        let just_below = POLICY.decide(
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            Version(0),
            Version(24),
        );
        assert_ne!(just_below, PropagationAction::Prod);
        let at = POLICY.decide(
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            Version(0),
            Version(25),
        );
        assert_eq!(at, PropagationAction::Prod);
    }

    #[test]
    fn defaults_match_paper() {
        let p = PropagationPolicy::default();
        assert_eq!(p.pull_period, SimTime::from_millis(500));
        assert_eq!(p.prod_threshold, 25);
    }
}
