//! Per-relation-group certification shards.
//!
//! Sharded certification (Sutra & Shapiro direction) splits the single
//! total-order certifier into one shard per relation group: each shard keeps
//! its own conflict index and its own serial service queue, keyed by a
//! *group-local sequence number* (`gseq`) instead of the global version.
//!
//! The split is sound because every item belongs to exactly one group, so
//! the global conflict probe `last_writer[item] > snapshot` is equivalent to
//! the group-local probe `gindex[item] > gsnap`, where `gsnap` is the number
//! of group-local commits with global version ≤ the snapshot (the global →
//! group-local order embedding is monotone). Global version assignment, the
//! persistent log, and durability accounting stay with the coordinator-side
//! decide step ([`crate::Certifier`]'s group-commit formula); a shard only
//! answers "does this writeset conflict within my group, and when did the
//! check finish?" — which is exactly the part that can run on a pool worker.

use std::collections::HashMap;

use tashkent_engine::{Writeset, WritesetItem};
use tashkent_sim::SimTime;

use crate::certifier::CertifierParams;

/// Result of one shard-local conflict check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCheck {
    /// Whether the writeset passed certification within this group.
    pub committed: bool,
    /// When the check's CPU work completed on this shard.
    pub checked_at: SimTime,
    /// The arrival time after waiting out a failover gap
    /// (`now.max(available_at)`).
    pub eff_now: SimTime,
}

/// One relation group's certification state: a group-local conflict index
/// and the shard's serial service queue.
///
/// With a single group this degenerates to exactly [`crate::Certifier`]'s
/// check path: `gseq` coincides with the global version, so outcomes and
/// check-completion times are bit-identical (the decide step reproduces the
/// version/durability half).
#[derive(Debug, Clone)]
pub struct CertShard {
    params: CertifierParams,
    /// Group-local last-writer index: item → `gseq` of its last writer.
    gindex: HashMap<WritesetItem, u64>,
    /// Group-local commits so far; the next commit gets `next_gseq + 1`.
    next_gseq: u64,
    /// Completion horizon of this shard's certification CPU.
    busy_until: SimTime,
    /// Earliest time this shard's leader serves (failover gaps).
    available_at: SimTime,
}

impl CertShard {
    /// Creates an empty shard with the given service parameters.
    pub fn new(params: CertifierParams) -> Self {
        CertShard {
            params,
            gindex: HashMap::new(),
            next_gseq: 0,
            busy_until: SimTime::ZERO,
            available_at: SimTime::ZERO,
        }
    }

    /// Group-local commits so far.
    pub fn gseq(&self) -> u64 {
        self.next_gseq
    }

    /// Earliest serving time (failover gaps push it forward).
    pub fn available_at(&self) -> SimTime {
        self.available_at
    }

    /// Pushes the serving horizon forward after a leader failover.
    pub fn set_available_at(&mut self, at: SimTime) {
        self.available_at = self.available_at.max(at);
    }

    /// Charges one check's CPU time against this shard's serial queue,
    /// returning `(eff_now, checked_at)`.
    pub fn reserve_check(&mut self, now: SimTime) -> (SimTime, SimTime) {
        let eff_now = now.max(self.available_at);
        let start = self.busy_until.max(eff_now);
        let checked_at = start + self.params.check_us;
        self.busy_until = checked_at;
        (eff_now, checked_at)
    }

    /// Conflict probe against the group-local index: `true` iff any item's
    /// last writer is newer than `gsnap` group-local commits.
    pub fn probe<'a>(&self, items: impl IntoIterator<Item = &'a WritesetItem>, gsnap: u64) -> bool {
        items
            .into_iter()
            .any(|item| self.gindex.get(item).is_some_and(|g| *g > gsnap))
    }

    /// Records one group-local commit writing `items`.
    pub fn install<'a>(&mut self, items: impl IntoIterator<Item = &'a WritesetItem>) {
        self.next_gseq += 1;
        for item in items {
            self.gindex.insert(*item, self.next_gseq);
        }
    }

    /// Runs a full single-group check: serial service, conflict probe, and
    /// (on commit) the group-local install. Empty writesets commit without
    /// consuming a `gseq`, mirroring [`crate::Certifier::certify`].
    pub fn check(&mut self, now: SimTime, ws: &Writeset, gsnap: u64) -> ShardCheck {
        let (eff_now, checked_at) = self.reserve_check(now);
        if ws.is_empty() {
            return ShardCheck {
                committed: true,
                checked_at,
                eff_now,
            };
        }
        if self.probe(&ws.items, gsnap) {
            return ShardCheck {
                committed: false,
                checked_at,
                eff_now,
            };
        }
        self.install(&ws.items);
        ShardCheck {
            committed: true,
            checked_at,
            eff_now,
        }
    }

    /// Number of entries in the group-local conflict index.
    pub fn index_len(&self) -> usize {
        self.gindex.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::{Certifier, CertifyOutcome};
    use tashkent_engine::{Snapshot, TxnId, TxnTypeId, Version};
    use tashkent_storage::RelationId;

    fn ws(txn: u64, snap: u64, items: &[(u32, u64)]) -> Writeset {
        Writeset::new(
            TxnId(txn),
            TxnTypeId(0),
            Snapshot::at(Version(snap)),
            items
                .iter()
                .map(|(r, row)| WritesetItem {
                    rel: RelationId(*r),
                    row: *row,
                })
                .collect(),
        )
    }

    /// The 1-group degenerate case must reproduce [`Certifier::certify`]
    /// bit for bit: same outcomes, same versions, same durability times —
    /// with the shard doing the check and a hand-rolled coordinator doing
    /// the decide (global version + group-commit durability).
    #[test]
    fn one_group_shard_matches_the_unified_certifier_exactly() {
        let params = CertifierParams::default();
        let mut unified = Certifier::new(params);
        let mut shard = CertShard::new(params);
        // Coordinator-side state for the sharded decide: the global log
        // length and the group's commit-version list (identical with one
        // group, but modelled separately as the real link does).
        let mut global_len: u64 = 0;
        let mut group_versions: Vec<u64> = Vec::new();

        // A sequence with commits, conflicts (stale snapshots on hot rows),
        // empties, and bursty same-instant arrivals.
        type Req = (u64, u64, Vec<(u32, u64)>);
        let reqs: Vec<Req> = vec![
            (1, 0, vec![(0, 1), (1, 5)]),
            (2, 0, vec![(0, 1)]), // conflict with txn 1
            (3, 1, vec![(0, 1)]), // fresh snapshot, same row: fine
            (4, 0, vec![]),       // read-only
            (5, 1, vec![(2, 9)]),
            (6, 1, vec![(1, 5)]),         // conflict with txn 1
            (7, 3, vec![(0, 1), (2, 9)]), // fresh again
        ];
        for (i, (txn, snap, items)) in reqs.into_iter().enumerate() {
            let now = SimTime::from_micros(30 * (i as u64 / 2));
            let w = ws(txn, snap, &items);
            let expected = unified.certify(now, w.clone());

            // Sharded path: gsnap = commits in this group with version ≤
            // snapshot (partition point of the ascending version list).
            let gsnap = group_versions.partition_point(|v| *v <= snap) as u64;
            let out = shard.check(now, &w, gsnap);
            let got = if !out.committed {
                CertifyOutcome::Conflict
            } else if w.is_empty() {
                CertifyOutcome::Committed {
                    version: Version(global_len),
                    durable_at: out.checked_at,
                }
            } else {
                global_len += 1;
                group_versions.push(global_len);
                let win = params.group_window_us.max(1);
                let boundary = out.checked_at.as_micros().div_ceil(win) * win;
                CertifyOutcome::Committed {
                    version: Version(global_len),
                    durable_at: SimTime::from_micros(boundary + params.log_write_us),
                }
            };
            assert_eq!(got, expected, "request {txn} diverged");
        }
        assert_eq!(shard.gseq(), unified.version().0);
        assert_eq!(shard.index_len(), unified.index_len());
    }

    #[test]
    fn probe_and_install_split_matches_the_combined_check() {
        let mut a = CertShard::new(CertifierParams::default());
        let mut b = CertShard::new(CertifierParams::default());
        let w = ws(1, 0, &[(0, 7), (3, 2)]);
        let combined = a.check(SimTime::ZERO, &w, 0);
        assert!(combined.committed);
        // The split form (used by the cross-group vote/decide round).
        let (eff_now, checked_at) = b.reserve_check(SimTime::ZERO);
        assert_eq!(
            (eff_now, checked_at),
            (combined.eff_now, combined.checked_at)
        );
        assert!(!b.probe(&w.items, 0));
        b.install(&w.items);
        assert_eq!(b.gseq(), a.gseq());
        // Both now reject a stale writer on the same row.
        let stale = ws(2, 0, &[(0, 7)]);
        assert!(!a.check(SimTime::from_micros(500), &stale, 0).committed);
        assert!(b.probe(&stale.items, 0));
    }

    #[test]
    fn availability_gap_defers_service_not_arrival() {
        let mut s = CertShard::new(CertifierParams::default());
        s.set_available_at(SimTime::from_millis(200));
        let out = s.check(SimTime::from_micros(10), &ws(1, 0, &[(0, 1)]), 0);
        assert!(out.committed);
        assert_eq!(out.eff_now, SimTime::from_millis(200));
        assert_eq!(out.checked_at, SimTime::from_millis(200) + 50);
        // Pushing availability backwards is a no-op (max semantics).
        s.set_available_at(SimTime::from_millis(100));
        assert_eq!(s.available_at(), SimTime::from_millis(200));
    }

    #[test]
    fn empty_writeset_consumes_no_gseq() {
        let mut s = CertShard::new(CertifierParams::default());
        let out = s.check(SimTime::ZERO, &ws(1, 0, &[]), 0);
        assert!(out.committed);
        assert_eq!(s.gseq(), 0);
    }

    #[test]
    fn serial_service_queues_checks_within_the_shard() {
        let params = CertifierParams {
            check_us: 1_000,
            log_write_us: 0,
            group_window_us: 1,
        };
        let mut s = CertShard::new(params);
        let first = s.check(SimTime::ZERO, &ws(1, 0, &[(0, 1)]), 0);
        let second = s.check(SimTime::ZERO, &ws(2, 1, &[(0, 2)]), 1);
        assert_eq!(first.checked_at.as_micros(), 1_000);
        assert_eq!(second.checked_at.as_micros(), 2_000);
    }
}
