//! Exponentially-weighted moving average.
//!
//! The paper's load balancer consumes "smoothed" CPU and disk utilizations
//! from per-replica daemons (§2.4); this is the smoother.

/// An exponentially-weighted moving average over a scalar signal.
///
/// `alpha` is the weight of each new observation; smaller values smooth more.
/// Until the first observation arrives, [`Ewma::value`] reports zero.
///
/// # Examples
///
/// ```
/// use tashkent_sim::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// e.observe(10.0);
/// e.observe(20.0);
/// assert_eq!(e.value(), 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother with observation weight `alpha` clamped to `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// Feeds one observation.
    ///
    /// The first observation initializes the average directly, avoiding a
    /// long warm-up from zero.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value, or zero before any observation.
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether at least one observation has been recorded.
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }

    /// Clears the average back to the unprimed state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_primed());
        e.observe(42.0);
        assert_eq!(e.value(), 42.0);
        assert!(e.is_primed());
    }

    #[test]
    fn converges_toward_constant_signal() {
        let mut e = Ewma::new(0.3);
        e.observe(0.0);
        for _ in 0..50 {
            e.observe(100.0);
        }
        assert!((e.value() - 100.0).abs() < 1e-4);
    }

    #[test]
    fn smooths_oscillation() {
        let mut e = Ewma::new(0.2);
        for i in 0..100 {
            e.observe(if i % 2 == 0 { 0.0 } else { 100.0 });
        }
        let v = e.value();
        assert!((30.0..70.0).contains(&v), "value {v}");
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.observe(1.0);
        e.observe(9.0);
        assert_eq!(e.value(), 9.0);
    }

    #[test]
    fn reset_unprimes() {
        let mut e = Ewma::new(0.5);
        e.observe(5.0);
        e.reset();
        assert!(!e.is_primed());
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    fn alpha_is_clamped() {
        let mut e = Ewma::new(7.0);
        e.observe(1.0);
        e.observe(3.0);
        // Clamped to 1.0: tracks the latest observation exactly.
        assert_eq!(e.value(), 3.0);
    }
}
