//! Deterministic discrete-event simulation kernel for the Tashkent+ reproduction.
//!
//! The paper evaluates Tashkent+ on a 16-machine cluster. This workspace
//! replaces the physical testbed with a deterministic discrete-event
//! simulation: every component (clients, load balancer, replicas, certifier)
//! exchanges timestamped events drawn from an [`EventQueue`], time is a
//! microsecond counter ([`SimTime`]), and all randomness flows through a
//! seeded [`SimRng`] so that every experiment is exactly reproducible.
//!
//! This crate holds only the simulation primitives; domain logic lives in the
//! higher crates (`tashkent-storage`, `tashkent-engine`, ...).

pub mod ewma;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use ewma::Ewma;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats};
pub use time::SimTime;
