//! Deterministic random number generation for simulations.

/// A seeded random source shared by all stochastic parts of a simulation.
///
/// All randomness in an experiment (client think times, index page choices,
/// row selections, ...) flows through a single `SimRng` seeded from the
/// experiment configuration, making runs bit-for-bit reproducible. The
/// generator is xoshiro256** seeded via splitmix64 — no external
/// dependencies, stable output across platforms and toolchains.
///
/// # Examples
///
/// ```
/// use tashkent_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; useful for giving each
    /// component its own stream so adding draws in one component does not
    /// perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            // Plain modulo reduction: the bias of a 64-bit draw against
            // simulation-sized ranges is negligible, and it keeps the
            // stream simple to reason about.
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Exponentially distributed value with the given mean (inverse
    /// transform sampling). Returns 0 for non-positive means.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.unit_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Exponentially distributed duration in microseconds.
    pub fn exp_micros(&mut self, mean_us: u64) -> u64 {
        self.exp_f64(mean_us as f64).round() as u64
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index requires a non-empty, positive-sum weight vector"
        );
        let mut x = self.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Zipf-like rank in `[0, n)` with skew `theta` in `(0, 1)`.
    ///
    /// Uses the classic approximation of Gray et al. (SIGMOD '94): rank
    /// `⌊n · u^(1/(1-theta))⌋`, which concentrates mass on low ranks without
    /// a precomputed table. `theta = 0` degenerates to uniform.
    pub fn zipf_rank(&mut self, n: u64, theta: f64) -> u64 {
        if n == 0 {
            return 0;
        }
        if theta <= 0.0 {
            return self.uniform_u64(0, n);
        }
        let u = self.unit_f64();
        let r = (n as f64) * u.powf(1.0 / (1.0 - theta.min(0.999)));
        (r as u64).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.uniform_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.uniform_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.uniform_u64(10, 20);
            assert!((10..20).contains(&x));
        }
        assert_eq!(r.uniform_u64(5, 5), 5);
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::seed_from(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp_f64(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean} too far from 10");
    }

    #[test]
    fn exp_zero_mean_is_zero() {
        let mut r = SimRng::seed_from(5);
        assert_eq!(r.exp_f64(0.0), 0.0);
        assert_eq!(r.exp_micros(0), 0);
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut r = SimRng::seed_from(6);
        let w = [1.0, 3.0];
        let mut counts = [0u32; 2];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        SimRng::seed_from(0).weighted_index(&[]);
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut r = SimRng::seed_from(8);
        let n = 1000;
        let mut low = 0;
        for _ in 0..10_000 {
            let rank = r.zipf_rank(n, 0.8);
            assert!(rank < n);
            if rank < n / 10 {
                low += 1;
            }
        }
        // With theta=0.8, far more than 10% of the mass sits in the lowest decile.
        assert!(low > 4_000, "low-decile mass {low}");
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut r = SimRng::seed_from(9);
        let mut low = 0;
        for _ in 0..10_000 {
            if r.zipf_rank(1000, 0.0) < 100 {
                low += 1;
            }
        }
        assert!((800..1200).contains(&low), "low {low}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SimRng::seed_from(10);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<u64> = (0..4).map(|_| c1.uniform_u64(0, u64::MAX)).collect();
        let b: Vec<u64> = (0..4).map(|_| c2.uniform_u64(0, u64::MAX)).collect();
        assert_ne!(a, b);
    }
}
