//! Lightweight online statistics used by the metrics layer.

/// Running mean / min / max / count over a stream of observations.
///
/// # Examples
///
/// ```
/// use tashkent_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// s.observe(2.0);
/// s.observe(4.0);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the observations, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bucket histogram for latency-style distributions.
///
/// Buckets are linear in `bucket_width` up to `bucket_width * buckets`, with
/// one overflow bucket at the end. Percentiles are estimated by walking the
/// cumulative counts and reporting the upper edge of the containing bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` linear buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `bucket_width` is not positive.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(bucket_width > 0.0, "bucket width must be positive");
        Histogram {
            bucket_width,
            counts: vec![0; buckets + 1],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        let idx = if x < 0.0 {
            0
        } else {
            ((x / self.bucket_width) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimates percentile `p` in `[0, 100]`; zero when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return (i as f64 + 1.0) * self.bucket_width;
            }
        }
        self.counts.len() as f64 * self.bucket_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn online_stats_tracks_extremes() {
        let mut s = OnlineStats::new();
        for x in [3.0, -1.0, 10.0] {
            s.observe(x);
        }
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_merge_combines() {
        let mut a = OnlineStats::new();
        a.observe(1.0);
        let mut b = OnlineStats::new();
        b.observe(5.0);
        b.observe(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.min(), 1.0);
        assert!((a.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = OnlineStats::new();
        a.observe(2.0);
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), 2.0);
    }

    #[test]
    fn histogram_percentiles_roughly_correct() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.observe(i as f64 + 0.5);
        }
        let p50 = h.percentile(50.0);
        assert!((49.0..=52.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0);
        assert!((98.0..=100.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_overflow_bucket_catches_outliers() {
        let mut h = Histogram::new(1.0, 10);
        h.observe(1e9);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(100.0) >= 10.0);
    }

    #[test]
    fn histogram_negative_goes_to_first_bucket() {
        let mut h = Histogram::new(1.0, 10);
        h.observe(-5.0);
        assert!(h.percentile(100.0) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        Histogram::new(1.0, 0);
    }
}
