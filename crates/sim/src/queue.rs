//! The event queue driving a simulation run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for a point in simulated time.
///
/// `seq` is signed so windowed replays can stamp entries senior to every
/// pending event (see [`EventQueue::next_seq`]).
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: i64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break on the sequence number, preserving FIFO scheduling order,
        // which keeps runs deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// Events pop in timestamp order; events scheduled for the same instant pop
/// in the order they were pushed (FIFO). The queue also tracks the current
/// simulation time: popping an event advances `now` to the event's timestamp.
///
/// # Examples
///
/// ```
/// use tashkent_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "sooner")));
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: i64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Returns the current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the event is
    /// clamped to fire at the current time instead so simulated time never
    /// runs backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay_us` microseconds from now.
    pub fn schedule_after(&mut self, delay_us: u64, event: E) {
        self.schedule(self.now + delay_us, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the next event's `(timestamp, sequence)` without popping it.
    ///
    /// Part of the windowed-lookahead interface: a replaying driver compares
    /// the head's sequence against the generation stamps of window entries
    /// to interleave both streams exactly as the sequential pop order would.
    pub fn peek_key(&self) -> Option<(SimTime, i64)> {
        self.heap.peek().map(|s| (s.at, s.seq))
    }

    /// The sequence number the next [`EventQueue::schedule`] will consume.
    ///
    /// Part of the windowed-lookahead interface: stamping a window-generated
    /// entry with `next_seq()` at its generation instant records where the
    /// sequential execution would have inserted it, so same-instant ties
    /// against events scheduled *during* the replay resolve exactly as they
    /// would sequentially (the entry is senior to every event scheduled at
    /// or after its stamp).
    pub fn next_seq(&self) -> i64 {
        self.next_seq
    }

    /// Returns the next event (timestamp and a borrow) without popping it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|s| (s.at, &s.event))
    }

    /// Pops the earliest event only when `accept` approves it, **without
    /// advancing the clock**.
    ///
    /// This is half of the windowed-lookahead interface: a driver that
    /// executes a batch of events concurrently pops the batch with `pop_if`
    /// (so `now` stays at the window start), processes each event logically
    /// at its own timestamp, and re-inserts the events the batch produced
    /// with [`EventQueue::merge`]. Events the predicate rejects stay queued
    /// and bound the window.
    pub fn pop_if(&mut self, accept: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        let head = self.heap.peek()?;
        if !accept(head.at, &head.event) {
            return None;
        }
        let s = self.heap.pop().expect("peeked event vanished");
        Some((s.at, s.event))
    }

    /// Merges an event produced by windowed lookahead execution back into
    /// the queue at absolute time `at`.
    ///
    /// The other half of the windowed interface: events generated while a
    /// window executed off-queue re-enter here, **in the order the
    /// sequential execution would have inserted them**, so same-timestamp
    /// ties keep popping in sequential FIFO order. `at` must not precede the
    /// window start (the clock), which holds by construction because every
    /// merged event carries a timestamp at or after its source event.
    pub fn merge(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "windowed merge scheduled into the past: {at:?} < {:?}",
            self.now
        );
        self.schedule(at, event);
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        q.pop();
        // Scheduling before `now` must not rewind the clock.
        q.schedule(SimTime::from_micros(3), "late");
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(at, SimTime::from_micros(10));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 0);
        q.pop();
        q.schedule_after(7, 1);
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_micros(17));
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.peek(), Some((SimTime::from_micros(9), &())));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn pop_if_respects_predicate_and_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), "a");
        q.schedule(SimTime::from_micros(9), "b");
        // Rejected: stays queued.
        assert_eq!(q.pop_if(|_, e| *e == "b"), None);
        assert_eq!(q.len(), 2);
        // Accepted: popped, but the clock does not advance.
        assert_eq!(
            q.pop_if(|_, e| *e == "a"),
            Some((SimTime::from_micros(5), "a"))
        );
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(
            q.pop_if(|t, _| t <= SimTime::from_micros(9)),
            Some((SimTime::from_micros(9), "b"))
        );
        assert_eq!(q.pop_if(|_, _| true), None);
    }

    #[test]
    fn next_seq_and_peek_key_expose_the_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(9);
        // A windowed replay stamps an entry with next_seq() at generation:
        // the entry is senior to everything scheduled at or after the stamp.
        let stamp = q.next_seq();
        q.schedule(t, "later");
        let (at, seq) = q.peek_key().expect("event pending");
        assert_eq!(at, t);
        assert!(stamp <= seq, "stamped entry is senior to the new event");
        assert_eq!(q.next_seq(), seq + 1);
    }

    #[test]
    fn merge_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        q.schedule(t, 0);
        // A windowed driver merging events in sequential insertion order
        // keeps the tie-break: pre-existing events pop first, then merged
        // events in merge order.
        q.merge(t, 1);
        q.merge(t, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
