//! Simulated time.
//!
//! Time is a monotonically non-decreasing microsecond counter starting at
//! zero. Microsecond resolution is fine enough to model CPU bursts of a few
//! microseconds and coarse enough that a multi-hour simulated run fits
//! comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
///
/// `SimTime` is ordered and supports adding a duration expressed in
/// microseconds. Subtraction of two `SimTime`s yields the number of
/// microseconds between them and saturates at zero rather than underflowing.
///
/// # Examples
///
/// ```
/// use tashkent_sim::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_millis(2).as_micros();
/// assert_eq!(t.as_micros(), 2_000);
/// assert_eq!(t - SimTime::from_millis(1), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point `us` microseconds after the start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time point `ms` milliseconds after the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time point `s` seconds after the start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time point from fractional seconds.
    ///
    /// Useful when deriving durations from rates (e.g. bytes / bandwidth).
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e6).round() as u64)
        }
    }

    /// Returns the number of microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction returning microseconds.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimTime::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimTime::from_secs_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b - a, 4);
        assert_eq!(a - b, 0);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::from_micros(0));
    }

    #[test]
    fn display_prints_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 10;
        t += 5;
        assert_eq!(t.as_micros(), 15);
    }
}
