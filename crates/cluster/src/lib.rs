//! Whole-system simulation of a Tashkent+ cluster.
//!
//! This crate assembles the pieces — clients, the load balancer
//! (`tashkent-core`), replica nodes (`tashkent-replica`), and the certifier
//! (`tashkent-certifier`) — into one deterministic discrete-event
//! simulation, mirroring the paper's testbed of 16 replica machines, a
//! replicated certifier, and a client farm on a switched 1 Gb/s LAN (§4.4).
//!
//! * [`config`] — cluster configuration (replica count, RAM, policy, …);
//! * [`metrics`] — throughput / response-time / disk-I/O accounting and the
//!   [`metrics::RunResult`] every experiment produces;
//! * [`events`] — the event vocabulary ([`events::Ev`]);
//! * [`components`] — per-component handlers the event loop delegates to:
//!   [`components::ClusterNode`], [`components::CertifierLink`],
//!   [`components::BalancerCtl`];
//! * [`world`] — the event loop that routes events to components;
//! * [`experiment`] — experiment descriptions, the [`experiment::Scenario`]
//!   registry every entry point builds runs from, the runner, and
//!   standalone calibration (§4.4's "85 % of peak" client sizing).

pub mod components;
pub mod config;
pub mod events;
pub mod experiment;
pub mod metrics;
pub mod world;

pub use components::{BalancerCtl, CertifierLink, ClusterNode};
pub use config::{ClusterConfig, PolicySpec};
pub use events::Ev;
pub use experiment::{
    calibrate_standalone, registry, run, run_scenario, scenario, Calibration, DynamicReconfig,
    Experiment, RubisAuctionMix, Scenario, ScenarioKnobs, TpcwSteadyState,
};
pub use metrics::{GroupSnapshot, Metrics, RunResult};
pub use world::World;
