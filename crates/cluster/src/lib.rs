//! Whole-system simulation of a Tashkent+ cluster.
//!
//! This crate assembles the pieces — clients, the load balancer
//! (`tashkent-core`), replica nodes (`tashkent-replica`), and the certifier
//! (`tashkent-certifier`) — into one deterministic discrete-event
//! simulation, mirroring the paper's testbed of 16 replica machines, a
//! replicated certifier, and a client farm on a switched 1 Gb/s LAN (§4.4).
//!
//! * [`config`] — cluster configuration (replica count, RAM, policy, …);
//! * [`metrics`] — throughput / response-time / disk-I/O accounting and the
//!   [`metrics::RunResult`] every experiment produces;
//! * [`world`] — the event loop;
//! * [`experiment`] — experiment descriptions (phases of workload mixes),
//!   the runner, and standalone calibration (§4.4's "85 % of peak" client
//!   sizing).

pub mod config;
pub mod experiment;
pub mod metrics;
pub mod world;

pub use config::{ClusterConfig, PolicySpec};
pub use experiment::{calibrate_standalone, run, Calibration, Experiment};
pub use metrics::{GroupSnapshot, Metrics, RunResult};
pub use world::World;
