//! Whole-system simulation of a Tashkent+ cluster.
//!
//! This crate assembles the pieces — clients, the load balancer
//! (`tashkent-core`), replica nodes (`tashkent-replica`), and the certifier
//! (`tashkent-certifier`) — into one deterministic discrete-event
//! simulation, mirroring the paper's testbed of 16 replica machines, a
//! replicated certifier, and a client farm on a switched 1 Gb/s LAN (§4.4).
//!
//! The crate is layered so that *what happens* is separate from *how it is
//! driven*:
//!
//! * [`config`] — cluster configuration (replica count, RAM, policy, …);
//! * [`metrics`] — throughput / response-time / disk-I/O accounting and the
//!   [`metrics::RunResult`] every experiment produces;
//! * [`events`] — the event vocabulary ([`events::Ev`]);
//! * [`components`] — per-component handlers: [`components::ClusterNode`],
//!   [`components::CertifierLink`], [`components::BalancerCtl`];
//! * [`state`] — [`state::ClusterState`], the components plus cross-cutting
//!   transaction/client/metrics state, with a single `handle` entry point;
//! * [`driver`] — the event-loop strategies. [`driver::SequentialDriver`]
//!   is the reference semantics; [`driver::ParallelDriver`] shards replica
//!   work across threads inside conservative lookahead windows and merges
//!   the event streams deterministically, so **both drivers produce
//!   identical results for the same seed** — pick sequential for minimal
//!   overhead on small runs, parallel for multi-replica sweeps on
//!   multi-core hosts;
//! * [`trace`] — deterministic run tracing: lifecycle span events,
//!   utilization timelines, JSONL and Chrome `trace_event` exporters, with
//!   the trace byte-equal across drivers;
//! * [`world`] — thin glue binding state + queue + driver into one handle;
//! * [`experiment`] — experiment descriptions, the [`experiment::Scenario`]
//!   registry every entry point builds runs from, the runner, and
//!   standalone calibration (§4.4's "85 % of peak" client sizing).

pub mod components;
pub mod config;
pub mod detection;
pub mod driver;
pub mod events;
pub mod experiment;
pub mod failover;
pub mod metrics;
pub mod partial;
pub mod placement;
pub mod rebalance;
pub mod state;
pub mod sync;
pub mod trace;
pub mod world;

pub use components::{BalancerCtl, CertifierLink, ClusterNode, HealthTransition, ReplicaHealth};
pub use config::{CertifierSharding, ClusterConfig, PlacementSpec, PolicySpec};
pub use detection::{Detection, DetectionSchedule};
pub use driver::{
    Driver, DriverKind, DriverStats, ParallelDriver, RunError, SequentialDriver,
    HANDOFF_HIST_BUCKETS, WINDOW_HIST_BUCKETS,
};
pub use events::{Ev, Footprint, NodeDemand, CONTROL_NODE};
pub use experiment::{
    calibrate_standalone, registry, run, run_scenario, scenario, Calibration, DynamicReconfig,
    Experiment, Failover, FailoverSchedule, RubisAuctionMix, Scenario, ScenarioKnobs,
    TpcwSteadyState,
};
pub use metrics::{FaultEvent, FaultKind, GroupSnapshot, Metrics, RunResult};
pub use partial::PartialReplication;
pub use placement::{PlacementMap, RelationGroup, ReplicationPlanner, WS_TICK_BYTES};
pub use rebalance::Rebalance;
pub use state::ClusterState;
pub use trace::{TraceConfig, TraceData, TraceEvent, TraceSummary, Tracer};
pub use world::World;
