//! Cluster configuration.

use tashkent_certifier::CertifierParams;
use tashkent_core::{EstimationMode, LardConfig, MalbConfig};
use tashkent_replica::ReplicaConfig;
use tashkent_sim::SimTime;
use tashkent_storage::{DiskParams, WriterConfig, PAGE_SIZE};

use crate::trace::TraceConfig;

/// How the database is placed across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementSpec {
    /// Every replica stores the full database (the paper's deployment).
    #[default]
    Full,
    /// Partial replication (Sutra & Shapiro 2008 direction): each relation
    /// group lives on a holder subset of `min_copies` replicas; dispatch
    /// routes transactions only to holders and the certifier propagates
    /// writeset pages only to holders (non-holders get a version tick).
    /// `min_copies >= replicas` degenerates to full replication and
    /// reproduces `Full` results bit for bit.
    Partial {
        /// Minimum up-to-date copies per relation group (clamped to
        /// `[1, replicas]`).
        min_copies: usize,
    },
}

impl PlacementSpec {
    /// Label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            PlacementSpec::Full => "full".into(),
            PlacementSpec::Partial { min_copies } => format!("partial(min_copies={min_copies})"),
        }
    }
}

/// How certification is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertifierSharding {
    /// One certifier group establishes the single global total order (the
    /// paper's deployment).
    #[default]
    Unified,
    /// Sharded certification (Sutra & Shapiro direction): each relation
    /// group from the [`crate::placement::CertMap`] is certified by its own
    /// leader+backups group with a group-local order; cross-group
    /// transactions run an atomic-commitment round (vote/decide) among the
    /// touched groups, paying extra LAN hops. `max_groups = 1` degenerates
    /// to a single group and reproduces `Unified` results bit for bit.
    Sharded {
        /// Upper bound on certifier groups (clamped to
        /// `[1, MAX_CERT_GROUPS]`).
        max_groups: usize,
    },
}

impl CertifierSharding {
    /// Label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            CertifierSharding::Unified => "unified".into(),
            CertifierSharding::Sharded { max_groups } => {
                format!("sharded(max_groups={max_groups})")
            }
        }
    }
}

/// Which load-balancing policy the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// Round-robin dispatch.
    RoundRobin,
    /// Least outstanding connections (§4.3 baseline).
    LeastConnections,
    /// Locality-aware request distribution (§4.3 baseline).
    Lard,
    /// Memory-aware load balancing (§2) with the given estimation mode and
    /// optionally update filtering (§3).
    Malb {
        /// Working-set information used for packing.
        mode: EstimationMode,
        /// Enable update filtering once allocation stabilizes.
        update_filtering: bool,
    },
}

impl PolicySpec {
    /// The paper's headline configuration: MALB-SC without filtering.
    pub fn malb_sc() -> Self {
        PolicySpec::Malb {
            mode: EstimationMode::SizeContent,
            update_filtering: false,
        }
    }

    /// MALB-SC plus update filtering.
    pub fn malb_sc_uf() -> Self {
        PolicySpec::Malb {
            mode: EstimationMode::SizeContent,
            update_filtering: true,
        }
    }

    /// Label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::RoundRobin => "RoundRobin".into(),
            PolicySpec::LeastConnections => "LeastConnections".into(),
            PolicySpec::Lard => "LARD".into(),
            PolicySpec::Malb {
                mode,
                update_filtering,
            } => {
                let base = match mode {
                    EstimationMode::Size => "MALB-S",
                    EstimationMode::SizeContent => "MALB-SC",
                    EstimationMode::SizeContentAccessPattern => "MALB-SCAP",
                };
                if *update_filtering {
                    format!("{base}+UF")
                } else {
                    base.into()
                }
            }
        }
    }
}

/// Full configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of database replicas (paper default: 16).
    pub replicas: usize,
    /// Physical RAM per replica in bytes (256 MB / 512 MB / 1024 MB in the
    /// evaluation).
    pub ram_bytes: u64,
    /// Memory not available to the database: OS, PostgreSQL processes,
    /// proxy, daemons (paper: 70 MB, §4.4).
    pub overhead_bytes: u64,
    /// Load-balancing policy.
    pub policy: PolicySpec,
    /// Total number of closed-loop clients.
    pub clients: usize,
    /// Mean client think time, in µs.
    pub think_mean_us: u64,
    /// One-way LAN latency between any two components, in µs.
    pub lan_hop_us: u64,
    /// Disk model parameters.
    pub disk: DiskParams,
    /// Gatekeeper multiprogramming limit per replica.
    pub mpl: usize,
    /// Background-writer policy.
    pub writer: WriterConfig,
    /// Certifier service parameters.
    pub certifier: CertifierParams,
    /// LARD thresholds (used when `policy == Lard`).
    pub lard: LardConfig,
    /// MALB rebalance period.
    pub rebalance_period: SimTime,
    /// Rounds of allocation stability before filters install.
    pub stable_rounds_for_filter: u32,
    /// Minimum up-to-date copies per transaction group for §3 *update
    /// filtering*'s standby lists (a MALB knob; every replica still stores
    /// the full database). Distinct from — and unrelated to — the
    /// `min_copies` inside [`PlacementSpec::Partial`], which governs the
    /// partial-replication durability constraint; under non-degenerate
    /// partial placement the placement filter is authoritative and this
    /// knob's filter lists are not installed.
    pub min_copies: usize,
    /// Database placement: full replication, or partial replication with a
    /// per-relation-group `min_copies` durability constraint (see
    /// [`PlacementSpec::Partial`]; not the update-filtering `min_copies`
    /// field above).
    pub placement: PlacementSpec,
    /// Certification organization: one unified total order, or per-group
    /// certifier shards with atomic commitment for cross-group
    /// transactions (see [`CertifierSharding`]).
    pub certifier_sharding: CertifierSharding,
    /// Bandwidth cap on placement backfill (re-replication and migration),
    /// in bytes per second of simulated time. `0` means uncapped: the whole
    /// backfill is charged through the target's CPU/disk models at the
    /// instant it starts (the historical synchronous behaviour). A non-zero
    /// cap stages the copy through `Ev::BackfillChunk` events so migration
    /// I/O competes with foreground propagation over simulated time.
    pub backfill_bytes_per_sec: u64,
    /// Period of the skew-driven migration tick (`Ev::RebalanceTick`) under
    /// partial replication: each tick may migrate the hottest relation
    /// group from its most-loaded holder toward the least-loaded
    /// non-holder. `None` (the default) disables migration entirely.
    pub migration_period: Option<SimTime>,
    /// Overrides the allocator's merge threshold (e.g. `Some(0.0)` disables
    /// group merging — the §5.3 ablation).
    pub merge_threshold_override: Option<f64>,
    /// Response-time histogram bucket width, in seconds (default 50 ms,
    /// matching the historical hardcoded `Histogram::new(0.050, 400)`).
    pub resp_hist_bucket_s: f64,
    /// Response-time histogram bucket count (default 400, saturating at
    /// `bucket_s * buckets` = 20 s with the defaults).
    pub resp_hist_buckets: usize,
    /// Run tracing: disabled by default; set an exporter path (directly or
    /// via `TASHKENT_TRACE` / `ScenarioKnobs::with_trace`) to record the
    /// full deterministic event trace. See [`crate::trace`].
    pub trace: TraceConfig,
    /// Heartbeat period of the balancer's failure detector, in µs. `0` (the
    /// default) disables detection entirely: fault events remain omniscient
    /// (`Ev::ReplicaCrash` tells the balancer and triggers re-replication
    /// synchronously, exactly the pre-detector behaviour). A non-zero period
    /// makes the balancer ping every replica each period — probes occupy the
    /// certifier-side NIC and pay LAN hops — and drive the per-replica
    /// `Live → Suspected → Dead` accrual state machine; dispatch eligibility
    /// then changes *only* through that state machine.
    pub heartbeat_period_us: u64,
    /// Consecutive missed heartbeats before a replica is *Suspected*
    /// (removed from dispatch, in-flight transactions retried on survivors,
    /// but no re-replication yet).
    pub suspect_misses: u32,
    /// Consecutive missed heartbeats before a suspected replica is declared
    /// *Dead* (re-replication of under-copied groups begins). Must exceed
    /// `suspect_misses`.
    pub dead_misses: u32,
    /// Checkpoint lag `k`: a crashed replica recovers at `applied − k` and
    /// replays the redo window from the certifier log before rejoining.
    /// `0` (the default) recovers from a perfectly fresh log position (the
    /// historical behaviour).
    pub checkpoint_lag: u64,
    /// Per-request client timeout, in µs. `0` (the default) waits forever.
    /// A non-zero timeout abandons the request on the (possibly dead)
    /// replica and retries it after a capped exponential backoff through
    /// the usual `Ev::TxnRetry` path.
    pub client_timeout_us: u64,
    /// Base of the client retry backoff (doubles per retry).
    pub client_backoff_base_us: u64,
    /// Cap on the client retry backoff.
    pub client_backoff_cap_us: u64,
    /// RNG seed (runs are bit-reproducible per seed).
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's default testbed shape: 16 replicas, 512 MB RAM, 70 MB
    /// overhead, 2007-era disk, LeastConnections.
    pub fn paper_default() -> Self {
        ClusterConfig {
            replicas: 16,
            ram_bytes: 512 * 1024 * 1024,
            overhead_bytes: 70 * 1024 * 1024,
            policy: PolicySpec::LeastConnections,
            clients: 112,
            think_mean_us: 500_000,
            lan_hop_us: 150,
            disk: DiskParams::default(),
            mpl: 8,
            writer: WriterConfig::default(),
            certifier: CertifierParams::default(),
            lard: LardConfig::default(),
            rebalance_period: SimTime::from_secs(5),
            stable_rounds_for_filter: 10,
            min_copies: 2,
            placement: PlacementSpec::Full,
            certifier_sharding: CertifierSharding::Unified,
            backfill_bytes_per_sec: 0,
            migration_period: None,
            merge_threshold_override: None,
            resp_hist_bucket_s: 0.050,
            resp_hist_buckets: 400,
            trace: TraceConfig::default(),
            heartbeat_period_us: 0,
            suspect_misses: 2,
            dead_misses: 5,
            checkpoint_lag: 0,
            client_timeout_us: 0,
            client_backoff_base_us: 100_000,
            client_backoff_cap_us: 2_000_000,
            seed: 42,
        }
    }

    /// Memory available to the buffer pool per replica.
    pub fn pool_bytes(&self) -> u64 {
        self.ram_bytes
            .saturating_sub(self.overhead_bytes)
            .max(PAGE_SIZE)
    }

    /// The capacity the bin-packing algorithm sees, in pages (§4.4: RAM
    /// minus 70 MB).
    pub fn capacity_pages(&self) -> u64 {
        self.pool_bytes() / PAGE_SIZE
    }

    /// Replica-level configuration derived from the cluster config.
    pub fn replica_config(&self) -> ReplicaConfig {
        ReplicaConfig {
            mem_bytes: self.pool_bytes(),
            disk: self.disk,
            cpu_quantum_us: 5_000,
            mpl: self.mpl,
            writer: self.writer,
            apply_item_us: 600,
            apply_base_us: 100,
        }
    }

    /// MALB configuration derived from the cluster config (when the policy
    /// is a MALB variant).
    pub fn malb_config(&self) -> Option<MalbConfig> {
        match self.policy {
            PolicySpec::Malb {
                mode,
                update_filtering,
            } => {
                let mut cfg = MalbConfig::paper_default(mode, self.capacity_pages());
                cfg.rebalance_period = self.rebalance_period;
                cfg.update_filtering = update_filtering;
                cfg.stable_rounds_for_filter = self.stable_rounds_for_filter;
                cfg.min_copies = self.min_copies.min(self.replicas);
                if let Some(t) = self.merge_threshold_override {
                    cfg.allocation.merge_threshold = t;
                }
                Some(cfg)
            }
            _ => None,
        }
    }

    /// Convenience: set RAM in megabytes.
    pub fn with_ram_mb(mut self, mb: u64) -> Self {
        self.ram_bytes = mb * 1024 * 1024;
        self
    }

    /// Convenience: set the policy.
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Convenience: set total clients.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Convenience: set the certification organization.
    pub fn with_certifier_sharding(mut self, sharding: CertifierSharding) -> Self {
        self.certifier_sharding = sharding;
        self
    }

    /// Convenience: single-replica (standalone) variant with proportionally
    /// fewer clients.
    pub fn standalone(mut self, clients: usize) -> Self {
        self.replicas = 1;
        self.clients = clients;
        self
    }

    /// Convenience: enable the heartbeat failure detector.
    pub fn with_heartbeat(mut self, period_us: u64) -> Self {
        self.heartbeat_period_us = period_us;
        self
    }

    /// Convenience: set the checkpoint lag `k`.
    pub fn with_checkpoint_lag(mut self, k: u64) -> Self {
        self.checkpoint_lag = k;
        self
    }

    /// Convenience: enable the per-request client timeout.
    pub fn with_client_timeout(mut self, timeout_us: u64) -> Self {
        self.client_timeout_us = timeout_us;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_testbed() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.replicas, 16);
        assert_eq!(c.ram_bytes, 512 * 1024 * 1024);
        assert_eq!(c.overhead_bytes, 70 * 1024 * 1024);
    }

    #[test]
    fn tracing_off_and_histogram_bounds_default() {
        let c = ClusterConfig::paper_default();
        assert!(!c.trace.enabled(), "tracing must be opt-in");
        assert_eq!(c.resp_hist_bucket_s, 0.050);
        assert_eq!(c.resp_hist_buckets, 400);
    }

    #[test]
    fn detection_and_recovery_knobs_default_off() {
        // The defaults must reproduce the pre-detector fault model bit for
        // bit: no heartbeats, fresh-log recovery, clients wait forever.
        let c = ClusterConfig::paper_default();
        assert_eq!(c.heartbeat_period_us, 0, "detector must be opt-in");
        assert_eq!(c.checkpoint_lag, 0, "fresh-log recovery by default");
        assert_eq!(c.client_timeout_us, 0, "clients wait forever by default");
        assert!(c.dead_misses > c.suspect_misses);
        assert!(c.client_backoff_cap_us >= c.client_backoff_base_us);
        let d = c
            .with_heartbeat(500_000)
            .with_checkpoint_lag(32)
            .with_client_timeout(3_000_000);
        assert_eq!(d.heartbeat_period_us, 500_000);
        assert_eq!(d.checkpoint_lag, 32);
        assert_eq!(d.client_timeout_us, 3_000_000);
    }

    #[test]
    fn capacity_subtracts_overhead() {
        let c = ClusterConfig::paper_default();
        // (512 − 70) MB in 8 KB pages = 56,576.
        assert_eq!(c.capacity_pages(), 56_576);
    }

    #[test]
    fn tiny_ram_keeps_one_page() {
        let c = ClusterConfig::paper_default().with_ram_mb(1);
        assert!(c.pool_bytes() >= PAGE_SIZE);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicySpec::malb_sc().label(), "MALB-SC");
        assert_eq!(PolicySpec::malb_sc_uf().label(), "MALB-SC+UF");
        assert_eq!(PolicySpec::Lard.label(), "LARD");
        assert_eq!(CertifierSharding::Unified.label(), "unified");
        assert_eq!(
            CertifierSharding::Sharded { max_groups: 8 }.label(),
            "sharded(max_groups=8)"
        );
    }

    #[test]
    fn default_certification_is_unified() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.certifier_sharding, CertifierSharding::Unified);
        let s = c.with_certifier_sharding(CertifierSharding::Sharded { max_groups: 4 });
        assert_eq!(
            s.certifier_sharding,
            CertifierSharding::Sharded { max_groups: 4 }
        );
    }

    #[test]
    fn malb_config_only_for_malb() {
        let c = ClusterConfig::paper_default();
        assert!(c.malb_config().is_none());
        let m = c.with_policy(PolicySpec::malb_sc());
        let cfg = m.malb_config().unwrap();
        assert_eq!(cfg.capacity_pages, 56_576);
        assert!(!cfg.update_filtering);
    }

    #[test]
    fn standalone_shrinks_cluster() {
        let c = ClusterConfig::paper_default().standalone(10);
        assert_eq!(c.replicas, 1);
        assert_eq!(c.clients, 10);
    }
}
