//! Drivers: interchangeable event-loop strategies over a [`ClusterState`].
//!
//! PR 1 separated *what happens* on each event (the component handlers,
//! reachable only through [`ClusterState::handle`]) from *when and where*
//! events execute. This module owns the second half. A [`Driver`] pops
//! events from the [`EventQueue`] and feeds them to the state; two
//! implementations exist:
//!
//! * [`SequentialDriver`] — pops one event at a time in `(timestamp, FIFO)`
//!   order. This is the reference semantics: bit-for-bit the behaviour of
//!   the original single-threaded `World` loop.
//! * [`ParallelDriver`] — a conservative parallel discrete-event driver.
//!   Runs of consecutive node-local `StepTxn` events are popped as a
//!   *lookahead window* and sharded by replica across `std::thread` workers
//!   over `mpsc` channels; each worker advances its replica's transactions
//!   independently, and the per-shard transcripts are then replayed back in
//!   exactly the sequential pop order — including same-microsecond FIFO
//!   ties, which `merge_window` reconstructs via generation stamps.
//!   Results are identical to [`SequentialDriver`] for every seed and
//!   configuration; only wall-clock time differs.
//!
//! # Why `StepTxn` windows are safe
//!
//! Every cross-component interaction travels the simulated LAN and pays at
//! least one `lan_hop_us` of latency, and a transaction step's effects reach
//! *another* replica only through the client (`TxnComplete` → retry/think →
//! submit, two hops) or the certifier (`CertifySend` → `CertifyReturn`, two
//! hops). Processing a step at time `t` therefore cannot influence any other
//! replica before `t + 2·lan_hop_us` — the conservative lookahead bound. A
//! window starting at `t0` may freely execute `StepTxn` events up to
//! `t0 + 2·lan_hop_us` in parallel across replicas, subject to *barriers*
//! that protect same-timestamp interleavings:
//!
//! * events still queued behind the window (the first non-`StepTxn` event)
//!   execute before any window-generated event at the same or later time, so
//!   workers run generated events only strictly before that timestamp;
//! * a `TxnComplete` produced inside the window touches its own replica the
//!   moment it is handled (slot recycling, retries), so the producing worker
//!   stops its replica at that key;
//! * a `CertifySend` produced at `t` returns to its replica no earlier than
//!   `t + lan_hop_us` (the certifier's answer applies remote writesets), so
//!   the producing worker stops its replica at that time.
//!
//! Failure-injection events (`ReplicaCrash`, `ReplicaRecover`,
//! `CertifierKill`) are window barriers for free: windows only ever pop
//! `StepTxn` events, so a queued fault event bounds the window like any
//! other non-step event — no window-generated event executes at or past its
//! timestamp, and no batch event can follow it in FIFO order (the queue pops
//! time-ordered, so every batch event was at or before the fault's instant
//! and ahead of it in seniority). The one crash-specific wrinkle is *stale*
//! steps: a crash drops a replica's in-flight transactions while their step
//! events are still queued, so `step_child` is total — it returns `None` for
//! a transaction that no longer exists, and both drivers skip such events
//! identically (the shard transcript records them as `ChildOut::Stale`).
//!
//! Within one replica a worker executes events in the exact sequential
//! order, so the replica's RNG draws, buffer-pool state, and CPU/disk
//! queues evolve identically. The merge then replays everything the window
//! produced in the exact sequential pop order (see `merge_window`):
//! emissions junior to the window stopper re-enter the queue at their
//! generation position, while everything senior to it — skipped batch
//! events and pre-stopper emissions — is *executed inline* at its precise
//! slot, interleaved with any events that execution schedules, so even
//! same-microsecond FIFO ties resolve exactly as sequential insertion
//! would.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::mpsc;
use std::thread::{self, JoinHandle};

use tashkent_engine::TxnId;
use tashkent_sim::{EventQueue, SimTime};

use crate::components::ClusterNode;
use crate::events::Ev;
use crate::state::ClusterState;

/// Which driver an experiment runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// The reference single-threaded event loop.
    #[default]
    Sequential,
    /// The windowed multi-threaded driver. Produces results identical to
    /// the sequential reference — same-microsecond FIFO ties included
    /// (enforced by the cross-driver equivalence tests); faster on
    /// multi-core hosts for multi-replica configurations.
    Parallel {
        /// Worker thread count; `0` picks the host's available parallelism.
        threads: usize,
    },
}

impl DriverKind {
    /// The parallel driver with automatic thread count.
    pub fn parallel() -> Self {
        DriverKind::Parallel { threads: 0 }
    }

    /// Builds the driver this kind describes.
    pub fn build(self) -> Box<dyn Driver> {
        match self {
            DriverKind::Sequential => Box::new(SequentialDriver),
            DriverKind::Parallel { threads } => Box::new(ParallelDriver::new(threads)),
        }
    }
}

/// A failed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained before the `End` event fired. The experiment
    /// was mis-scheduled (no `End` event, or all load sources exhausted);
    /// the state remains inspectable.
    QueueDrained {
        /// Simulated time of the last processed event.
        at: SimTime,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::QueueDrained { at } => write!(
                f,
                "event queue drained at t={:.3}s before the End event fired",
                at.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// An event-loop strategy: drives a [`ClusterState`] until its `End` event.
pub trait Driver {
    /// Runs until the state's `End` event fires.
    ///
    /// Returns [`RunError::QueueDrained`] when the queue empties first; the
    /// state is left at the drained point for inspection.
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError>;
}

/// The reference driver: one event at a time, in `(timestamp, FIFO)` order.
#[derive(Debug, Default)]
pub struct SequentialDriver;

impl Driver for SequentialDriver {
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError> {
        while !state.ended() {
            let Some((now, ev)) = queue.pop() else {
                return Err(RunError::QueueDrained { at: queue.now() });
            };
            state.handle(now, ev, queue);
        }
        Ok(())
    }
}

/// Orders window items exactly as the sequential driver would pop them:
/// by timestamp, ties broken by insertion rank. Batch events carry their
/// pop rank (`0..batch_len`); events generated during the window rank after
/// every batch event, in generation order — mirroring the queue's monotone
/// sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    rank: u64,
}

/// What a processed step produced.
enum ChildOut {
    /// A same-replica `StepTxn` the worker consumed inside the window; its
    /// own record follows later in the transcript.
    Local(TxnId),
    /// An event handed back to the coordinator for the deterministic merge.
    Emit(Ev),
    /// A stale step: its transaction was dropped by a crash before the
    /// already-queued step event fired. The sequential driver schedules
    /// nothing for it, so the merge emits nothing either.
    Stale,
}

/// Transcript record for one processed window item, in processing order.
struct StepRec {
    child_at: SimTime,
    child: ChildOut,
}

/// One replica's work for a window, leased to a worker.
struct Job {
    replica: usize,
    node: Box<ClusterNode>,
    /// `(key, txn)` of this replica's batch events, key-ascending.
    items: Vec<(Key, TxnId)>,
    /// Latest timestamp the window may touch (`t0 + 2·lan_hop_us`).
    horizon: SimTime,
    /// Timestamp of the first event still queued behind the window; the
    /// worker must not execute *generated* events at or past it.
    stop_ts: SimTime,
    /// Ranks at and above this mark generated children (== batch length).
    child_rank_base: u64,
    /// One-way LAN latency: the minimum delay before a `CertifySend` can
    /// come back to this replica.
    lan_hop_us: u64,
}

/// A worker's answer: the node back, plus everything needed to replay its
/// shard of the window into the global insertion order.
struct ShardResult {
    replica: usize,
    node: Box<ClusterNode>,
    /// One record per processed item, in processing order.
    steps: Vec<StepRec>,
    /// Ranks of batch events the barriers prevented the worker from
    /// processing, ascending; they re-enter the queue through the merge.
    unprocessed_batch: Vec<(u64, TxnId)>,
}

/// Executes one replica's share of a lookahead window.
///
/// The agenda is a mini event queue over this replica only. Batch events
/// were popped ahead of every other queued event, so they may run up to the
/// window limits; generated `StepTxn` children join the agenda while they
/// stay *strictly* inside them (at a limit they could tie with an event the
/// window defers, and a generated event loses every tie), everything else
/// is emitted for the merge. Emissions lower the shard's barrier:
///
/// * a `TxnComplete` touches this replica the moment the merge handles it
///   (slot recycling, retries), so nothing on this replica may run at or
///   past its key;
/// * a `CertifySend` at `t` comes back as a `CertifyReturn` no earlier than
///   `t + lan_hop_us` (conflicts return immediately; commits after
///   durability), which applies remote writesets on this replica — so
///   nothing may run past that time either.
fn run_shard(mut job: Job) -> ShardResult {
    // Agenda entries: (key, raw txn id, transcript index of the generating
    // step for children, or usize::MAX for batch events).
    let mut agenda: BinaryHeap<Reverse<(Key, u64, usize)>> = job
        .items
        .iter()
        .map(|(key, txn)| Reverse((*key, txn.0, usize::MAX)))
        .collect();
    let mut steps: Vec<StepRec> = Vec::with_capacity(job.items.len() * 2);
    let mut unprocessed_batch: Vec<(u64, TxnId)> = Vec::new();
    let mut next_rank = job.child_rank_base;
    let mut barrier: Option<Key> = None;

    while let Some(&Reverse((key, txn, _))) = agenda.peek() {
        let is_batch = key.rank < job.child_rank_base;
        let runnable = key.at <= job.horizon
            && (is_batch || key.at < job.stop_ts)
            && barrier.is_none_or(|b| key < b);
        if !runnable {
            break;
        }
        agenda.pop();
        let Some((child_at, child_ev)) = job.node.step_child(key.at, TxnId(txn)) else {
            // Stale step (transaction dropped by a crash): sequentially it
            // schedules nothing, so it consumes no generation rank and
            // raises no barrier.
            steps.push(StepRec {
                child_at: key.at,
                child: ChildOut::Stale,
            });
            continue;
        };
        let ckey = Key {
            at: child_at,
            rank: next_rank,
        };
        next_rank += 1;
        let local = matches!(child_ev, Ev::StepTxn { .. })
            && child_at < job.horizon
            && child_at < job.stop_ts
            && barrier.is_none_or(|b| ckey < b);
        if local {
            let Ev::StepTxn { txn: ctxn, .. } = child_ev else {
                unreachable!()
            };
            agenda.push(Reverse((ckey, ctxn.0, steps.len())));
            steps.push(StepRec {
                child_at,
                child: ChildOut::Local(ctxn),
            });
        } else {
            let consequence = match child_ev {
                Ev::TxnComplete { .. } => Some(ckey),
                // The certifier's answer reaches this replica one hop after
                // the send at the earliest; rank ordering at that instant
                // follows the send's own rank.
                Ev::CertifySend { .. } => Some(Key {
                    at: child_at + job.lan_hop_us,
                    rank: ckey.rank,
                }),
                _ => None,
            };
            if let Some(ck) = consequence {
                barrier = Some(barrier.map_or(ck, |b| b.min(ck)));
            }
            steps.push(StepRec {
                child_at,
                child: ChildOut::Emit(child_ev),
            });
        }
    }

    // Unreached agenda items go back through the merge. A child queued
    // before the barrier dropped is retroactively an emission: patch its
    // generator's record.
    while let Some(Reverse((key, txn, gen_idx))) = agenda.pop() {
        if key.rank < job.child_rank_base {
            unprocessed_batch.push((key.rank, TxnId(txn)));
        } else {
            steps[gen_idx].child = ChildOut::Emit(Ev::StepTxn {
                replica: job.replica,
                txn: TxnId(txn),
            });
        }
    }

    ShardResult {
        replica: job.replica,
        node: job.node,
        steps,
        unprocessed_batch,
    }
}

/// What a replay entry does when its turn in the sequential order comes.
enum Replay {
    /// A window item (batch event or in-window generated child): consume
    /// its shard's next transcript record — or, when the shard's barriers
    /// skipped it (batch events only), execute it inline.
    Item(TxnId),
    /// An emission senior to the window stopper: handle it inline at its
    /// exact sequential pop position.
    Handle(Ev),
}

/// One pending element of the window replay.
///
/// `key` orders entries exactly as the sequential pop would (timestamp,
/// then generation rank). `stamp` is the queue's sequence counter at the
/// entry's *generation* instant — where sequential execution would have
/// inserted it — so a same-instant tie against an event scheduled during
/// the replay resolves exactly as the sequential FIFO would: the entry is
/// senior to every event scheduled at or after its stamp.
struct ReplayEntry {
    key: Key,
    stamp: i64,
    replica: usize,
    action: Replay,
}

impl PartialEq for ReplayEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for ReplayEntry {}

impl PartialOrd for ReplayEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReplayEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key) // Ranks are unique, so keys are total.
    }
}

/// Replays per-shard transcripts in the exact global sequential order.
///
/// The sequential driver would have interleaved the window's events across
/// replicas by `(timestamp, queue sequence)`; sequence numbers are assigned
/// at insertion. The replay walks a heap of window entries keyed like the
/// sequential pop order and consumes each replica's transcript in step.
/// Everything the stopper — the first event still queued behind the window
/// — is junior to goes back to the queue: emissions at or past its
/// timestamp re-enter via [`EventQueue::merge`] at their generation
/// position (every window item pops sequentially *before* the stopper, so
/// their insertions all precede any post-stopper processing — the relative
/// order is exact). Everything *senior* to the stopper is executed inline
/// right here, at its precise slot in the sequential order:
///
/// * a batch event the shard's barriers skipped runs through
///   [`ClusterState::handle`] at its own key — by then every emission that
///   raised the barrier has itself been handled, which is exactly the
///   sequential state;
/// * a pre-stopper emission (completion, certification send, overflow step)
///   is handled at its key, after its shard's transcript is necessarily
///   exhausted (each shard stops at its consequence barriers, so no
///   in-window work on that replica follows the emission's key).
///
/// Inline handling *schedules* events; those may land before later replay
/// entries, and sequentially they would pop in between. The loop therefore
/// interleaves the two streams: before each replay entry, any queue event
/// that sequentially precedes it — earlier timestamp, or an equal
/// timestamp with a sequence number below the entry's generation stamp —
/// is popped and handled first. Pre-existing queue events never qualify
/// (every replay entry is senior to the stopper by construction), so the
/// interleave only ever runs events the replay itself produced. This
/// closes the historical same-microsecond tie corner: follow-ups of
/// inline-handled emissions now receive their sequence numbers at the
/// emission's pop position, exactly as sequential insertion would.
fn merge_window(
    batch: &[(SimTime, usize, TxnId)],
    results: Vec<ShardResult>,
    state: &mut ClusterState,
    queue: &mut EventQueue<Ev>,
) {
    let child_rank_base = batch.len() as u64;
    // The stopper: the first event still queued behind the window. Batch
    // events are senior to it by FIFO even at equal timestamps; generated
    // children are strictly earlier; emissions may land at or past it.
    let stop_ts = queue.peek_time();
    let pre_stopper = |at: SimTime| stop_ts.is_none_or(|s| at < s);
    // Index transcripts by replica; return the leased nodes.
    let mut steps: Vec<std::vec::IntoIter<StepRec>> = Vec::with_capacity(results.len());
    let mut unprocessed: Vec<std::iter::Peekable<std::vec::IntoIter<(u64, TxnId)>>> =
        Vec::with_capacity(results.len());
    let mut slot_of = vec![usize::MAX; state.config.replicas];
    for r in results {
        slot_of[r.replica] = steps.len();
        steps.push(r.steps.into_iter());
        unprocessed.push(r.unprocessed_batch.into_iter().peekable());
        state.put_node(r.replica, r.node);
    }

    // Seed the replay with every batch event at its pop rank. Batch events
    // predate everything the replay can schedule, hence the MIN stamp.
    let mut heap: BinaryHeap<Reverse<ReplayEntry>> = batch
        .iter()
        .enumerate()
        .map(|(rank, (at, replica, txn))| {
            Reverse(ReplayEntry {
                key: Key {
                    at: *at,
                    rank: rank as u64,
                },
                stamp: i64::MIN,
                replica: *replica,
                action: Replay::Item(*txn),
            })
        })
        .collect();
    let mut next_rank = child_rank_base;
    while let Some(Reverse(top)) = heap.peek() {
        // Interleave: events the inline handling scheduled that
        // sequentially precede the next replay entry pop first.
        let (top_at, top_stamp) = (top.key.at, top.stamp);
        if queue
            .peek_key()
            .is_some_and(|(at, seq)| at < top_at || (at == top_at && seq < top_stamp))
        {
            let (at, ev) = queue.pop().expect("peeked event vanished");
            state.handle(at, ev, queue);
            continue;
        }
        let Reverse(entry) = heap.pop().expect("peeked entry vanished");
        match entry.action {
            Replay::Item(txn) => {
                let slot = slot_of[entry.replica];
                debug_assert_ne!(slot, usize::MAX, "window item for an absent shard");
                if entry.key.rank < child_rank_base
                    && unprocessed[slot]
                        .peek()
                        .is_some_and(|(rank, _)| *rank == entry.key.rank)
                {
                    // A batch event the shard's barriers skipped: its
                    // sequential turn is exactly now — execute it inline.
                    unprocessed[slot].next();
                    state.handle(
                        entry.key.at,
                        Ev::StepTxn {
                            replica: entry.replica,
                            txn,
                        },
                        queue,
                    );
                    continue;
                }
                let rec = steps[slot]
                    .next()
                    .expect("transcript shorter than replayed items");
                match rec.child {
                    ChildOut::Local(ctxn) => {
                        let key = Key {
                            at: rec.child_at,
                            rank: next_rank,
                        };
                        next_rank += 1;
                        heap.push(Reverse(ReplayEntry {
                            key,
                            stamp: queue.next_seq(),
                            replica: entry.replica,
                            action: Replay::Item(ctxn),
                        }));
                    }
                    ChildOut::Emit(ev) => {
                        let key = Key {
                            at: rec.child_at,
                            rank: next_rank,
                        };
                        next_rank += 1;
                        if pre_stopper(rec.child_at) {
                            heap.push(Reverse(ReplayEntry {
                                key,
                                stamp: queue.next_seq(),
                                replica: entry.replica,
                                action: Replay::Handle(ev),
                            }));
                        } else {
                            queue.merge(rec.child_at, ev);
                        }
                    }
                    // A stale step scheduled nothing sequentially: no
                    // emission, nothing to replay.
                    ChildOut::Stale => {}
                }
            }
            Replay::Handle(ev) => state.handle(entry.key.at, ev, queue),
        }
        if state.ended() {
            // Nothing past an End would have executed sequentially either.
            return;
        }
    }
    debug_assert!(
        steps.iter_mut().all(|s| s.next().is_none()),
        "transcript longer than replayed items"
    );
    debug_assert!(
        unprocessed.iter_mut().all(|u| u.peek().is_none()),
        "unprocessed batch events never replayed"
    );
}

/// Persistent worker threads; each window's jobs are spread round-robin by
/// shard position, so a window's shards never pile onto one worker (the
/// merge re-sorts by rank, so routing cannot affect results).
///
/// Windows are tens of microseconds of work, so both channel ends spin
/// briefly before parking: a blocking `recv` wake-up costs several
/// microseconds of futex latency per hop, which would swamp the overlapped
/// step work. Spinning is bounded, so idle stretches (long sequential runs
/// between windows) still park the workers.
struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    /// `Err` carries a worker's panic payload; the coordinator re-raises it
    /// instead of blocking forever on a result that will never come.
    results: mpsc::Receiver<thread::Result<ShardResult>>,
    handles: Vec<JoinHandle<()>>,
}

/// Bounded spin before falling back to a blocking receive.
const SPIN_RECVS: u32 = 2_000;

fn spin_recv<T>(rx: &mpsc::Receiver<T>) -> Option<T> {
    for _ in 0..SPIN_RECVS {
        match rx.try_recv() {
            Ok(v) => return Some(v),
            Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
            Err(mpsc::TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (res_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            let res_tx = res_tx.clone();
            senders.push(tx);
            handles.push(thread::spawn(move || {
                while let Some(job) = spin_recv(&rx) {
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_shard(job)));
                    let poisoned = result.is_err();
                    if res_tx.send(result).is_err() || poisoned {
                        break;
                    }
                }
            }));
        }
        WorkerPool {
            senders,
            results,
            handles,
        }
    }

    /// Dispatches one window's jobs and collects all shard results (in
    /// arbitrary completion order; the merge re-sorts deterministically).
    fn run(&self, jobs: Vec<Job>) -> Vec<ShardResult> {
        let n = jobs.len();
        let workers = self.senders.len();
        for (i, job) in jobs.into_iter().enumerate() {
            self.senders[i % workers]
                .send(job)
                .expect("worker thread died");
        }
        (0..n)
            .map(
                |_| match spin_recv(&self.results).expect("worker thread died") {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                },
            )
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // Hang up; workers drain and exit.
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The windowed multi-threaded driver. See the module docs for the
/// correctness argument; [`ParallelDriver::new`] with `0` threads sizes the
/// pool to the host.
pub struct ParallelDriver {
    /// Resolved worker count (`available_parallelism` is queried once; it
    /// is a syscall, far too slow for the per-window hot path).
    workers: usize,
    /// Smallest window (total step events) worth a channel round-trip per
    /// shard; smaller windows run inline on the coordinator. Purely a
    /// performance knob — both paths run the identical algorithm.
    pooled_min_items: usize,
    pool: Option<WorkerPool>,
    stats: Option<WindowStats>,
}

/// Per-run window accounting, collected when `TASHKENT_DRIVER_STATS` is
/// set and printed at the end of the run.
#[derive(Default)]
struct WindowStats {
    windows: u64,
    singles: u64,
    items: u64,
    shards: u64,
    pooled: u64,
}

impl ParallelDriver {
    /// Smallest window dispatched to worker threads by default: below this
    /// the per-shard channel round-trip costs more than the overlapped step
    /// work buys (steps are sub-microsecond; an `mpsc` hop is not).
    const POOLED_MIN_ITEMS: usize = 8;

    /// Creates the driver with `threads` workers (`0` = host parallelism).
    pub fn new(threads: usize) -> Self {
        let workers = if threads > 0 {
            threads
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        ParallelDriver {
            workers,
            pooled_min_items: Self::POOLED_MIN_ITEMS,
            pool: None,
            stats: std::env::var_os("TASHKENT_DRIVER_STATS").map(|_| WindowStats::default()),
        }
    }

    /// Executes one lookahead window starting from the already-popped
    /// `StepTxn` at `t0`.
    fn run_window(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
        t0: SimTime,
        first: Ev,
    ) {
        let lan_hop_us = state.lan_hop_us();
        let horizon = t0 + 2 * lan_hop_us;
        let Ev::StepTxn { replica, txn } = first else {
            unreachable!("windows start on StepTxn");
        };
        // Lone steps dominate sparse phases; peek before paying for a batch
        // allocation on the hottest event type.
        if !matches!(queue.peek(), Some((t, Ev::StepTxn { .. })) if t <= horizon) {
            if let Some(stats) = &mut self.stats {
                stats.singles += 1;
            }
            state.handle(t0, Ev::StepTxn { replica, txn }, queue);
            return;
        }
        let mut batch: Vec<(SimTime, usize, TxnId)> = vec![(t0, replica, txn)];
        while let Some((t, ev)) =
            queue.pop_if(|t, ev| t <= horizon && matches!(ev, Ev::StepTxn { .. }))
        {
            let Ev::StepTxn { replica, txn } = ev else {
                unreachable!()
            };
            batch.push((t, replica, txn));
        }
        if let Some(stats) = &mut self.stats {
            stats.windows += 1;
            stats.items += batch.len() as u64;
        }
        let stop_ts = queue.peek_time().unwrap_or(SimTime::from_micros(u64::MAX));
        let child_rank_base = batch.len() as u64;

        // Shard the batch by replica, preserving pop order within each.
        let mut jobs: Vec<Job> = Vec::new();
        let mut job_of = vec![usize::MAX; state.config.replicas];
        for (rank, (at, replica, txn)) in batch.iter().enumerate() {
            let key = Key {
                at: *at,
                rank: rank as u64,
            };
            if job_of[*replica] == usize::MAX {
                job_of[*replica] = jobs.len();
                jobs.push(Job {
                    replica: *replica,
                    node: state.take_node(*replica),
                    items: Vec::new(),
                    horizon,
                    stop_ts,
                    child_rank_base,
                    lan_hop_us,
                });
            }
            jobs[job_of[*replica]].items.push((key, *txn));
        }

        let pooled = jobs.len() >= 2 && self.workers >= 2 && batch.len() >= self.pooled_min_items;
        if let Some(stats) = &mut self.stats {
            stats.shards += jobs.len() as u64;
            stats.pooled += u64::from(pooled);
        }
        let results: Vec<ShardResult> = if pooled {
            let workers = self.workers;
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
            pool.run(jobs)
        } else {
            jobs.into_iter().map(run_shard).collect()
        };
        merge_window(&batch, results, state, queue);
    }
}

impl Driver for ParallelDriver {
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError> {
        while !state.ended() {
            let Some((now, ev)) = queue.pop() else {
                return Err(RunError::QueueDrained { at: queue.now() });
            };
            match ev {
                Ev::StepTxn { .. } => self.run_window(state, queue, now, ev),
                ev => state.handle(now, ev, queue),
            }
        }
        if let Some(stats) = &self.stats {
            eprintln!(
                "parallel driver: {} windows ({} pooled), {} single-step, {:.2} items/window, {:.2} shards/window",
                stats.windows,
                stats.pooled,
                stats.singles,
                stats.items as f64 / stats.windows.max(1) as f64,
                stats.shards as f64 / stats.windows.max(1) as f64,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    /// Drives a tiny cluster to completion under `driver` and fingerprints
    /// the result.
    fn fingerprint(mut driver: Box<dyn Driver>) -> (u64, u64, u64, u64) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 3,
            clients: 9,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        };
        let mut state = ClusterState::new(config, workload, vec![mix]);
        let mut queue = EventQueue::new();
        state.prime(&mut queue);
        queue.schedule(SimTime::from_secs(2), Ev::EndWarmup);
        queue.schedule(SimTime::from_secs(12), Ev::End);
        driver
            .run_to_end(&mut state, &mut queue)
            .expect("End event scheduled");
        let (read, write) = state.disk_bytes();
        let r = state.metrics.finish(queue.now(), read, write, Vec::new());
        (r.committed, r.aborts, read, write)
    }

    #[test]
    fn forced_pooled_windows_match_sequential() {
        // Threshold 2 forces every multi-shard window through the mpsc
        // worker pool, even the tiny ones the production threshold keeps
        // inline — the channel path must be just as exact.
        let mut pooled = ParallelDriver::new(2);
        pooled.pooled_min_items = 2;
        assert_eq!(
            fingerprint(Box::new(SequentialDriver)),
            fingerprint(Box::new(pooled)),
        );
    }

    /// A 3-replica state + queue pair for merge-order tests.
    fn tiny_state() -> (ClusterState, EventQueue<Ev>) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 3,
            clients: 3,
            ..ClusterConfig::paper_default()
        };
        (
            ClusterState::new(config, workload, vec![mix]),
            EventQueue::new(),
        )
    }

    /// Drains the queue into `(time, txn-or-marker)` pairs: `TxnComplete`
    /// and `StepTxn` map to their transaction id, `LbTick` to `u64::MAX`.
    fn drain(queue: &mut EventQueue<Ev>) -> Vec<(SimTime, u64)> {
        std::iter::from_fn(|| queue.pop())
            .map(|(at, ev)| match ev {
                Ev::TxnComplete { txn, .. } | Ev::StepTxn { txn, .. } => (at, txn.0),
                Ev::LbTick => (at, u64::MAX),
                other => panic!("unexpected event in merge test: {other:?}"),
            })
            .collect()
    }

    fn emit_complete(replica: usize, txn: u64, at: SimTime) -> StepRec {
        StepRec {
            child_at: at,
            child: ChildOut::Emit(Ev::TxnComplete {
                replica,
                txn: TxnId(txn),
                committed: true,
            }),
        }
    }

    /// Regression for the `merge_window` same-microsecond tie corner: two
    /// shards emitting at an *identical* timestamp must replay in batch pop
    /// order, and both must stay junior to an event that was already queued
    /// at that instant (the window stopper) — exactly the sequential
    /// insertion order.
    #[test]
    fn same_instant_cross_shard_emissions_replay_in_pop_order() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(100);
        // Sequential schedule order: step(0), step(1), then the stopper.
        for (replica, txn) in [(0usize, 7000u64), (1, 7001)] {
            queue.schedule(
                t,
                Ev::StepTxn {
                    replica,
                    txn: TxnId(txn),
                },
            );
        }
        queue.schedule(t, Ev::LbTick);
        // The window pops both steps (they are senior to the stopper).
        let batch = [(t, 0usize, TxnId(7000)), (t, 1usize, TxnId(7001))];
        queue
            .pop_if(|_, ev| matches!(ev, Ev::StepTxn { .. }))
            .unwrap();
        queue
            .pop_if(|_, ev| matches!(ev, Ev::StepTxn { .. }))
            .unwrap();
        let results = vec![
            ShardResult {
                replica: 0,
                node: state.take_node(0),
                steps: vec![emit_complete(0, 7000, t)],
                unprocessed_batch: Vec::new(),
            },
            ShardResult {
                replica: 1,
                node: state.take_node(1),
                steps: vec![emit_complete(1, 7001, t)],
                unprocessed_batch: Vec::new(),
            },
        ];
        merge_window(&batch, results, &mut state, &mut queue);
        // Sequentially: the stopper's seq predates both emissions.
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 7000), (t, 7001)]);
    }

    /// Same-instant emissions from shards whose batch events *interleave*
    /// (replica 0, replica 1, replica 0 again at one timestamp) must merge
    /// in global batch-rank order, not per-shard order. The stopper bounds
    /// the window at the same instant, so the emissions take the queue
    /// path; being junior, they pop after it.
    #[test]
    fn same_instant_interleaved_shards_keep_global_rank_order() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(250);
        queue.schedule(t, Ev::LbTick); // The stopper, bounding the window.
        let batch = [
            (t, 0usize, TxnId(10)),
            (t, 1usize, TxnId(11)),
            (t, 0usize, TxnId(12)),
        ];
        let results = vec![
            ShardResult {
                replica: 0,
                node: state.take_node(0),
                steps: vec![emit_complete(0, 10, t), emit_complete(0, 12, t)],
                unprocessed_batch: Vec::new(),
            },
            ShardResult {
                replica: 1,
                node: state.take_node(1),
                steps: vec![emit_complete(1, 11, t)],
                unprocessed_batch: Vec::new(),
            },
        ];
        merge_window(&batch, results, &mut state, &mut queue);
        assert_eq!(
            drain(&mut queue),
            vec![(t, u64::MAX), (t, 10), (t, 11), (t, 12)]
        );
    }

    /// Batch events a shard's barriers skipped execute *inline* during the
    /// replay, at their exact sequential slot — senior to the stopper even
    /// at a same-microsecond tie. Here the skipped transactions no longer
    /// exist (the crash-dropped shape), so their inline execution is a
    /// stale no-op and only the stopper remains queued; with live
    /// transactions the inline path is exercised end-to-end by the
    /// cross-driver equivalence suite.
    #[test]
    fn skipped_batch_events_execute_inline_during_the_replay() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(400);
        queue.schedule(t, Ev::LbTick); // The stopper, queued behind the batch.
        let batch = [(t, 0usize, TxnId(1)), (t, 0usize, TxnId(2))];
        let results = vec![ShardResult {
            replica: 0,
            node: state.take_node(0),
            steps: Vec::new(),
            unprocessed_batch: vec![(0, TxnId(1)), (1, TxnId(2))],
        }];
        merge_window(&batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX)]);
    }

    /// An emission strictly senior to the stopper is handled inline during
    /// the replay (so its follow-ups get their sequence numbers at its pop
    /// position — the closed tie corner), never merged into the queue.
    /// Here the completion refers to a transaction the state does not know
    /// (the orphaned shape), so the inline handling is a no-op and only the
    /// stopper remains.
    #[test]
    fn pre_stopper_emissions_are_handled_inline_not_queued() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(100);
        let stop = SimTime::from_micros(500);
        queue.schedule(stop, Ev::LbTick); // Stopper well past the emission.
        let batch = [(t, 0usize, TxnId(7))];
        let results = vec![ShardResult {
            replica: 0,
            node: state.take_node(0),
            steps: vec![emit_complete(0, 7, t)],
            unprocessed_batch: Vec::new(),
        }];
        merge_window(&batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(stop, u64::MAX)]);
    }

    /// Stale steps (crash-dropped transactions) consume their transcript
    /// record without emitting anything; later emissions still land in
    /// order behind the same-instant stopper.
    #[test]
    fn stale_steps_merge_to_nothing() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(50);
        queue.schedule(t, Ev::LbTick); // The stopper, bounding the window.
        let batch = [(t, 0usize, TxnId(3)), (t, 0usize, TxnId(4))];
        let results = vec![ShardResult {
            replica: 0,
            node: state.take_node(0),
            steps: vec![
                StepRec {
                    child_at: t,
                    child: ChildOut::Stale,
                },
                emit_complete(0, 4, t),
            ],
            unprocessed_batch: Vec::new(),
        }];
        merge_window(&batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 4)]);
    }

    #[test]
    fn keys_order_like_the_sequential_pop() {
        let t = SimTime::from_micros;
        let a = Key { at: t(5), rank: 3 };
        let b = Key { at: t(5), rank: 7 };
        let c = Key { at: t(6), rank: 0 };
        assert!(a < b, "same instant: earlier insertion pops first");
        assert!(b < c, "time dominates rank");
    }

    #[test]
    fn driver_kind_builds_both_drivers() {
        let _ = DriverKind::Sequential.build();
        let _ = DriverKind::parallel().build();
        assert_eq!(DriverKind::default(), DriverKind::Sequential);
    }

    #[test]
    fn queue_drained_is_an_error_value() {
        let err = RunError::QueueDrained {
            at: SimTime::from_secs(2),
        };
        assert!(err.to_string().contains("2.000"));
    }
}
