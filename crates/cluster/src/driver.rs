//! Drivers: interchangeable event-loop strategies over a [`ClusterState`].
//!
//! PR 1 separated *what happens* on each event (the component handlers,
//! reachable only through [`ClusterState::handle`]) from *when and where*
//! events execute. This module owns the second half. A [`Driver`] pops
//! events from the [`EventQueue`] and feeds them to the state; two
//! implementations exist:
//!
//! * [`SequentialDriver`] — pops one event at a time in `(timestamp, FIFO)`
//!   order. This is the reference semantics: bit-for-bit the behaviour of
//!   the original single-threaded `World` loop.
//! * [`ParallelDriver`] — a windowed parallel discrete-event driver. Runs
//!   of consecutive window-compatible events are popped as a *lookahead
//!   window*: `StepTxn` events are sharded by replica across `std::thread`
//!   workers over `mpsc` channels, while single-component stoppers
//!   (certifier sends, certifier returns, committed completions,
//!   maintenance rounds) are **deferred** into the merge instead of ending
//!   the window. The merge then replays everything — worker transcripts,
//!   deferred stoppers, and the events their handling schedules — in
//!   exactly the sequential pop order, including same-microsecond FIFO
//!   ties, which it reconstructs via generation stamps. Results are
//!   identical to [`SequentialDriver`] for every seed and configuration;
//!   only wall-clock time differs.
//!
//! # The window lifecycle
//!
//! 1. **Formation.** A window opens on a popped `StepTxn` at `t0` and keeps
//!    popping while the queue head is *window-compatible*: any event at or
//!    before the horizon `t0 + 4·lan_hop_us` whose [`Ev::footprint`] is not
//!    [`Footprint::Global`]. Steps join their replica's shard; everything
//!    else becomes a *deferred stopper* carried by the coordinator. Each
//!    popped event records its pop rank — its position in the sequential
//!    pop order. The first `Footprint::Global` event (balancer tick,
//!    fault, placement change, run control) or the first event past the
//!    horizon stays queued and bounds the window as the *true stopper*.
//! 2. **Sharding.** Each shard leases its replica's node and advances that
//!    replica's transactions independently (worker threads when the window
//!    is big enough to pay for the channel hop, inline otherwise),
//!    recording a transcript. Shards observe *barriers* (below) that stop
//!    them exactly where a deferred stopper or an emitted consequence would
//!    sequentially intervene on their replica.
//! 3. **Merge.** The coordinator replays the window in the exact global
//!    sequential order — batch events and deferred stoppers by pop rank,
//!    generated events at their generation positions — executing deferred
//!    stoppers and pre-stopper emissions inline through
//!    [`ClusterState::handle`] and interleaving any events that handling
//!    schedules (see [`merge_window`]). Emissions at or past the true
//!    stopper re-enter the queue at their sequential insertion position.
//!
//! # Why windows are exact
//!
//! Every cross-component interaction travels the simulated LAN and pays at
//! least one `lan_hop_us` of latency. The certifier round-trip
//! (`CertifySend` → `CertifyReturn`) returns to the *origin* replica, so
//! the only path by which window work reaches another replica's node runs
//! through the client: a completion's response travels replica → balancer
//! → client (two hops — commits, aborts, and given-up retries alike, see
//! [`Ev::TxnRetry`]), and the client's next submission travels client →
//! balancer → replica (two more) before the first `StepTxn` on the new
//! replica fires. The submission itself only registers the transaction at
//! the Gatekeeper — state no worker reads. Work at time `t` therefore
//! cannot influence any *shard-visible* state on another replica before
//! `t + 4·lan_hop_us`: the lookahead bound, anchored at the window start
//! `t0`.
//!
//! Worker shards touch *only* their leased replica's node (CPU/disk/buffer
//! models, per-node RNG, executor state); every other handler runs on the
//! coordinator, in exact sequential order, during the merge. The only
//! hazard is therefore an event whose handler touches a node while that
//! node's shard would run past it. Window formation prevents it with
//! **per-shard barriers**, keys in the sequential order `(timestamp, pop
//! rank)` past which a shard must not execute:
//!
//! * a deferred `CertifyReturn{r}`, `TxnComplete{r}`, or `Maintenance{r}`
//!   touches replica `r` at its own instant, so shard `r` is barred from
//!   the stopper's own key;
//! * a deferred `CertifySend{r}` touches only certifier state, but its
//!   answer reaches `r` no earlier than one hop later — shard `r` is
//!   barred from `(t + lan_hop_us, rank)`;
//! * a deferred `ClientArrive` or `TxnRetry` dispatches to a replica the
//!   balancer only picks during the merge, and the submitted transaction's
//!   first step fires two hops later — *every* shard is barred from
//!   `(t + 2·lan_hop_us, rank)`;
//! * the same rules apply to consequences *emitted by the shard itself*
//!   (a completion bars its replica at its key; a certifier send one hop
//!   later), exactly as before deferral;
//! * generated events run only strictly before the true stopper's
//!   timestamp (at a tie they would lose FIFO to it).
//!
//! Barriers are conservative, not lossy: batch events a barrier skipped and
//! children it demoted are executed inline by the merge at their precise
//! sequential slot, after every senior deferred stopper and emission has
//! been handled — which is exactly the sequential state.
//!
//! The merge's interleaving closes the same-microsecond tie corner for
//! deferred stoppers just as PR 4 closed it for emissions: a window entry
//! carries the queue's sequence counter at its *generation* instant
//! ([`EventQueue::next_seq`]), so an event scheduled during the replay pops
//! before a window entry only when its sequence number is below the entry's
//! stamp — the exact FIFO order sequential insertion would have produced.
//! Deferred stoppers and batch events predate everything the replay can
//! schedule and carry the minimum stamp.
//!
//! Failure events (`ReplicaCrash`, `ReplicaRecover`, `CertifierKill`,
//! `Rereplicate`) are `Footprint::Global` and still bound windows as true
//! stoppers. The crash-specific wrinkle is *stale* steps: a crash drops a
//! replica's in-flight transactions while their step events are still
//! queued, so `step_child` is total — it returns `None` for a transaction
//! that no longer exists, and both drivers skip such events identically
//! (the shard transcript records them as `ChildOut::Stale`).
//!
//! # Observability
//!
//! The driver always collects [`DriverStats`] (window counts, sizes,
//! deferral and pooling counters, a log₂ size histogram) into
//! [`ClusterState::driver_stats`], which [`crate::metrics::RunResult`]
//! carries as `driver_stats`. Setting `TASHKENT_DRIVER_STATS` additionally
//! prints a summary to stderr at the end of the run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::mpsc;
use std::thread::{self, JoinHandle};

use tashkent_engine::TxnId;
use tashkent_sim::{EventQueue, SimTime};

use crate::components::ClusterNode;
use crate::events::{Ev, Footprint};
use crate::state::ClusterState;

/// Which driver an experiment runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// The reference single-threaded event loop.
    #[default]
    Sequential,
    /// The windowed multi-threaded driver. Produces results identical to
    /// the sequential reference — same-microsecond FIFO ties included
    /// (enforced by the cross-driver equivalence tests); faster on
    /// multi-core hosts for multi-replica configurations.
    Parallel {
        /// Worker thread count; `0` picks the host's available parallelism.
        threads: usize,
    },
    /// The windowed driver with an explicit dispatch threshold: windows
    /// with at least `min_dispatch` step events go through the worker
    /// pool. `min_dispatch = 0` forces every multi-shard window — however
    /// tiny — through the `mpsc` channel path; the equivalence suites use
    /// it as a stress mode, since production thresholds keep small windows
    /// inline on the coordinator.
    ParallelTuned {
        /// Worker thread count; `0` picks the host's available parallelism.
        threads: usize,
        /// Smallest step count dispatched to worker threads.
        min_dispatch: usize,
    },
}

impl DriverKind {
    /// The parallel driver with automatic thread count.
    pub fn parallel() -> Self {
        DriverKind::Parallel { threads: 0 }
    }

    /// Builds the driver this kind describes.
    pub fn build(self) -> Box<dyn Driver> {
        match self {
            DriverKind::Sequential => Box::new(SequentialDriver),
            DriverKind::Parallel { threads } => Box::new(ParallelDriver::new(threads)),
            DriverKind::ParallelTuned {
                threads,
                min_dispatch,
            } => Box::new(ParallelDriver::new(threads).with_min_dispatch(min_dispatch)),
        }
    }
}

/// A failed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained before the `End` event fired. The experiment
    /// was mis-scheduled (no `End` event, or all load sources exhausted);
    /// the state remains inspectable.
    QueueDrained {
        /// Simulated time of the last processed event.
        at: SimTime,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::QueueDrained { at } => write!(
                f,
                "event queue drained at t={:.3}s before the End event fired",
                at.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// An event-loop strategy: drives a [`ClusterState`] until its `End` event.
pub trait Driver {
    /// Runs until the state's `End` event fires.
    ///
    /// Returns [`RunError::QueueDrained`] when the queue empties first; the
    /// state is left at the drained point for inspection.
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError>;
}

/// The reference driver: one event at a time, in `(timestamp, FIFO)` order.
#[derive(Debug, Default)]
pub struct SequentialDriver;

impl Driver for SequentialDriver {
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError> {
        while !state.ended() {
            let Some((now, ev)) = queue.pop() else {
                return Err(RunError::QueueDrained { at: queue.now() });
            };
            state.handle(now, ev, queue);
        }
        Ok(())
    }
}

/// Number of log₂ buckets in the window-size histogram (sizes 1, 2–3, 4–7,
/// … up to `2^11 = 2048` and beyond in the last bucket).
pub const WINDOW_HIST_BUCKETS: usize = 12;

/// Per-run window accounting, always collected by [`ParallelDriver`] and
/// surfaced through [`crate::metrics::RunResult::driver_stats`]. Setting
/// `TASHKENT_DRIVER_STATS` prints a summary to stderr at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Formed windows (two or more popped events).
    pub windows: u64,
    /// Lone steps handled without forming a window.
    pub singles: u64,
    /// Events popped into formed windows (steps + deferred stoppers).
    pub items: u64,
    /// `StepTxn` events popped into formed windows.
    pub steps: u64,
    /// Stoppers deferred into the merge instead of ending a window.
    pub deferred: u64,
    /// Shards executed across all formed windows.
    pub shards: u64,
    /// Windows dispatched to the worker-thread pool.
    pub pooled: u64,
    /// Window sizes (including singles as size 1), log₂-bucketed: bucket
    /// `i` counts windows of `2^i ..= 2^(i+1) - 1` events.
    pub size_hist: [u64; WINDOW_HIST_BUCKETS],
}

impl DriverStats {
    /// Mean events per formed window (the main parallelism gauge; excludes
    /// lone steps, which never reach the window machinery).
    pub fn mean_window_items(&self) -> f64 {
        self.items as f64 / self.windows.max(1) as f64
    }

    /// Mean events per window counting lone steps as windows of one — the
    /// conservative gauge the CI floor asserts on.
    pub fn mean_window_incl_singles(&self) -> f64 {
        (self.items + self.singles) as f64 / (self.windows + self.singles).max(1) as f64
    }

    fn observe_single(&mut self) {
        self.singles += 1;
        self.size_hist[0] += 1;
    }

    fn observe_window(&mut self, steps: u64, deferred: u64, shards: u64, pooled: bool) {
        let size = steps + deferred;
        self.windows += 1;
        self.items += size;
        self.steps += steps;
        self.deferred += deferred;
        self.shards += shards;
        self.pooled += u64::from(pooled);
        let bucket = (63 - size.max(1).leading_zeros() as usize).min(WINDOW_HIST_BUCKETS - 1);
        self.size_hist[bucket] += 1;
    }
}

/// Orders window items exactly as the sequential driver would pop them:
/// by timestamp, ties broken by insertion rank. Batch events (steps and
/// deferred stoppers) carry their pop rank (`0..batch_len`); events
/// generated during the window rank after every batch event, in generation
/// order — mirroring the queue's monotone sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    rank: u64,
}

/// One popped window event, in pop order.
#[derive(Debug)]
enum WinItem {
    /// A `StepTxn`, sharded to its replica's worker.
    Step { replica: usize, txn: TxnId },
    /// A deferred stopper: executed inline by the merge at its exact slot
    /// in the sequential pop order.
    Deferred(Ev),
}

/// What a processed step produced.
enum ChildOut {
    /// A same-replica `StepTxn` the worker consumed inside the window; its
    /// own record follows later in the transcript.
    Local(TxnId),
    /// An event handed back to the coordinator for the deterministic merge.
    Emit(Ev),
    /// A stale step: its transaction was dropped by a crash before the
    /// already-queued step event fired. The sequential driver schedules
    /// nothing for it, so the merge emits nothing either.
    Stale,
}

/// Transcript record for one processed window item, in processing order.
struct StepRec {
    child_at: SimTime,
    child: ChildOut,
}

/// One replica's work for a window, leased to a worker. The `items`,
/// `steps`, and `unprocessed` vectors are recycled scratch buffers: handed
/// out empty-with-capacity, returned through [`ShardResult`].
struct Job {
    replica: usize,
    node: Box<ClusterNode>,
    /// `(key, txn)` of this replica's batch steps, key-ascending.
    items: Vec<(Key, TxnId)>,
    /// Latest timestamp the window may touch (`t0 + 4·lan_hop_us`).
    horizon: SimTime,
    /// Timestamp of the first event still queued behind the window; the
    /// worker must not execute *generated* events at or past it.
    stop_ts: SimTime,
    /// Earliest key at which a deferred stopper touches this replica (its
    /// own key for node-touching stoppers, one hop later for certifier
    /// sends); nothing on this shard may run at or past it.
    defer_barrier: Option<Key>,
    /// Ranks at and above this mark generated children (== batch length,
    /// deferred stoppers included).
    child_rank_base: u64,
    /// One-way LAN latency: the minimum delay before a `CertifySend` can
    /// come back to this replica.
    lan_hop_us: u64,
    /// Recycled transcript buffer (empty on entry).
    steps: Vec<StepRec>,
    /// Recycled skipped-batch buffer (empty on entry).
    unprocessed: Vec<(u64, TxnId)>,
}

/// A worker's answer: the node back, plus everything needed to replay its
/// shard of the window into the global insertion order (and the drained
/// `items` buffer, returned for recycling).
struct ShardResult {
    replica: usize,
    node: Box<ClusterNode>,
    /// The job's batch buffer, drained — returned to the coordinator pool.
    items: Vec<(Key, TxnId)>,
    /// One record per processed item, in processing order.
    steps: Vec<StepRec>,
    /// Ranks of batch events the barriers prevented the worker from
    /// processing, ascending; the merge executes them inline.
    unprocessed_batch: Vec<(u64, TxnId)>,
}

/// Executes one replica's share of a lookahead window.
///
/// The agenda is a mini event queue over this replica only (`agenda` is a
/// recycled heap, empty on entry and exit). Batch steps were popped ahead
/// of every other queued event, so they may run up to the window limits;
/// generated `StepTxn` children join the agenda while they stay *strictly*
/// inside them (at a limit they could tie with an event the window defers,
/// and a generated event loses every tie), everything else is emitted for
/// the merge. The shard's barrier starts at the job's deferred-stopper
/// barrier and is lowered further by its own emissions:
///
/// * a `TxnComplete` touches this replica the moment the merge handles it
///   (slot recycling, retries), so nothing on this replica may run at or
///   past its key;
/// * a `CertifySend` at `t` comes back as a `CertifyReturn` no earlier than
///   `t + lan_hop_us` (conflicts return immediately; commits after
///   durability), which applies remote writesets on this replica — so
///   nothing may run past that time either.
fn run_shard(mut job: Job, agenda: &mut BinaryHeap<Reverse<(Key, u64, usize)>>) -> ShardResult {
    // Agenda entries: (key, raw txn id, transcript index of the generating
    // step for children, or usize::MAX for batch events).
    debug_assert!(agenda.is_empty(), "agenda scratch not drained");
    for (key, txn) in job.items.drain(..) {
        agenda.push(Reverse((key, txn.0, usize::MAX)));
    }
    let mut steps = std::mem::take(&mut job.steps);
    let mut unprocessed_batch = std::mem::take(&mut job.unprocessed);
    let mut next_rank = job.child_rank_base;
    let mut barrier: Option<Key> = job.defer_barrier;

    while let Some(&Reverse((key, txn, _))) = agenda.peek() {
        let is_batch = key.rank < job.child_rank_base;
        let runnable = key.at <= job.horizon
            && (is_batch || key.at < job.stop_ts)
            && barrier.is_none_or(|b| key < b);
        if !runnable {
            break;
        }
        agenda.pop();
        let Some((child_at, child_ev)) = job.node.step_child(key.at, TxnId(txn)) else {
            // Stale step (transaction dropped by a crash): sequentially it
            // schedules nothing, so it consumes no generation rank and
            // raises no barrier.
            steps.push(StepRec {
                child_at: key.at,
                child: ChildOut::Stale,
            });
            continue;
        };
        let ckey = Key {
            at: child_at,
            rank: next_rank,
        };
        next_rank += 1;
        let local = matches!(child_ev, Ev::StepTxn { .. })
            && child_at < job.horizon
            && child_at < job.stop_ts
            && barrier.is_none_or(|b| ckey < b);
        if local {
            let Ev::StepTxn { txn: ctxn, .. } = child_ev else {
                unreachable!()
            };
            agenda.push(Reverse((ckey, ctxn.0, steps.len())));
            steps.push(StepRec {
                child_at,
                child: ChildOut::Local(ctxn),
            });
        } else {
            let consequence = match child_ev {
                Ev::TxnComplete { .. } => Some(ckey),
                // The certifier's answer reaches this replica one hop after
                // the send at the earliest; rank ordering at that instant
                // follows the send's own rank.
                Ev::CertifySend { .. } => Some(Key {
                    at: child_at + job.lan_hop_us,
                    rank: ckey.rank,
                }),
                _ => None,
            };
            if let Some(ck) = consequence {
                barrier = Some(barrier.map_or(ck, |b| b.min(ck)));
            }
            steps.push(StepRec {
                child_at,
                child: ChildOut::Emit(child_ev),
            });
        }
    }

    // Unreached agenda items go back through the merge. A child queued
    // before the barrier dropped is retroactively an emission: patch its
    // generator's record.
    while let Some(Reverse((key, txn, gen_idx))) = agenda.pop() {
        if key.rank < job.child_rank_base {
            unprocessed_batch.push((key.rank, TxnId(txn)));
        } else {
            steps[gen_idx].child = ChildOut::Emit(Ev::StepTxn {
                replica: job.replica,
                txn: TxnId(txn),
            });
        }
    }
    unprocessed_batch.sort_unstable_by_key(|(rank, _)| *rank);

    ShardResult {
        replica: job.replica,
        node: job.node,
        items: job.items,
        steps,
        unprocessed_batch,
    }
}

/// What a replay entry does when its turn in the sequential order comes.
enum Replay {
    /// A window step (batch event or in-window generated child): consume
    /// its shard's next transcript record — or, when the shard's barriers
    /// skipped it (batch events only), execute it inline.
    Item(TxnId),
    /// A deferred stopper or an emission senior to the true stopper: handle
    /// it inline at its exact sequential pop position.
    Handle(Ev),
}

/// One pending element of the window replay.
///
/// `key` orders entries exactly as the sequential pop would (timestamp,
/// then pop/generation rank). `stamp` is the queue's sequence counter at
/// the entry's *generation* instant — where sequential execution would have
/// inserted it — so a same-instant tie against an event scheduled during
/// the replay resolves exactly as the sequential FIFO would: the entry is
/// senior to every event scheduled at or after its stamp. Batch events and
/// deferred stoppers predate the whole replay and carry `i64::MIN`.
struct ReplayEntry {
    key: Key,
    stamp: i64,
    replica: usize,
    action: Replay,
}

impl PartialEq for ReplayEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for ReplayEntry {}

impl PartialOrd for ReplayEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReplayEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key) // Ranks are unique, so keys are total.
    }
}

/// Recycled merge-side allocations, reused across windows: the replay heap,
/// the replica → shard-slot map, and the pools shard buffers return to.
#[derive(Default)]
struct MergeScratch {
    heap: BinaryHeap<Reverse<ReplayEntry>>,
    slot_of: Vec<usize>,
    items_pool: Vec<Vec<(Key, TxnId)>>,
    steps_pool: Vec<Vec<StepRec>>,
    unproc_pool: Vec<Vec<(u64, TxnId)>>,
}

/// One shard's transcript under replay: cursor-consumed so the buffers can
/// be recycled afterwards.
struct ShardCursor {
    steps: Vec<StepRec>,
    step_i: usize,
    unprocessed: Vec<(u64, TxnId)>,
    unproc_i: usize,
}

/// Replays per-shard transcripts and deferred stoppers in the exact global
/// sequential order.
///
/// The sequential driver would have interleaved the window's events across
/// replicas by `(timestamp, queue sequence)`; sequence numbers are assigned
/// at insertion. The replay walks a heap of window entries keyed like the
/// sequential pop order: every batch event (step or deferred stopper) at
/// its pop rank, every generated event at its generation rank. Everything
/// the *true stopper* — the first event still queued behind the window —
/// is junior to goes back to the queue: emissions at or past its timestamp
/// re-enter via [`EventQueue::merge`] at their generation position (every
/// window item pops sequentially *before* the stopper, so their insertions
/// all precede any post-stopper processing — the relative order is exact).
/// Everything *senior* to the stopper executes inline right here, at its
/// precise slot in the sequential order:
///
/// * a deferred stopper runs through [`ClusterState::handle`] at its pop
///   rank — its shard was barred from that key onward, so the node state
///   it touches is exactly the sequential state;
/// * a batch step the shard's barriers skipped runs through
///   [`ClusterState::handle`] at its own key — by then every deferred
///   stopper and emission that raised the barrier has itself been handled;
/// * a pre-stopper emission (completion, certification send, overflow step)
///   is handled at its key, after its shard's transcript is necessarily
///   exhausted (each shard stops at its consequence barriers, so no
///   in-window work on that replica follows the emission's key).
///
/// Inline handling *schedules* events; those may land before later replay
/// entries, and sequentially they would pop in between. The loop therefore
/// interleaves the two streams: before each replay entry, any queue event
/// that sequentially precedes it — earlier timestamp, or an equal
/// timestamp with a sequence number below the entry's generation stamp —
/// is popped and handled first. Pre-existing queue events never qualify
/// (every replay entry is senior to the true stopper by construction), so
/// the interleave only ever runs events the replay itself produced. This
/// is what closes the same-microsecond tie corner: follow-ups of
/// inline-handled stoppers and emissions receive their sequence numbers at
/// the handler's pop position, exactly as sequential insertion would.
fn merge_window(
    batch: &mut Vec<(SimTime, WinItem)>,
    results: Vec<ShardResult>,
    state: &mut ClusterState,
    queue: &mut EventQueue<Ev>,
    sc: &mut MergeScratch,
) {
    let child_rank_base = batch.len() as u64;
    // The true stopper: the first event still queued behind the window.
    // Batch events are senior to it by FIFO even at equal timestamps;
    // generated children are strictly earlier; emissions may land at or
    // past it.
    let stop_ts = queue.peek_time();
    let pre_stopper = |at: SimTime| stop_ts.is_none_or(|s| at < s);
    // Index transcripts by replica; return the leased nodes.
    sc.slot_of.clear();
    sc.slot_of.resize(state.config.replicas, usize::MAX);
    let mut shards: Vec<ShardCursor> = Vec::with_capacity(results.len());
    for r in results {
        sc.slot_of[r.replica] = shards.len();
        shards.push(ShardCursor {
            steps: r.steps,
            step_i: 0,
            unprocessed: r.unprocessed_batch,
            unproc_i: 0,
        });
        state.put_node(r.replica, r.node);
        sc.items_pool.push(r.items);
    }

    // Seed the replay with every batch event at its pop rank. Batch events
    // predate everything the replay can schedule, hence the MIN stamp.
    sc.heap.clear();
    for (rank, (at, item)) in batch.drain(..).enumerate() {
        let key = Key {
            at,
            rank: rank as u64,
        };
        let entry = match item {
            WinItem::Step { replica, txn } => ReplayEntry {
                key,
                stamp: i64::MIN,
                replica,
                action: Replay::Item(txn),
            },
            WinItem::Deferred(ev) => ReplayEntry {
                key,
                stamp: i64::MIN,
                replica: usize::MAX,
                action: Replay::Handle(ev),
            },
        };
        sc.heap.push(Reverse(entry));
    }
    let mut next_rank = child_rank_base;
    while let Some(Reverse(top)) = sc.heap.peek() {
        // Interleave: events the inline handling scheduled that
        // sequentially precede the next replay entry pop first.
        let (top_at, top_stamp) = (top.key.at, top.stamp);
        if queue
            .peek_key()
            .is_some_and(|(at, seq)| at < top_at || (at == top_at && seq < top_stamp))
        {
            let (at, ev) = queue.pop().expect("peeked event vanished");
            state.handle(at, ev, queue);
            continue;
        }
        let Reverse(entry) = sc.heap.pop().expect("peeked entry vanished");
        match entry.action {
            Replay::Item(txn) => {
                let slot = sc.slot_of[entry.replica];
                debug_assert_ne!(slot, usize::MAX, "window item for an absent shard");
                let shard = &mut shards[slot];
                if entry.key.rank < child_rank_base
                    && shard
                        .unprocessed
                        .get(shard.unproc_i)
                        .is_some_and(|(rank, _)| *rank == entry.key.rank)
                {
                    // A batch step the shard's barriers skipped: its
                    // sequential turn is exactly now — execute it inline.
                    shard.unproc_i += 1;
                    state.handle(
                        entry.key.at,
                        Ev::StepTxn {
                            replica: entry.replica,
                            txn,
                        },
                        queue,
                    );
                } else {
                    assert!(
                        shard.step_i < shard.steps.len(),
                        "transcript shorter than replayed items"
                    );
                    let rec = std::mem::replace(
                        &mut shard.steps[shard.step_i],
                        StepRec {
                            child_at: SimTime::ZERO,
                            child: ChildOut::Stale,
                        },
                    );
                    shard.step_i += 1;
                    match rec.child {
                        ChildOut::Local(ctxn) => {
                            let key = Key {
                                at: rec.child_at,
                                rank: next_rank,
                            };
                            next_rank += 1;
                            sc.heap.push(Reverse(ReplayEntry {
                                key,
                                stamp: queue.next_seq(),
                                replica: entry.replica,
                                action: Replay::Item(ctxn),
                            }));
                        }
                        ChildOut::Emit(ev) => {
                            let key = Key {
                                at: rec.child_at,
                                rank: next_rank,
                            };
                            next_rank += 1;
                            if pre_stopper(rec.child_at) {
                                sc.heap.push(Reverse(ReplayEntry {
                                    key,
                                    stamp: queue.next_seq(),
                                    replica: entry.replica,
                                    action: Replay::Handle(ev),
                                }));
                            } else {
                                queue.merge(rec.child_at, ev);
                            }
                        }
                        // A stale step scheduled nothing sequentially: no
                        // emission, nothing to replay.
                        ChildOut::Stale => {}
                    }
                }
            }
            Replay::Handle(ev) => state.handle(entry.key.at, ev, queue),
        }
        if state.ended() {
            // Nothing past an End would have executed sequentially either.
            return;
        }
    }
    for mut shard in shards {
        debug_assert_eq!(
            shard.step_i,
            shard.steps.len(),
            "transcript longer than replayed items"
        );
        debug_assert_eq!(
            shard.unproc_i,
            shard.unprocessed.len(),
            "unprocessed batch events never replayed"
        );
        shard.steps.clear();
        sc.steps_pool.push(shard.steps);
        shard.unprocessed.clear();
        sc.unproc_pool.push(shard.unprocessed);
    }
}

/// Persistent worker threads; each window's jobs are spread round-robin by
/// shard position, so a window's shards never pile onto one worker (the
/// merge re-sorts by rank, so routing cannot affect results). Each worker
/// keeps a thread-local agenda heap, recycled across the jobs it runs.
///
/// Windows are tens of microseconds of work, so both channel ends spin
/// briefly before parking: a blocking `recv` wake-up costs several
/// microseconds of futex latency per hop, which would swamp the overlapped
/// step work. Spinning is bounded, so idle stretches (long sequential runs
/// between windows) still park the workers.
struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    /// `Err` carries a worker's panic payload; the coordinator re-raises it
    /// instead of blocking forever on a result that will never come.
    results: mpsc::Receiver<thread::Result<ShardResult>>,
    handles: Vec<JoinHandle<()>>,
}

/// Bounded spin before falling back to a blocking receive.
const SPIN_RECVS: u32 = 2_000;

fn spin_recv<T>(rx: &mpsc::Receiver<T>) -> Option<T> {
    for _ in 0..SPIN_RECVS {
        match rx.try_recv() {
            Ok(v) => return Some(v),
            Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
            Err(mpsc::TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (res_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            let res_tx = res_tx.clone();
            senders.push(tx);
            handles.push(thread::spawn(move || {
                let mut agenda = BinaryHeap::new();
                while let Some(job) = spin_recv(&rx) {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_shard(job, &mut agenda)
                    }));
                    let poisoned = result.is_err();
                    if res_tx.send(result).is_err() || poisoned {
                        break;
                    }
                }
            }));
        }
        WorkerPool {
            senders,
            results,
            handles,
        }
    }

    /// Dispatches one window's jobs and collects all shard results (in
    /// arbitrary completion order; the merge re-sorts deterministically).
    fn run(&self, jobs: Vec<Job>) -> Vec<ShardResult> {
        let n = jobs.len();
        let workers = self.senders.len();
        for (i, job) in jobs.into_iter().enumerate() {
            self.senders[i % workers]
                .send(job)
                .expect("worker thread died");
        }
        (0..n)
            .map(
                |_| match spin_recv(&self.results).expect("worker thread died") {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                },
            )
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // Hang up; workers drain and exit.
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The windowed multi-threaded driver. See the module docs for the window
/// lifecycle and the exactness argument; [`ParallelDriver::new`] with `0`
/// threads sizes the pool to the host.
pub struct ParallelDriver {
    /// Resolved worker count (`available_parallelism` is queried once; it
    /// is a syscall, far too slow for the per-window hot path).
    workers: usize,
    /// Smallest window (step events) worth a channel round-trip per shard;
    /// smaller windows run inline on the coordinator. Purely a performance
    /// knob — both paths run the identical algorithm.
    min_dispatch: usize,
    pool: Option<WorkerPool>,
    stats: DriverStats,
    /// Print the stats summary at the end of the run
    /// (`TASHKENT_DRIVER_STATS`).
    print_stats: bool,
    // Recycled window-formation scratch: the size-proportional buffers
    // (batch, per-shard item/transcript vectors, replay heap, worker
    // agendas) are pooled across windows; only the few-elements-long
    // `jobs`/`results` vectors still allocate per window.
    batch: Vec<(SimTime, WinItem)>,
    job_of: Vec<usize>,
    defer_barrier: Vec<Option<Key>>,
    agenda: BinaryHeap<Reverse<(Key, u64, usize)>>,
    merge: MergeScratch,
}

impl ParallelDriver {
    /// Smallest window dispatched to worker threads by default: below this
    /// the per-shard channel round-trip costs more than the overlapped step
    /// work buys (steps are sub-microsecond; an `mpsc` hop is not).
    const MIN_DISPATCH: usize = 8;

    /// Creates the driver with `threads` workers (`0` = host parallelism).
    pub fn new(threads: usize) -> Self {
        let workers = if threads > 0 {
            threads
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        ParallelDriver {
            workers,
            min_dispatch: Self::MIN_DISPATCH,
            pool: None,
            stats: DriverStats::default(),
            print_stats: std::env::var_os("TASHKENT_DRIVER_STATS").is_some(),
            batch: Vec::new(),
            job_of: Vec::new(),
            defer_barrier: Vec::new(),
            agenda: BinaryHeap::new(),
            merge: MergeScratch::default(),
        }
    }

    /// Overrides the smallest step count dispatched to worker threads
    /// (stress/testing; `0` forces every multi-shard window through the
    /// pool).
    pub fn with_min_dispatch(mut self, min_dispatch: usize) -> Self {
        self.min_dispatch = min_dispatch;
        self
    }

    /// Executes one lookahead window starting from the already-popped
    /// `StepTxn` at `t0`.
    fn run_window(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
        t0: SimTime,
        first: Ev,
    ) {
        let lan_hop_us = state.lan_hop_us();
        let horizon = t0 + 4 * lan_hop_us;
        let Ev::StepTxn { replica, txn } = first else {
            unreachable!("windows start on StepTxn");
        };
        // A window-compatible event: inside the horizon and not
        // cross-cutting. Steps shard out; other non-global stoppers defer.
        let windowable =
            |t: SimTime, ev: &Ev| t <= horizon && !matches!(ev.footprint(), Footprint::Global);
        // Lone steps dominate sparse phases; peek before paying for window
        // formation on the hottest event type.
        if !matches!(queue.peek(), Some((t, ev)) if windowable(t, ev)) {
            self.stats.observe_single();
            state.handle(t0, Ev::StepTxn { replica, txn }, queue);
            return;
        }
        let replicas = state.config.replicas;
        self.batch.clear();
        self.batch.push((t0, WinItem::Step { replica, txn }));
        self.defer_barrier.clear();
        self.defer_barrier.resize(replicas, None);
        // Barrier every shard observes (deferred dispatch events: the
        // submitted transaction's first step may land on any replica two
        // hops out).
        let mut all_barrier: Option<Key> = None;
        let mut n_steps: u64 = 1;
        while let Some((t, ev)) = queue.pop_if(windowable) {
            let rank = self.batch.len() as u64;
            match ev {
                Ev::StepTxn { replica, txn } => {
                    n_steps += 1;
                    self.batch.push((t, WinItem::Step { replica, txn }));
                }
                ev => {
                    // A deferred stopper: the merge will handle it inline at
                    // this exact pop rank; bar the shard(s) it can reach
                    // from the first key its handling can touch them at.
                    match ev.footprint() {
                        Footprint::Replica(r) => {
                            let key = Key { at: t, rank };
                            let slot = &mut self.defer_barrier[r];
                            *slot = Some(slot.map_or(key, |b| b.min(key)));
                        }
                        Footprint::Certifier { origin } => {
                            let key = Key {
                                at: t + lan_hop_us,
                                rank,
                            };
                            let slot = &mut self.defer_barrier[origin];
                            *slot = Some(slot.map_or(key, |b| b.min(key)));
                        }
                        Footprint::Dispatch => {
                            let key = Key {
                                at: t + 2 * lan_hop_us,
                                rank,
                            };
                            all_barrier = Some(all_barrier.map_or(key, |b| b.min(key)));
                        }
                        Footprint::Global => unreachable!("windowable excludes global events"),
                    }
                    self.batch.push((t, WinItem::Deferred(ev)));
                }
            }
        }
        let stop_ts = queue.peek_time().unwrap_or(SimTime::from_micros(u64::MAX));
        let child_rank_base = self.batch.len() as u64;

        // Shard the steps by replica, preserving pop order within each.
        let mut jobs: Vec<Job> = Vec::new();
        self.job_of.clear();
        self.job_of.resize(replicas, usize::MAX);
        for (rank, (at, item)) in self.batch.iter().enumerate() {
            let WinItem::Step { replica, txn } = item else {
                continue;
            };
            let key = Key {
                at: *at,
                rank: rank as u64,
            };
            if self.job_of[*replica] == usize::MAX {
                self.job_of[*replica] = jobs.len();
                jobs.push(Job {
                    replica: *replica,
                    node: state.take_node(*replica),
                    items: self.merge.items_pool.pop().unwrap_or_default(),
                    horizon,
                    stop_ts,
                    defer_barrier: match (self.defer_barrier[*replica], all_barrier) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    },
                    child_rank_base,
                    lan_hop_us,
                    steps: self.merge.steps_pool.pop().unwrap_or_default(),
                    unprocessed: self.merge.unproc_pool.pop().unwrap_or_default(),
                });
            }
            jobs[self.job_of[*replica]].items.push((key, *txn));
        }

        let pooled = jobs.len() >= 2 && self.workers >= 2 && n_steps as usize >= self.min_dispatch;
        self.stats.observe_window(
            n_steps,
            child_rank_base - n_steps,
            jobs.len() as u64,
            pooled,
        );
        let results: Vec<ShardResult> = if pooled {
            let workers = self.workers;
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
            pool.run(jobs)
        } else {
            let mut out = Vec::with_capacity(jobs.len());
            for job in jobs {
                out.push(run_shard(job, &mut self.agenda));
            }
            out
        };
        let mut batch = std::mem::take(&mut self.batch);
        merge_window(&mut batch, results, state, queue, &mut self.merge);
        self.batch = batch;
    }
}

impl Driver for ParallelDriver {
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError> {
        // Per-run accounting: a reused driver must not blend runs.
        self.stats = DriverStats::default();
        let result = loop {
            if state.ended() {
                break Ok(());
            }
            let Some((now, ev)) = queue.pop() else {
                break Err(RunError::QueueDrained { at: queue.now() });
            };
            match ev {
                Ev::StepTxn { .. } => self.run_window(state, queue, now, ev),
                ev => state.handle(now, ev, queue),
            }
        };
        state.driver_stats = Some(self.stats);
        if self.print_stats {
            let s = &self.stats;
            eprintln!(
                "parallel driver: {} windows ({} pooled), {} single-step, \
                 {:.2} items/window ({:.2} incl. singles), {:.2} shards/window, \
                 {} deferred stoppers, hist {:?}",
                s.windows,
                s.pooled,
                s.singles,
                s.mean_window_items(),
                s.mean_window_incl_singles(),
                s.shards as f64 / s.windows.max(1) as f64,
                s.deferred,
                s.size_hist,
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, PolicySpec};
    use tashkent_workloads::tpcw::{self, TpcwScale};

    /// Drives a tiny cluster to completion under `driver`, returning the
    /// result fingerprint and the driver's window stats (`None` for the
    /// sequential reference).
    fn drive(mut driver: Box<dyn Driver>) -> ((u64, u64, u64, u64), Option<DriverStats>) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 3,
            clients: 9,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        };
        let mut state = ClusterState::new(config, workload, vec![mix]);
        let mut queue = EventQueue::new();
        state.prime(&mut queue);
        queue.schedule(SimTime::from_secs(2), Ev::EndWarmup);
        queue.schedule(SimTime::from_secs(12), Ev::End);
        driver
            .run_to_end(&mut state, &mut queue)
            .expect("End event scheduled");
        let (read, write) = state.disk_bytes();
        let r = state.metrics.finish(queue.now(), read, write, Vec::new());
        ((r.committed, r.aborts, read, write), state.driver_stats)
    }

    fn fingerprint(driver: Box<dyn Driver>) -> (u64, u64, u64, u64) {
        drive(driver).0
    }

    #[test]
    fn forced_pooled_windows_match_sequential() {
        // `min_dispatch = 0` forces every multi-shard window through the
        // mpsc worker pool, even the tiny ones the production threshold
        // keeps inline — the channel path must be just as exact.
        let pooled = ParallelDriver::new(2).with_min_dispatch(0);
        assert_eq!(
            fingerprint(Box::new(SequentialDriver)),
            fingerprint(Box::new(pooled)),
        );
    }

    #[test]
    fn deferral_produces_larger_windows_than_step_only_stops() {
        // With deferral, certifier round-trips and completions no longer
        // terminate windows: the same run must both match the sequential
        // fingerprint and actually defer stoppers.
        let (seq, _) = drive(Box::new(SequentialDriver));
        let (par, stats) = drive(Box::new(ParallelDriver::new(2)));
        let stats = stats.expect("parallel driver records stats");
        assert!(stats.deferred > 0, "run must defer stoppers: {stats:?}");
        assert!(stats.windows > 0);
        assert_eq!(seq, par);
    }

    /// A 3-replica state + queue pair for merge-order tests.
    fn tiny_state_with(policy: PolicySpec) -> (ClusterState, EventQueue<Ev>) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 3,
            clients: 3,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        (
            ClusterState::new(config, workload, vec![mix]),
            EventQueue::new(),
        )
    }

    fn tiny_state() -> (ClusterState, EventQueue<Ev>) {
        tiny_state_with(PolicySpec::LeastConnections)
    }

    /// Marker for `LbTick` in drained-queue assertions.
    const TICK: u64 = u64::MAX;
    /// Marker for `TxnRetry` in drained-queue assertions.
    const RETRY: u64 = u64::MAX - 1;

    /// Drains the queue into `(time, txn-or-marker)` pairs: `TxnComplete`
    /// and `StepTxn` map to their transaction id, `LbTick` to [`TICK`],
    /// `TxnRetry` to [`RETRY`].
    fn drain(queue: &mut EventQueue<Ev>) -> Vec<(SimTime, u64)> {
        std::iter::from_fn(|| queue.pop())
            .map(|(at, ev)| match ev {
                Ev::TxnComplete { txn, .. } | Ev::StepTxn { txn, .. } => (at, txn.0),
                Ev::LbTick => (at, TICK),
                Ev::TxnRetry { .. } => (at, RETRY),
                other => panic!("unexpected event in merge test: {other:?}"),
            })
            .collect()
    }

    fn emit_complete(replica: usize, txn: u64, at: SimTime) -> StepRec {
        StepRec {
            child_at: at,
            child: ChildOut::Emit(Ev::TxnComplete {
                replica,
                txn: TxnId(txn),
                committed: true,
            }),
        }
    }

    fn step_item(at: SimTime, replica: usize, txn: u64) -> (SimTime, WinItem) {
        (
            at,
            WinItem::Step {
                replica,
                txn: TxnId(txn),
            },
        )
    }

    fn shard_result(
        state: &mut ClusterState,
        replica: usize,
        steps: Vec<StepRec>,
        unprocessed_batch: Vec<(u64, TxnId)>,
    ) -> ShardResult {
        ShardResult {
            replica,
            node: state.take_node(replica),
            items: Vec::new(),
            steps,
            unprocessed_batch,
        }
    }

    fn run_merge(
        batch: Vec<(SimTime, WinItem)>,
        results: Vec<ShardResult>,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) {
        let mut batch = batch;
        merge_window(
            &mut batch,
            results,
            state,
            queue,
            &mut MergeScratch::default(),
        );
    }

    /// Regression for the `merge_window` same-microsecond tie corner: two
    /// shards emitting at an *identical* timestamp must replay in batch pop
    /// order, and both must stay junior to an event that was already queued
    /// at that instant (the true stopper) — exactly the sequential
    /// insertion order.
    #[test]
    fn same_instant_cross_shard_emissions_replay_in_pop_order() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(100);
        // Sequential schedule order: step(0), step(1), then the stopper.
        for (replica, txn) in [(0usize, 7000u64), (1, 7001)] {
            queue.schedule(
                t,
                Ev::StepTxn {
                    replica,
                    txn: TxnId(txn),
                },
            );
        }
        queue.schedule(t, Ev::LbTick);
        // The window pops both steps (they are senior to the stopper).
        let batch = vec![step_item(t, 0, 7000), step_item(t, 1, 7001)];
        queue
            .pop_if(|_, ev| matches!(ev, Ev::StepTxn { .. }))
            .unwrap();
        queue
            .pop_if(|_, ev| matches!(ev, Ev::StepTxn { .. }))
            .unwrap();
        let results = vec![
            shard_result(&mut state, 0, vec![emit_complete(0, 7000, t)], Vec::new()),
            shard_result(&mut state, 1, vec![emit_complete(1, 7001, t)], Vec::new()),
        ];
        run_merge(batch, results, &mut state, &mut queue);
        // Sequentially: the stopper's seq predates both emissions.
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 7000), (t, 7001)]);
    }

    /// Same-instant emissions from shards whose batch events *interleave*
    /// (replica 0, replica 1, replica 0 again at one timestamp) must merge
    /// in global batch-rank order, not per-shard order. The stopper bounds
    /// the window at the same instant, so the emissions take the queue
    /// path; being junior, they pop after it.
    #[test]
    fn same_instant_interleaved_shards_keep_global_rank_order() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(250);
        queue.schedule(t, Ev::LbTick); // The stopper, bounding the window.
        let batch = vec![
            step_item(t, 0, 10),
            step_item(t, 1, 11),
            step_item(t, 0, 12),
        ];
        let results = vec![
            shard_result(
                &mut state,
                0,
                vec![emit_complete(0, 10, t), emit_complete(0, 12, t)],
                Vec::new(),
            ),
            shard_result(&mut state, 1, vec![emit_complete(1, 11, t)], Vec::new()),
        ];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(
            drain(&mut queue),
            vec![(t, u64::MAX), (t, 10), (t, 11), (t, 12)]
        );
    }

    /// Batch events a shard's barriers skipped execute *inline* during the
    /// replay, at their exact sequential slot — senior to the stopper even
    /// at a same-microsecond tie. Here the skipped transactions no longer
    /// exist (the crash-dropped shape), so their inline execution is a
    /// stale no-op and only the stopper remains queued; with live
    /// transactions the inline path is exercised end-to-end by the
    /// cross-driver equivalence suite.
    #[test]
    fn skipped_batch_events_execute_inline_during_the_replay() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(400);
        queue.schedule(t, Ev::LbTick); // The stopper, queued behind the batch.
        let batch = vec![step_item(t, 0, 1), step_item(t, 0, 2)];
        let results = vec![shard_result(
            &mut state,
            0,
            Vec::new(),
            vec![(0, TxnId(1)), (1, TxnId(2))],
        )];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX)]);
    }

    /// An emission strictly senior to the stopper is handled inline during
    /// the replay (so its follow-ups get their sequence numbers at its pop
    /// position — the closed tie corner), never merged into the queue.
    /// Here the completion refers to a transaction the state does not know
    /// (the orphaned shape), so the inline handling is a no-op and only the
    /// stopper remains.
    #[test]
    fn pre_stopper_emissions_are_handled_inline_not_queued() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(100);
        let stop = SimTime::from_micros(500);
        queue.schedule(stop, Ev::LbTick); // Stopper well past the emission.
        let batch = vec![step_item(t, 0, 7)];
        let results = vec![shard_result(
            &mut state,
            0,
            vec![emit_complete(0, 7, t)],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(stop, u64::MAX)]);
    }

    /// Stale steps (crash-dropped transactions) consume their transcript
    /// record without emitting anything; later emissions still land in
    /// order behind the same-instant stopper.
    #[test]
    fn stale_steps_merge_to_nothing() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(50);
        queue.schedule(t, Ev::LbTick); // The stopper, bounding the window.
        let batch = vec![step_item(t, 0, 3), step_item(t, 0, 4)];
        let results = vec![shard_result(
            &mut state,
            0,
            vec![
                StepRec {
                    child_at: t,
                    child: ChildOut::Stale,
                },
                emit_complete(0, 4, t),
            ],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 4)]);
    }

    /// A deferred stopper executes inline at its exact pop rank: senior to
    /// everything the replay schedules, junior to batch events popped
    /// before it — even when every key shares one microsecond.
    #[test]
    fn deferred_stoppers_replay_at_their_pop_rank() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(90);
        queue.schedule(t, Ev::LbTick); // The true stopper.
                                       // Pop order: step(0), deferred completion for an unknown txn (a
                                       // no-op on handle), step(0) again. The deferred entry must slot
                                       // between the two steps' emissions.
        let batch = vec![
            step_item(t, 0, 20),
            (
                t,
                WinItem::Deferred(Ev::TxnComplete {
                    replica: 2,
                    txn: TxnId(9999),
                    committed: true,
                }),
            ),
            step_item(t, 0, 21),
        ];
        let results = vec![shard_result(
            &mut state,
            0,
            vec![emit_complete(0, 20, t), emit_complete(0, 21, t)],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        // The deferred no-op leaves no trace; the emissions stay in pop
        // order behind the same-instant stopper.
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 20), (t, 21)]);
    }

    /// The regression the deferral design hinges on: a deferred
    /// `CertifyReturn` whose inline handling schedules same-microsecond
    /// work that must interleave exactly with *another* shard's replay at
    /// that very microsecond. The aborted return schedules a completion at
    /// its own instant; sequentially that completion pops *between* shard
    /// 1's two same-instant emissions (its sequence number falls between
    /// their insertion points), so the merge must handle it mid-replay —
    /// freeing replica 0's slot and sending the retry back to the client
    /// two hops out — not before or after the shard's entries.
    #[test]
    fn deferred_certify_return_interleaves_same_instant_work_across_shards() {
        let (mut state, mut queue) = tiny_state_with(PolicySpec::RoundRobin);
        // A real in-flight transaction on replica 0 (round-robin starts
        // there), so the certifier's abort response finds its metadata.
        state.handle(SimTime::ZERO, Ev::ClientArrive { client: 0 }, &mut queue);
        let (at, ev) = queue.pop().expect("arrival schedules the first step");
        assert!(matches!(ev, Ev::StepTxn { replica: 0, .. }), "{ev:?}");
        assert_eq!(at, SimTime::from_micros(300), "two LAN hops out");
        let t = SimTime::from_micros(400);
        queue.schedule(t + 1, Ev::LbTick); // True stopper, one µs later.
                                           // Window pop order: step on shard 1, the deferred abort return for
                                           // replica 0's transaction, another step on shard 1.
        let batch = vec![
            step_item(t, 1, 77),
            (
                t,
                WinItem::Deferred(Ev::CertifyReturn {
                    replica: 0,
                    txn: TxnId(0),
                    version: None,
                }),
            ),
            step_item(t, 1, 78),
        ];
        // Shard 1's transcript: both steps emit same-instant completions
        // for transactions the state does not know (inline no-ops standing
        // in for real window work at time `t`).
        let results = vec![shard_result(
            &mut state,
            1,
            vec![emit_complete(1, 77, t), emit_complete(1, 78, t)],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        // Sequential order inside the merge: step 77 (emission 77 stamped),
        // the deferred return (schedules TxnComplete{replica 0} at `t`),
        // step 78 (emission 78 stamped later), emission 77 (stamped before
        // the return's follow-up — handled first), the interleaved
        // TxnComplete{0} — which frees replica 0's slot and schedules the
        // client's retry two hops out — then emission 78. Left behind: the
        // stopper and the retry.
        assert_eq!(drain(&mut queue), vec![(t + 1, TICK), (t + 300, RETRY)],);
    }

    /// A job's deferred barrier stops the shard exactly at the barrier key:
    /// senior batch steps run, junior ones return as unprocessed for the
    /// merge to execute inline.
    #[test]
    fn defer_barrier_splits_a_shard_at_the_key() {
        let (mut state, _queue) = tiny_state();
        let t = SimTime::from_micros(100);
        let job = Job {
            replica: 0,
            node: state.take_node(0),
            // Two same-instant steps for transactions the node does not
            // run (stale): ranks 0 and 2 straddle the barrier at rank 1.
            items: vec![
                (Key { at: t, rank: 0 }, TxnId(50)),
                (Key { at: t, rank: 2 }, TxnId(51)),
            ],
            horizon: t + 300,
            stop_ts: t + 1000,
            defer_barrier: Some(Key { at: t, rank: 1 }),
            child_rank_base: 3,
            lan_hop_us: 150,
            steps: Vec::new(),
            unprocessed: Vec::new(),
        };
        let mut agenda = BinaryHeap::new();
        let result = run_shard(job, &mut agenda);
        assert_eq!(result.steps.len(), 1, "only the senior step ran");
        assert!(matches!(result.steps[0].child, ChildOut::Stale));
        assert_eq!(result.unprocessed_batch, vec![(2, TxnId(51))]);
        state.put_node(0, result.node);
    }

    #[test]
    fn keys_order_like_the_sequential_pop() {
        let t = SimTime::from_micros;
        let a = Key { at: t(5), rank: 3 };
        let b = Key { at: t(5), rank: 7 };
        let c = Key { at: t(6), rank: 0 };
        assert!(a < b, "same instant: earlier insertion pops first");
        assert!(b < c, "time dominates rank");
    }

    #[test]
    fn stats_histogram_buckets_by_log2() {
        let mut stats = DriverStats::default();
        stats.observe_single();
        stats.observe_window(2, 1, 1, false); // size 3 -> bucket 1
        stats.observe_window(6, 2, 2, true); // size 8 -> bucket 3
        assert_eq!(stats.size_hist[0], 1);
        assert_eq!(stats.size_hist[1], 1);
        assert_eq!(stats.size_hist[3], 1);
        assert_eq!(stats.items, 11);
        assert_eq!(stats.deferred, 3);
        assert!((stats.mean_window_items() - 5.5).abs() < 1e-9);
        assert!((stats.mean_window_incl_singles() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn driver_kind_builds_all_drivers() {
        let _ = DriverKind::Sequential.build();
        let _ = DriverKind::parallel().build();
        let _ = DriverKind::ParallelTuned {
            threads: 2,
            min_dispatch: 0,
        }
        .build();
        assert_eq!(DriverKind::default(), DriverKind::Sequential);
    }

    #[test]
    fn queue_drained_is_an_error_value() {
        let err = RunError::QueueDrained {
            at: SimTime::from_secs(2),
        };
        assert!(err.to_string().contains("2.000"));
    }
}
