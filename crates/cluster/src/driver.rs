//! Drivers: interchangeable event-loop strategies over a [`ClusterState`].
//!
//! PR 1 separated *what happens* on each event (the component handlers,
//! reachable only through [`ClusterState::handle`]) from *when and where*
//! events execute. This module owns the second half. A [`Driver`] pops
//! events from the [`EventQueue`] and feeds them to the state; two
//! implementations exist:
//!
//! * [`SequentialDriver`] — pops one event at a time in `(timestamp, FIFO)`
//!   order. This is the reference semantics: bit-for-bit the behaviour of
//!   the original single-threaded `World` loop.
//! * [`ParallelDriver`] — a windowed parallel discrete-event driver. Runs
//!   of consecutive window-compatible events are popped as a *lookahead
//!   window*: `StepTxn` events are sharded by replica across a persistent
//!   pool of worker threads over dedicated SPSC lanes ([`crate::sync`]),
//!   while single-component stoppers (certifier sends, certifier returns,
//!   committed completions, maintenance rounds) are **deferred** into the
//!   merge instead of ending the window. The merge then replays everything
//!   — worker transcripts, deferred stoppers, and the events their
//!   handling schedules — in exactly the sequential pop order, including
//!   same-microsecond FIFO ties, which it reconstructs via generation
//!   stamps. Results are identical to [`SequentialDriver`] for every seed
//!   and configuration; only wall-clock time differs.
//!
//! # The window lifecycle
//!
//! 1. **Formation.** A window opens on a popped `StepTxn` at `t0` and keeps
//!    popping while the queue head is *window-compatible*: any event at or
//!    before the horizon `t0 + 4·lan_hop_us` whose [`Ev::footprint`] is not
//!    [`Footprint::Global`]. Steps join their replica's shard; everything
//!    else becomes a *deferred stopper* carried by the coordinator. Each
//!    popped event records its pop rank — its position in the sequential
//!    pop order. The first `Footprint::Global` event (balancer tick,
//!    fault, placement change, run control) or the first event past the
//!    horizon stays queued and bounds the window as the *true stopper*.
//! 2. **Sharding.** Each shard leases its replica's node and advances that
//!    replica's transactions independently (persistent worker threads when
//!    the window is big enough to pay for the handoff, inline otherwise),
//!    recording a transcript. Shards observe *barriers* (below) that stop
//!    them exactly where a deferred stopper or an emitted consequence would
//!    sequentially intervene on their replica.
//! 3. **Merge.** The coordinator replays the window in the exact global
//!    sequential order — batch events and deferred stoppers by pop rank,
//!    generated events at their generation positions — executing deferred
//!    stoppers and pre-stopper emissions inline through
//!    [`ClusterState::handle`] and interleaving any events that handling
//!    schedules (see [`merge_window`]). Emissions at or past the true
//!    stopper re-enter the queue at their sequential insertion position.
//!    The replay starts as soon as the jobs are dispatched — it does not
//!    wait for the shards — and *streams* their transcripts in: a shard's
//!    transcript is awaited only at the first replay entry that needs it,
//!    so merge work on one shard overlaps execution of the others.
//!
//! # The persistent pool and shard leases
//!
//! Worker threads are spawned once and live for the driver's lifetime.
//! Each worker owns two dedicated SPSC ring-buffer lanes ([`crate::sync`]):
//! a job lane (coordinator → worker) carrying window jobs and node
//! recalls, and a result lane (worker → coordinator) carrying shard
//! transcripts and recalled nodes. Both consumers spin briefly and then
//! park, so an idle pool costs ~0 CPU (the old `mpsc` path burned ~2k spin
//! iterations per worker per window; [`DriverStats::worker_spins`] now
//! stays bounded by the message count). A worker panic is caught and
//! forwarded over the result lane, and the coordinator re-raises it.
//!
//! Shard-to-worker affinity is stable — replica `r` always goes to worker
//! `r % workers` — which enables **shard leases across windows**: when a
//! pooled window's merge completes, shard nodes that no coordinator
//! handler demanded simply *stay at their workers*, and the next pooled
//! window's job for that replica ships without a node (`Job::node` is
//! `None`; the worker already holds it). A maximal stretch of windows
//! executed this way is a *run* ([`DriverStats::runs`]); it ends at the
//! first true barrier — an event whose handler may touch any node
//! ([`crate::events::NodeDemand::AllNodes`]: dispatch, balancer ticks,
//! faults, run control) — which recalls every leased node before it runs.
//!
//! The recall discipline is what keeps leases exact. Every
//! [`ClusterState::handle`] call the coordinator makes is preceded by a
//! check of the event's [`crate::events::NodeDemand`]: a single-replica
//! handler pulls exactly that node home (if leased), an all-nodes handler
//! pulls everything home, a unified-certifier handler pulls nothing, and a
//! sharded-certification handler ([`crate::events::NodeDemand::CertGroups`])
//! pulls exactly the touched certifier shards home. Because
//! each worker's job lane is FIFO, a recall enqueued after a job is
//! processed after it — the worker finishes the shard, parks the node in
//! its local rack, and only then sees the recall — so a recall can never
//! race the very shard execution that justifies the lease. The node's
//! *physical location* is thus pure mechanics: the sequence of handler
//! invocations, and the node state each observes, is bit-identical to the
//! sequential driver's.
//!
//! # Dispatch economics
//!
//! A pooled handoff only pays when shards actually run concurrently.
//! [`DriverKind::Parallel`] therefore clamps pooling to
//! `min(threads, available_parallelism) >= 2`: on a single-core host the
//! window machinery still runs (formation, barriers, merge — the full
//! algorithm, inline), but jobs are not shipped to threads that would only
//! context-switch with the coordinator. [`DriverKind::ParallelTuned`]
//! bypasses the clamp (and sets its own `min_dispatch`), so equivalence
//! suites force the channel path even on one core.
//!
//! # Why windows are exact
//!
//! Every cross-component interaction travels the simulated LAN and pays at
//! least one `lan_hop_us` of latency. The certifier round-trip
//! (`CertifySend` → `CertifyReturn`) returns to the *origin* replica, so
//! the only path by which window work reaches another replica's node runs
//! through the client: a completion's response travels replica → balancer
//! → client (two hops — commits, aborts, and given-up retries alike, see
//! [`Ev::TxnRetry`]), and the client's next submission travels client →
//! balancer → replica (two more) before the first `StepTxn` on the new
//! replica fires. The submission itself only registers the transaction at
//! the Gatekeeper — state no worker reads. Work at time `t` therefore
//! cannot influence any *shard-visible* state on another replica before
//! `t + 4·lan_hop_us`: the lookahead bound, anchored at the window start
//! `t0`.
//!
//! Worker shards touch *only* their leased replica's node (CPU/disk/buffer
//! models, per-node RNG, executor state); every other handler runs on the
//! coordinator, in exact sequential order, during the merge. The only
//! hazard is therefore an event whose handler touches a node while that
//! node's shard would run past it. Window formation prevents it with
//! **per-shard barriers**, keys in the sequential order `(timestamp, pop
//! rank)` past which a shard must not execute:
//!
//! * a deferred `CertifyReturn{r}`, `TxnComplete{r}`, or `Maintenance{r}`
//!   touches replica `r` at its own instant, so shard `r` is barred from
//!   the stopper's own key;
//! * a deferred `CertifySend{r}` touches only certifier state, but its
//!   answer reaches `r` no earlier than one hop later — shard `r` is
//!   barred from `(t + lan_hop_us, rank)`;
//! * a deferred `ClientArrive` or `TxnRetry` dispatches to a replica the
//!   balancer only picks during the merge, and the submitted transaction's
//!   first step fires two hops later — *every* shard is barred from
//!   `(t + 2·lan_hop_us, rank)`;
//! * the same rules apply to consequences *emitted by the shard itself*
//!   (a completion bars its replica at its key; a certifier send one hop
//!   later), exactly as before deferral;
//! * generated events run only strictly before the true stopper's
//!   timestamp (at a tie they would lose FIFO to it).
//!
//! Barriers are conservative, not lossy: batch events a barrier skipped and
//! children it demoted are executed inline by the merge at their precise
//! sequential slot, after every senior deferred stopper and emission has
//! been handled — which is exactly the sequential state.
//!
//! The merge's interleaving closes the same-microsecond tie corner for
//! deferred stoppers just as PR 4 closed it for emissions: a window entry
//! carries the queue's sequence counter at its *generation* instant
//! ([`EventQueue::next_seq`]), so an event scheduled during the replay pops
//! before a window entry only when its sequence number is below the entry's
//! stamp — the exact FIFO order sequential insertion would have produced.
//! Deferred stoppers and batch events predate everything the replay can
//! schedule and carry the minimum stamp.
//!
//! # Sharded certification in the window
//!
//! Under [`crate::config::CertifierSharding::Sharded`], certification
//! itself shards across the pool: each certifier group's conflict state
//! ([`CertShard`]) leases to a stable worker exactly like a replica node
//! (lease slot `replicas + group`, affinity `(replicas + group) %
//! workers`), and a pooled window's eligible `CertifySend`s ship to that
//! worker as a *cert job*. The worker runs the group-local conflict checks
//! ([`CertShard::check`]: availability wait, service-time reservation,
//! probe, install); the merge replays each *decision* — global version
//! assignment, log append, per-group commit list, response scheduling —
//! inline at the send's exact pop rank via [`ClusterState::certify_decide`].
//! A send is eligible only when all of these hold:
//!
//! * it touches exactly one group (cross-group sends run an atomic
//!   commitment round against several shards and always replay inline);
//! * its group is available (a fully-dead group queues the request — the
//!   back-pressure path — which is coordinator-side state);
//! * it pops at or before `t0 + lan_hop_us`, which makes it senior, in
//!   `(timestamp, rank)` order, to every certifier send a shard can emit
//!   mid-window (children surface at `completion + lan_hop_us ≥ t0 +
//!   lan_hop_us`, with a junior rank at a tie);
//! * no earlier-popped send destined for inline handling touched its group.
//!
//! The last two rules make the worker-side checks of a group exactly the
//! *senior prefix* of that group's sequential check order for the window:
//! every inline send touching the group is junior to every dispatched
//! check, and its handler recalls the shard first
//! ([`crate::events::NodeDemand::CertGroups`]) — the worker's job lane is
//! FIFO, so the recalled shard reflects precisely the window's checks,
//! which is its sequential state at the inline send's slot. The group-local
//! snapshot position (`gsnap`) each check needs is computed at formation:
//! a transaction's snapshot predates the window, so commits the merge
//! appends mid-window carry strictly larger global versions and cannot
//! shift the partition point. The decision half consumes only
//! coordinator-owned state (the global log) in exact pop order, so version
//! assignment is bit-identical to the sequential driver; the degenerate
//! one-group configuration reproduces the unified certifier bit-for-bit.
//!
//! Failure events (`ReplicaCrash`, `ReplicaRecover`, `CertifierKill`,
//! `Rereplicate`) are `Footprint::Global` and still bound windows as true
//! stoppers. The crash-specific wrinkle is *stale* steps: a crash drops a
//! replica's in-flight transactions while their step events are still
//! queued, so `step_child` is total — it returns `None` for a transaction
//! that no longer exists, and both drivers skip such events identically
//! (the shard transcript records them as `ChildOut::Stale`).
//!
//! # Observability
//!
//! The driver always collects [`DriverStats`] (window counts, sizes,
//! deferral and pooling counters, a log₂ size histogram, plus the pool's
//! pipeline/handoff counters: lease runs, recalls, overlapped merges, a
//! log₂ handoff-stall histogram, and worker busy/parked occupancy) into
//! [`ClusterState::driver_stats`], which [`crate::metrics::RunResult`]
//! carries as `driver_stats`. Setting `TASHKENT_DRIVER_STATS` additionally
//! prints [`DriverStats::summary`] to stderr at the end of the run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use tashkent_certifier::{CertShard, ShardCheck};
use tashkent_engine::{TxnId, Writeset};
use tashkent_sim::{EventQueue, SimTime};

use crate::components::ClusterNode;
use crate::events::{Ev, Footprint, NodeDemand};
use crate::state::ClusterState;
use crate::sync::{self, WaitCounters};

/// Which driver an experiment runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// The reference single-threaded event loop.
    #[default]
    Sequential,
    /// The windowed multi-threaded driver. Produces results identical to
    /// the sequential reference — same-microsecond FIFO ties included
    /// (enforced by the cross-driver equivalence tests); faster on
    /// multi-core hosts for multi-replica configurations. Pooling is
    /// clamped to the dispatch economics of the host: jobs go to worker
    /// threads only when `min(threads, available_parallelism) >= 2` —
    /// on a single-core host the full window algorithm runs inline (see
    /// the module docs, "Dispatch economics").
    Parallel {
        /// Worker thread count; `0` picks the host's available parallelism.
        threads: usize,
    },
    /// The windowed driver with an explicit dispatch threshold: windows
    /// with at least `min_dispatch` step events go through the worker
    /// pool, and the single-core economics clamp is bypassed.
    /// `min_dispatch = 0` forces every multi-shard window — however tiny —
    /// through the pool's channel path; the equivalence suites use it as a
    /// stress mode, since production thresholds keep small windows inline
    /// on the coordinator.
    ParallelTuned {
        /// Worker thread count; `0` picks the host's available parallelism.
        threads: usize,
        /// Smallest step count dispatched to worker threads.
        min_dispatch: usize,
    },
}

impl DriverKind {
    /// The parallel driver with automatic thread count.
    pub fn parallel() -> Self {
        DriverKind::Parallel { threads: 0 }
    }

    /// Builds the driver this kind describes.
    pub fn build(self) -> Box<dyn Driver> {
        match self {
            DriverKind::Sequential => Box::new(SequentialDriver),
            DriverKind::Parallel { threads } => Box::new(ParallelDriver::new(threads)),
            DriverKind::ParallelTuned {
                threads,
                min_dispatch,
            } => Box::new(ParallelDriver::new(threads).with_min_dispatch(min_dispatch)),
        }
    }
}

/// A failed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained before the `End` event fired. The experiment
    /// was mis-scheduled (no `End` event, or all load sources exhausted);
    /// the state remains inspectable.
    QueueDrained {
        /// Simulated time of the last processed event.
        at: SimTime,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::QueueDrained { at } => write!(
                f,
                "event queue drained at t={:.3}s before the End event fired",
                at.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// An event-loop strategy: drives a [`ClusterState`] until its `End` event.
pub trait Driver {
    /// Runs until the state's `End` event fires.
    ///
    /// Returns [`RunError::QueueDrained`] when the queue empties first; the
    /// state is left at the drained point for inspection.
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError>;
}

/// The reference driver: one event at a time, in `(timestamp, FIFO)` order.
#[derive(Debug, Default)]
pub struct SequentialDriver;

impl Driver for SequentialDriver {
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError> {
        while !state.ended() {
            let Some((now, ev)) = queue.pop() else {
                return Err(RunError::QueueDrained { at: queue.now() });
            };
            state.handle(now, ev, queue);
        }
        Ok(())
    }
}

/// Number of log₂ buckets in the window-size histogram (sizes 1, 2–3, 4–7,
/// … up to `2^11 = 2048` and beyond in the last bucket).
pub const WINDOW_HIST_BUCKETS: usize = 12;

/// Number of log₂ buckets in the handoff-stall histogram: bucket 0 counts
/// pooled windows whose coordinator stalled under 512 ns waiting on the
/// pool, bucket `i` covers `2^(8+i) .. 2^(9+i)` ns, and the last bucket
/// absorbs everything from ~8 ms up.
pub const HANDOFF_HIST_BUCKETS: usize = 16;

/// Per-run window accounting, always collected by [`ParallelDriver`] and
/// surfaced through [`crate::metrics::RunResult::driver_stats`]. Setting
/// `TASHKENT_DRIVER_STATS` prints a summary to stderr at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Formed windows (two or more popped events).
    pub windows: u64,
    /// Lone steps handled without forming a window.
    pub singles: u64,
    /// Events popped into formed windows (steps + deferred stoppers).
    pub items: u64,
    /// `StepTxn` events popped into formed windows.
    pub steps: u64,
    /// Stoppers deferred into the merge instead of ending a window.
    pub deferred: u64,
    /// Shards executed across all formed windows.
    pub shards: u64,
    /// Windows dispatched to the worker-thread pool.
    pub pooled: u64,
    /// Window sizes (including singles as size 1), log₂-bucketed: bucket
    /// `i` counts windows of `2^i ..= 2^(i+1) - 1` events.
    pub size_hist: [u64; WINDOW_HIST_BUCKETS],
    /// Lease runs: maximal stretches of pooled windows over which shard
    /// leases could persist at their workers, ended by the first all-nodes
    /// barrier between windows (dispatch, balancer tick, fault, run
    /// control).
    pub runs: u64,
    /// Longest run, in pooled windows.
    pub max_run_windows: u64,
    /// Shard leases left at their worker across a window boundary (counted
    /// per pooled window at merge end).
    pub leases_retained: u64,
    /// Nodes pulled home from workers — mid-merge demands, between-window
    /// single-node demands, and run-ending all-nodes barriers alike.
    pub recalls: u64,
    /// Pooled windows whose merge did replay work while at least one shard
    /// transcript was still in flight — merge/shard pipelining actually
    /// overlapped (wall-clock-dependent, unlike every other counter).
    pub pipelined: u64,
    /// Single-group certification checks executed on pool workers (sharded
    /// certification only; the decide half always replays on the
    /// coordinator).
    pub certifier_sharded: u64,
    /// Certifier sends replayed inline by the merge: cross-group
    /// commitment rounds, sends into unavailable or already-inline-touched
    /// groups, every send of a non-pooled window, and all sends under
    /// unified certification.
    pub certifier_inline: u64,
    /// Per pooled window, nanoseconds the coordinator spent blocked on the
    /// pool (transcript or recall waits), log₂-bucketed; see
    /// [`HANDOFF_HIST_BUCKETS`].
    pub handoff_ns_hist: [u64; HANDOFF_HIST_BUCKETS],
    /// Wall nanoseconds workers spent executing shard jobs this run.
    pub worker_busy_ns: u64,
    /// Wall nanoseconds workers spent parked this run (idle, ~0 CPU).
    pub worker_parked_ns: u64,
    /// Park episodes across all workers this run.
    pub worker_parks: u64,
    /// Spin-loop iterations across all workers this run; bounded by
    /// [`sync::SPIN_LIMIT`] per message or park (the old `mpsc` path spun
    /// ~2000 iterations per worker per window regardless).
    pub worker_spins: u64,
}

impl DriverStats {
    /// Mean events per formed window (the main parallelism gauge; excludes
    /// lone steps, which never reach the window machinery).
    pub fn mean_window_items(&self) -> f64 {
        self.items as f64 / self.windows.max(1) as f64
    }

    /// Mean events per window counting lone steps as windows of one — the
    /// conservative gauge the CI floor asserts on.
    pub fn mean_window_incl_singles(&self) -> f64 {
        (self.items + self.singles) as f64 / (self.windows + self.singles).max(1) as f64
    }

    /// Fraction of accounted worker time spent parked rather than running
    /// shard jobs. Idle workers park in the scheduler, so a mostly-idle
    /// pool pushes this toward 1.0 while costing ~0 CPU.
    pub fn worker_idle_fraction(&self) -> f64 {
        let total = self.worker_parked_ns + self.worker_busy_ns;
        if total == 0 {
            0.0
        } else {
            self.worker_parked_ns as f64 / total as f64
        }
    }

    /// One-line human summary of the run — the `TASHKENT_DRIVER_STATS`
    /// output, factored out so tests can pin its contents without touching
    /// the environment.
    pub fn summary(&self) -> String {
        format!(
            "parallel driver: {} windows ({} pooled, {} pipelined), {} single-step, \
             {:.2} items/window ({:.2} incl. singles), {:.2} shards/window, \
             {} deferred stoppers, {} cert checks sharded / {} cert inline, \
             {} runs (max {} windows, {} leases retained, \
             {} recalls), workers busy {:.3}ms / parked {:.3}ms (idle {:.1}%, \
             {} parks, {} spins), handoff hist {:?}, size hist {:?}",
            self.windows,
            self.pooled,
            self.pipelined,
            self.singles,
            self.mean_window_items(),
            self.mean_window_incl_singles(),
            self.shards as f64 / self.windows.max(1) as f64,
            self.deferred,
            self.certifier_sharded,
            self.certifier_inline,
            self.runs,
            self.max_run_windows,
            self.leases_retained,
            self.recalls,
            self.worker_busy_ns as f64 / 1e6,
            self.worker_parked_ns as f64 / 1e6,
            self.worker_idle_fraction() * 100.0,
            self.worker_parks,
            self.worker_spins,
            self.handoff_ns_hist,
            self.size_hist,
        )
    }

    fn observe_single(&mut self) {
        self.singles += 1;
        self.size_hist[0] += 1;
    }

    fn observe_handoff(&mut self, stall_ns: u64) {
        let bucket = if stall_ns < 256 {
            0
        } else {
            ((63 - stall_ns.leading_zeros() as usize) - 8).min(HANDOFF_HIST_BUCKETS - 1)
        };
        self.handoff_ns_hist[bucket] += 1;
    }

    fn observe_window(&mut self, steps: u64, deferred: u64, shards: u64, pooled: bool) {
        let size = steps + deferred;
        self.windows += 1;
        self.items += size;
        self.steps += steps;
        self.deferred += deferred;
        self.shards += shards;
        self.pooled += u64::from(pooled);
        let bucket = (63 - size.max(1).leading_zeros() as usize).min(WINDOW_HIST_BUCKETS - 1);
        self.size_hist[bucket] += 1;
    }
}

/// Orders window items exactly as the sequential driver would pop them:
/// by timestamp, ties broken by insertion rank. Batch events (steps and
/// deferred stoppers) carry their pop rank (`0..batch_len`); events
/// generated during the window rank after every batch event, in generation
/// order — mirroring the queue's monotone sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    rank: u64,
}

/// One popped window event, in pop order.
#[derive(Debug)]
enum WinItem {
    /// A `StepTxn`, sharded to its replica's worker.
    Step { replica: usize, txn: TxnId },
    /// A deferred stopper: executed inline by the merge at its exact slot
    /// in the sequential pop order.
    Deferred(Ev),
    /// A single-group `CertifySend` eligible for worker-side checking
    /// (see the module docs, "Sharded certification in the window").
    /// Carried as its own variant so job-building can either ship it to
    /// its group's cert job (pooled windows, becoming [`WinItem::CertCheck`])
    /// or demote it to a deferred stopper (inline windows).
    CertSend {
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        groups: u64,
    },
    /// A dispatched certification check: the worker runs the group-local
    /// conflict check; the merge consumes the check record at this exact
    /// pop rank and replays the decision inline.
    CertCheck { group: usize },
}

/// One certification check shipped to a cert group's worker, in pop order
/// within the group.
struct CertCheckItem {
    /// The send's pop key; the check runs at `key.at`.
    key: Key,
    /// Origin replica (the response returns there).
    replica: usize,
    txn: TxnId,
    ws: Writeset,
    /// The group-local snapshot position, computed at formation (exact:
    /// see the module docs).
    gsnap: u64,
}

/// One certifier group's share of a pooled window, leased to its worker
/// like a replica [`Job`]. `checks` and `recs` are recycled buffers.
struct CertJob {
    group: usize,
    /// The group's conflict shard — or `None` when the assigned worker
    /// already racks it under a lease from the previous pooled window.
    shard: Option<Box<CertShard>>,
    /// This group's checks, key-ascending (= pop order).
    checks: Vec<CertCheckItem>,
    /// Recycled record buffer (empty on entry).
    recs: Vec<Option<CertRec>>,
}

/// The worker-side outcome of one certification check; the merge feeds it
/// to [`ClusterState::certify_decide`] at the send's pop rank. `Option`
/// wrapping lets the merge move the writeset out in consumption order.
struct CertRec {
    replica: usize,
    txn: TxnId,
    ws: Writeset,
    check: ShardCheck,
}

/// A worker's answer to a [`CertJob`]: the check records in order (the
/// shard stays racked at the worker, keeping the lease until recalled),
/// plus the drained `checks` buffer for recycling.
struct CertResult {
    group: usize,
    recs: Vec<Option<CertRec>>,
    checks: Vec<CertCheckItem>,
}

/// One cert group's check records under replay, cursor-consumed.
struct CertCursor {
    recs: Vec<Option<CertRec>>,
    rec_i: usize,
}

/// What a processed step produced.
enum ChildOut {
    /// A same-replica `StepTxn` the worker consumed inside the window; its
    /// own record follows later in the transcript.
    Local(TxnId),
    /// An event handed back to the coordinator for the deterministic merge.
    Emit(Ev),
    /// A stale step: its transaction was dropped by a crash before the
    /// already-queued step event fired. The sequential driver schedules
    /// nothing for it, so the merge emits nothing either.
    Stale,
}

/// Transcript record for one processed window item, in processing order.
struct StepRec {
    child_at: SimTime,
    child: ChildOut,
    /// Step trace events the node buffered while executing this item
    /// (empty when tracing is off). The merge replays them into the
    /// coordinator's tracer at the item's exact sequential pop slot, so
    /// the trace stream is byte-identical to the sequential driver's.
    trace: Vec<crate::trace::TraceEvent>,
}

/// One replica's work for a window, leased to a worker. The `items`,
/// `steps`, and `unprocessed` vectors are recycled scratch buffers: handed
/// out empty-with-capacity, returned through [`ShardResult`].
struct Job {
    replica: usize,
    /// The replica's node — or `None` when the assigned worker already
    /// holds it under a lease from the previous pooled window (the worker
    /// resolves it from its rack before running).
    node: Option<Box<ClusterNode>>,
    /// `(key, txn)` of this replica's batch steps, key-ascending.
    items: Vec<(Key, TxnId)>,
    /// Latest timestamp the window may touch (`t0 + 4·lan_hop_us`).
    horizon: SimTime,
    /// Timestamp of the first event still queued behind the window; the
    /// worker must not execute *generated* events at or past it.
    stop_ts: SimTime,
    /// Earliest key at which a deferred stopper touches this replica (its
    /// own key for node-touching stoppers, one hop later for certifier
    /// sends); nothing on this shard may run at or past it.
    defer_barrier: Option<Key>,
    /// Ranks at and above this mark generated children (== batch length,
    /// deferred stoppers included).
    child_rank_base: u64,
    /// One-way LAN latency: the minimum delay before a `CertifySend` can
    /// come back to this replica.
    lan_hop_us: u64,
    /// Recycled transcript buffer (empty on entry).
    steps: Vec<StepRec>,
    /// Recycled skipped-batch buffer (empty on entry).
    unprocessed: Vec<(u64, TxnId)>,
}

/// A worker's answer: the node back, plus everything needed to replay its
/// shard of the window into the global insertion order (and the drained
/// `items` buffer, returned for recycling).
struct ShardResult {
    replica: usize,
    /// The node — `Some` from inline execution, `None` from a pool worker
    /// (which racks the node locally, keeping the lease until recalled).
    node: Option<Box<ClusterNode>>,
    /// The job's batch buffer, drained — returned to the coordinator pool.
    items: Vec<(Key, TxnId)>,
    /// One record per processed item, in processing order.
    steps: Vec<StepRec>,
    /// Ranks of batch events the barriers prevented the worker from
    /// processing, ascending; the merge executes them inline.
    unprocessed_batch: Vec<(u64, TxnId)>,
}

/// Executes one replica's share of a lookahead window.
///
/// The agenda is a mini event queue over this replica only (`agenda` is a
/// recycled heap, empty on entry and exit). Batch steps were popped ahead
/// of every other queued event, so they may run up to the window limits;
/// generated `StepTxn` children join the agenda while they stay *strictly*
/// inside them (at a limit they could tie with an event the window defers,
/// and a generated event loses every tie), everything else is emitted for
/// the merge. The shard's barrier starts at the job's deferred-stopper
/// barrier and is lowered further by its own emissions:
///
/// * a `TxnComplete` touches this replica the moment the merge handles it
///   (slot recycling, retries), so nothing on this replica may run at or
///   past its key;
/// * a `CertifySend` at `t` comes back as a `CertifyReturn` no earlier than
///   `t + lan_hop_us` (conflicts return immediately; commits after
///   durability), which applies remote writesets on this replica — so
///   nothing may run past that time either.
fn run_shard(mut job: Job, agenda: &mut BinaryHeap<Reverse<(Key, u64, usize)>>) -> ShardResult {
    // Agenda entries: (key, raw txn id, transcript index of the generating
    // step for children, or usize::MAX for batch events).
    debug_assert!(agenda.is_empty(), "agenda scratch not drained");
    let mut node = job.node.take().expect("job node resolved before execution");
    for (key, txn) in job.items.drain(..) {
        agenda.push(Reverse((key, txn.0, usize::MAX)));
    }
    let mut steps = std::mem::take(&mut job.steps);
    let mut unprocessed_batch = std::mem::take(&mut job.unprocessed);
    let mut next_rank = job.child_rank_base;
    let mut barrier: Option<Key> = job.defer_barrier;

    while let Some(&Reverse((key, txn, _))) = agenda.peek() {
        let is_batch = key.rank < job.child_rank_base;
        let runnable = key.at <= job.horizon
            && (is_batch || key.at < job.stop_ts)
            && barrier.is_none_or(|b| key < b);
        if !runnable {
            break;
        }
        agenda.pop();
        let Some((child_at, child_ev)) = node.step_child(key.at, TxnId(txn)) else {
            // Stale step (transaction dropped by a crash): sequentially it
            // schedules nothing, so it consumes no generation rank and
            // raises no barrier.
            steps.push(StepRec {
                child_at: key.at,
                child: ChildOut::Stale,
                trace: Vec::new(),
            });
            continue;
        };
        let trace = node.take_trace();
        let ckey = Key {
            at: child_at,
            rank: next_rank,
        };
        next_rank += 1;
        let local = matches!(child_ev, Ev::StepTxn { .. })
            && child_at < job.horizon
            && child_at < job.stop_ts
            && barrier.is_none_or(|b| ckey < b);
        if local {
            let Ev::StepTxn { txn: ctxn, .. } = child_ev else {
                unreachable!()
            };
            agenda.push(Reverse((ckey, ctxn.0, steps.len())));
            steps.push(StepRec {
                child_at,
                child: ChildOut::Local(ctxn),
                trace,
            });
        } else {
            let consequence = match child_ev {
                Ev::TxnComplete { .. } => Some(ckey),
                // The certifier's answer reaches this replica one hop after
                // the send at the earliest; rank ordering at that instant
                // follows the send's own rank.
                Ev::CertifySend { .. } => Some(Key {
                    at: child_at + job.lan_hop_us,
                    rank: ckey.rank,
                }),
                _ => None,
            };
            if let Some(ck) = consequence {
                barrier = Some(barrier.map_or(ck, |b| b.min(ck)));
            }
            steps.push(StepRec {
                child_at,
                child: ChildOut::Emit(child_ev),
                trace,
            });
        }
    }

    // Unreached agenda items go back through the merge. A child queued
    // before the barrier dropped is retroactively an emission: patch its
    // generator's record.
    while let Some(Reverse((key, txn, gen_idx))) = agenda.pop() {
        if key.rank < job.child_rank_base {
            unprocessed_batch.push((key.rank, TxnId(txn)));
        } else {
            steps[gen_idx].child = ChildOut::Emit(Ev::StepTxn {
                replica: job.replica,
                txn: TxnId(txn),
            });
        }
    }
    unprocessed_batch.sort_unstable_by_key(|(rank, _)| *rank);

    ShardResult {
        replica: job.replica,
        node: Some(node),
        items: job.items,
        steps,
        unprocessed_batch,
    }
}

/// What a replay entry does when its turn in the sequential order comes.
enum Replay {
    /// A window step (batch event or in-window generated child): consume
    /// its shard's next transcript record — or, when the shard's barriers
    /// skipped it (batch events only), execute it inline.
    Item(TxnId),
    /// A deferred stopper or an emission senior to the true stopper: handle
    /// it inline at its exact sequential pop position.
    Handle(Ev),
    /// A dispatched certification check: consume the group's next check
    /// record and replay the decision inline.
    Cert(usize),
}

/// One pending element of the window replay.
///
/// `key` orders entries exactly as the sequential pop would (timestamp,
/// then pop/generation rank). `stamp` is the queue's sequence counter at
/// the entry's *generation* instant — where sequential execution would have
/// inserted it — so a same-instant tie against an event scheduled during
/// the replay resolves exactly as the sequential FIFO would: the entry is
/// senior to every event scheduled at or after its stamp. Batch events and
/// deferred stoppers predate the whole replay and carry `i64::MIN`.
struct ReplayEntry {
    key: Key,
    stamp: i64,
    replica: usize,
    action: Replay,
}

impl PartialEq for ReplayEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for ReplayEntry {}

impl PartialOrd for ReplayEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReplayEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key) // Ranks are unique, so keys are total.
    }
}

/// Recycled merge-side allocations, reused across windows: the replay heap,
/// the replica → shard-slot map, and the pools shard buffers return to.
#[derive(Default)]
struct MergeScratch {
    heap: BinaryHeap<Reverse<ReplayEntry>>,
    slot_of: Vec<usize>,
    cert_slot_of: Vec<usize>,
    items_pool: Vec<Vec<(Key, TxnId)>>,
    steps_pool: Vec<Vec<StepRec>>,
    unproc_pool: Vec<Vec<(u64, TxnId)>>,
    checks_pool: Vec<Vec<CertCheckItem>>,
    recs_pool: Vec<Vec<Option<CertRec>>>,
}

impl MergeScratch {
    /// Returns an unconsumed shard result's buffers to the pools (used for
    /// transcripts orphaned when an `End` cuts a merge short).
    fn recycle(&mut self, res: ShardResult) {
        debug_assert!(res.node.is_none(), "orphaned results leave nodes racked");
        let ShardResult {
            mut items,
            mut steps,
            mut unprocessed_batch,
            ..
        } = res;
        items.clear();
        self.items_pool.push(items);
        steps.clear();
        self.steps_pool.push(steps);
        unprocessed_batch.clear();
        self.unproc_pool.push(unprocessed_batch);
    }

    /// Same, for a cert job's buffers.
    fn recycle_cert(&mut self, res: CertResult) {
        let CertResult {
            mut recs,
            mut checks,
            ..
        } = res;
        recs.clear();
        self.recs_pool.push(recs);
        checks.clear();
        self.checks_pool.push(checks);
    }
}

/// One shard's transcript under replay: cursor-consumed so the buffers can
/// be recycled afterwards.
struct ShardCursor {
    steps: Vec<StepRec>,
    step_i: usize,
    unprocessed: Vec<(u64, TxnId)>,
    unproc_i: usize,
}

/// Where a replica's node physically lives right now. `Home` means it sits
/// in [`ClusterState`] (every handler may touch it); `AtWorker(w)` means it
/// is leased to pool worker `w`'s rack and must be recalled before any
/// coordinator handler that demands it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeLoc {
    Home,
    AtWorker(usize),
}

/// Coordinator → worker messages, one FIFO lane per worker. The FIFO order
/// is load-bearing: a `Recall` enqueued after a `Job` is only seen after
/// the job completed and its node is racked, so a recall can never race
/// the shard execution that holds the lease.
enum ToWorker {
    Job(Job),
    /// Return this replica's racked node to the coordinator.
    Recall(usize),
    /// A certifier group's window checks (sharded certification).
    CertJob(CertJob),
    /// Return this group's racked cert shard to the coordinator.
    RecallCert(usize),
}

/// Worker → coordinator messages, one FIFO lane per worker.
enum FromWorker {
    /// A finished shard (`node` is `None`: the worker racked it).
    Shard(ShardResult),
    /// A recalled node coming home.
    Node {
        replica: usize,
        node: Box<ClusterNode>,
    },
    /// A finished cert job (the worker racked the shard).
    CertDone(CertResult),
    /// A recalled cert shard coming home.
    CertHome { group: usize, shard: Box<CertShard> },
    /// The worker panicked; the coordinator re-raises the payload.
    Panic(Box<dyn std::any::Any + Send>),
}

/// The merge's view of in-flight shard work: pool lanes to drain, the
/// lease map to keep honest, and stall/recall accounting. With `pool:
/// None` (inline windows, unit tests) it degenerates to "everything is
/// already here".
struct ShardFeed<'a> {
    pool: Option<&'a WorkerPool>,
    /// Lease slots: replicas `0..replicas`, cert groups `replicas..`.
    lease: &'a mut [NodeLoc],
    /// Replica count — the base of the cert-group lease slots.
    replicas: usize,
    /// Transcripts (shard + cert) dispatched but not yet absorbed.
    pending: usize,
    /// Nanoseconds the merge spent blocked on the pool.
    stall_ns: u64,
    /// Nodes and cert shards recalled mid-merge.
    recalls: u64,
    /// Whether any replay work happened while a transcript was in flight.
    overlapped: bool,
}

impl<'a> ShardFeed<'a> {
    fn new(
        pool: Option<&'a WorkerPool>,
        lease: &'a mut [NodeLoc],
        replicas: usize,
        pending: usize,
    ) -> Self {
        ShardFeed {
            pool,
            lease,
            replicas,
            pending,
            stall_ns: 0,
            recalls: 0,
            overlapped: false,
        }
    }

    /// Installs one shard result as a replay cursor (and puts its node
    /// home if it travelled with the result — the inline path).
    fn install(
        &mut self,
        mut res: ShardResult,
        state: &mut ClusterState,
        sc: &mut MergeScratch,
        shards: &mut Vec<ShardCursor>,
    ) {
        if let Some(node) = res.node.take() {
            state.put_node(res.replica, node);
            self.lease[res.replica] = NodeLoc::Home;
        }
        sc.slot_of[res.replica] = shards.len();
        shards.push(ShardCursor {
            steps: res.steps,
            step_i: 0,
            unprocessed: res.unprocessed_batch,
            unproc_i: 0,
        });
        sc.items_pool.push(res.items);
    }

    /// Installs one cert result as a check-record cursor (the shard stays
    /// racked at the worker).
    fn install_cert(
        &mut self,
        res: CertResult,
        sc: &mut MergeScratch,
        certs: &mut Vec<CertCursor>,
    ) {
        sc.cert_slot_of[res.group] = certs.len();
        certs.push(CertCursor {
            recs: res.recs,
            rec_i: 0,
        });
        let mut checks = res.checks;
        checks.clear();
        sc.checks_pool.push(checks);
    }

    fn absorb(
        &mut self,
        msg: FromWorker,
        state: &mut ClusterState,
        sc: &mut MergeScratch,
        shards: &mut Vec<ShardCursor>,
        certs: &mut Vec<CertCursor>,
    ) {
        match msg {
            FromWorker::Shard(res) => {
                debug_assert!(self.pending > 0, "transcript nobody dispatched");
                self.pending -= 1;
                self.install(res, state, sc, shards);
            }
            FromWorker::Node { replica, node } => {
                state.put_node(replica, node);
                self.lease[replica] = NodeLoc::Home;
            }
            FromWorker::CertDone(res) => {
                debug_assert!(self.pending > 0, "cert records nobody dispatched");
                self.pending -= 1;
                self.install_cert(res, sc, certs);
            }
            FromWorker::CertHome { group, shard } => {
                state.put_cert_shard(group, shard);
                self.lease[self.replicas + group] = NodeLoc::Home;
            }
            FromWorker::Panic(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Blocks on the pool for the next message, accounting the stall.
    fn blocking_next(&mut self) -> FromWorker {
        let pool = self.pool.expect("blocked on shard results without a pool");
        let start = Instant::now();
        let msg = pool.recv_any();
        self.stall_ns += start.elapsed().as_nanos() as u64;
        msg
    }

    /// Opportunistically absorbs transcripts that already landed, keeping
    /// lanes shallow while the replay works.
    fn poll(
        &mut self,
        state: &mut ClusterState,
        sc: &mut MergeScratch,
        shards: &mut Vec<ShardCursor>,
        certs: &mut Vec<CertCursor>,
    ) {
        if self.pending == 0 {
            return;
        }
        let Some(pool) = self.pool else { return };
        while let Some(msg) = pool.try_recv_any() {
            self.absorb(msg, state, sc, shards, certs);
            if self.pending == 0 {
                break;
            }
        }
    }

    /// Waits until shard `replica`'s transcript has been installed.
    fn ensure_transcript(
        &mut self,
        replica: usize,
        state: &mut ClusterState,
        sc: &mut MergeScratch,
        shards: &mut Vec<ShardCursor>,
        certs: &mut Vec<CertCursor>,
    ) {
        while sc.slot_of[replica] == usize::MAX {
            assert!(self.pending > 0, "window item for an absent shard");
            let msg = self.blocking_next();
            self.absorb(msg, state, sc, shards, certs);
        }
    }

    /// Waits until cert group `group`'s check records have been installed.
    fn ensure_cert_records(
        &mut self,
        group: usize,
        state: &mut ClusterState,
        sc: &mut MergeScratch,
        shards: &mut Vec<ShardCursor>,
        certs: &mut Vec<CertCursor>,
    ) {
        while sc.cert_slot_of[group] == usize::MAX {
            assert!(self.pending > 0, "cert check for an absent cert job");
            let msg = self.blocking_next();
            self.absorb(msg, state, sc, shards, certs);
        }
    }

    /// Recalls whatever nodes (or cert shards) `demand` requires and waits
    /// until they are home. Transcripts arriving in the meantime are
    /// absorbed (each worker's lanes are FIFO, so a recalled node follows
    /// any transcript the same worker produced first).
    fn ensure(
        &mut self,
        demand: NodeDemand,
        state: &mut ClusterState,
        sc: &mut MergeScratch,
        shards: &mut Vec<ShardCursor>,
        certs: &mut Vec<CertCursor>,
    ) {
        match demand {
            NodeDemand::NoNode => {}
            NodeDemand::Node(replica) => {
                let NodeLoc::AtWorker(w) = self.lease[replica] else {
                    return;
                };
                let pool = self.pool.expect("lease without a pool");
                pool.recall(w, replica);
                self.recalls += 1;
                while self.lease[replica] != NodeLoc::Home {
                    let msg = self.blocking_next();
                    self.absorb(msg, state, sc, shards, certs);
                }
            }
            NodeDemand::CertGroups(mask) => {
                let mut m = mask;
                while m != 0 {
                    let g = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let slot = self.replicas + g;
                    let Some(NodeLoc::AtWorker(w)) = self.lease.get(slot).copied() else {
                        continue; // Home, or no cert leases (unified mode).
                    };
                    let pool = self.pool.expect("lease without a pool");
                    pool.recall_cert(w, g);
                    self.recalls += 1;
                    while self.lease[slot] != NodeLoc::Home {
                        let msg = self.blocking_next();
                        self.absorb(msg, state, sc, shards, certs);
                    }
                }
            }
            NodeDemand::AllNodes => {
                let Some(pool) = self.pool else {
                    debug_assert!(self.lease.iter().all(|l| *l == NodeLoc::Home));
                    return;
                };
                let mut any = false;
                for (slot, loc) in self.lease.iter().enumerate() {
                    if let NodeLoc::AtWorker(w) = *loc {
                        if slot < self.replicas {
                            pool.recall(w, slot);
                        } else {
                            pool.recall_cert(w, slot - self.replicas);
                        }
                        self.recalls += 1;
                        any = true;
                    }
                }
                while any && self.lease.iter().any(|l| *l != NodeLoc::Home) {
                    let msg = self.blocking_next();
                    self.absorb(msg, state, sc, shards, certs);
                }
            }
        }
    }
}

/// Replays per-shard transcripts and deferred stoppers in the exact global
/// sequential order.
///
/// The sequential driver would have interleaved the window's events across
/// replicas by `(timestamp, queue sequence)`; sequence numbers are assigned
/// at insertion. The replay walks a heap of window entries keyed like the
/// sequential pop order: every batch event (step or deferred stopper) at
/// its pop rank, every generated event at its generation rank. Everything
/// the *true stopper* — the first event still queued behind the window —
/// is junior to goes back to the queue: emissions at or past its timestamp
/// re-enter via [`EventQueue::merge`] at their generation position (every
/// window item pops sequentially *before* the stopper, so their insertions
/// all precede any post-stopper processing — the relative order is exact).
/// Everything *senior* to the stopper executes inline right here, at its
/// precise slot in the sequential order:
///
/// * a deferred stopper runs through [`ClusterState::handle`] at its pop
///   rank — its shard was barred from that key onward, so the node state
///   it touches is exactly the sequential state;
/// * a batch step the shard's barriers skipped runs through
///   [`ClusterState::handle`] at its own key — by then every deferred
///   stopper and emission that raised the barrier has itself been handled;
/// * a pre-stopper emission (completion, certification send, overflow step)
///   is handled at its key, after its shard's transcript is necessarily
///   exhausted (each shard stops at its consequence barriers, so no
///   in-window work on that replica follows the emission's key).
///
/// Inline handling *schedules* events; those may land before later replay
/// entries, and sequentially they would pop in between. The loop therefore
/// interleaves the two streams: before each replay entry, any queue event
/// that sequentially precedes it — earlier timestamp, or an equal
/// timestamp with a sequence number below the entry's generation stamp —
/// is popped and handled first. Pre-existing queue events never qualify
/// (every replay entry is senior to the true stopper by construction), so
/// the interleave only ever runs events the replay itself produced. This
/// is what closes the same-microsecond tie corner: follow-ups of
/// inline-handled stoppers and emissions receive their sequence numbers at
/// the handler's pop position, exactly as sequential insertion would.
/// Streaming addition for the pipelined pool: the replay does not wait for
/// the shards. Inline results arrive via `ready`; pool transcripts stream
/// in through `feed` — awaited lazily at the first replay entry that needs
/// them ([`ShardFeed::ensure_transcript`]), so the merge of early shards
/// overlaps execution of late ones. Node presence is equally lazy: every
/// inline [`ClusterState::handle`] call is preceded by a
/// [`ShardFeed::ensure`] on the event's [`NodeDemand`], which recalls
/// leased nodes exactly when a handler would touch them. Neither changes
/// the order of handler invocations — only *when the coordinator waits*.
fn merge_window(
    batch: &mut Vec<(SimTime, WinItem)>,
    ready: Vec<ShardResult>,
    feed: &mut ShardFeed<'_>,
    state: &mut ClusterState,
    queue: &mut EventQueue<Ev>,
    sc: &mut MergeScratch,
) {
    let child_rank_base = batch.len() as u64;
    // The true stopper: the first event still queued behind the window.
    // Batch events are senior to it by FIFO even at equal timestamps;
    // generated children are strictly earlier; emissions may land at or
    // past it.
    let stop_ts = queue.peek_time();
    let pre_stopper = |at: SimTime| stop_ts.is_none_or(|s| at < s);
    // Index transcripts by replica (and cert records by group) as they
    // arrive.
    sc.slot_of.clear();
    sc.slot_of.resize(state.config.replicas, usize::MAX);
    sc.cert_slot_of.clear();
    sc.cert_slot_of.resize(state.cert_group_count(), usize::MAX);
    let mut shards: Vec<ShardCursor> = Vec::with_capacity(ready.len() + feed.pending);
    let mut certs: Vec<CertCursor> = Vec::new();
    for r in ready {
        feed.install(r, state, sc, &mut shards);
    }

    // Seed the replay with every batch event at its pop rank. Batch events
    // predate everything the replay can schedule, hence the MIN stamp.
    sc.heap.clear();
    for (rank, (at, item)) in batch.drain(..).enumerate() {
        let key = Key {
            at,
            rank: rank as u64,
        };
        let entry = match item {
            WinItem::Step { replica, txn } => ReplayEntry {
                key,
                stamp: i64::MIN,
                replica,
                action: Replay::Item(txn),
            },
            WinItem::Deferred(ev) => ReplayEntry {
                key,
                stamp: i64::MIN,
                replica: usize::MAX,
                action: Replay::Handle(ev),
            },
            WinItem::CertCheck { group } => ReplayEntry {
                key,
                stamp: i64::MIN,
                replica: usize::MAX,
                action: Replay::Cert(group),
            },
            WinItem::CertSend { .. } => {
                unreachable!("cert sends resolve to CertCheck or Deferred before the merge")
            }
        };
        sc.heap.push(Reverse(entry));
    }
    let mut next_rank = child_rank_base;
    while let Some((top_at, top_stamp)) = sc.heap.peek().map(|Reverse(e)| (e.key.at, e.stamp)) {
        // Keep lanes shallow: absorb transcripts that already landed.
        feed.poll(state, sc, &mut shards, &mut certs);
        // Interleave: events the inline handling scheduled that
        // sequentially precede the next replay entry pop first.
        if queue
            .peek_key()
            .is_some_and(|(at, seq)| at < top_at || (at == top_at && seq < top_stamp))
        {
            let (at, ev) = queue.pop().expect("peeked event vanished");
            feed.ensure(ev.footprint().demand(), state, sc, &mut shards, &mut certs);
            state.handle(at, ev, queue);
            feed.overlapped |= feed.pending > 0;
            if state.ended() {
                return;
            }
            continue;
        }
        let Reverse(entry) = sc.heap.pop().expect("peeked entry vanished");
        match entry.action {
            Replay::Item(txn) => {
                feed.ensure_transcript(entry.replica, state, sc, &mut shards, &mut certs);
                let slot = sc.slot_of[entry.replica];
                debug_assert_ne!(slot, usize::MAX, "window item for an absent shard");
                let take_unprocessed = {
                    let shard = &shards[slot];
                    entry.key.rank < child_rank_base
                        && shard
                            .unprocessed
                            .get(shard.unproc_i)
                            .is_some_and(|(rank, _)| *rank == entry.key.rank)
                };
                if take_unprocessed {
                    // A batch step the shard's barriers skipped: its
                    // sequential turn is exactly now — execute it inline
                    // (which touches the node, so pull it home first).
                    shards[slot].unproc_i += 1;
                    feed.ensure(
                        NodeDemand::Node(entry.replica),
                        state,
                        sc,
                        &mut shards,
                        &mut certs,
                    );
                    state.handle(
                        entry.key.at,
                        Ev::StepTxn {
                            replica: entry.replica,
                            txn,
                        },
                        queue,
                    );
                } else {
                    let shard = &mut shards[slot];
                    assert!(
                        shard.step_i < shard.steps.len(),
                        "transcript shorter than replayed items"
                    );
                    let rec = std::mem::replace(
                        &mut shard.steps[shard.step_i],
                        StepRec {
                            child_at: SimTime::ZERO,
                            child: ChildOut::Stale,
                            trace: Vec::new(),
                        },
                    );
                    shard.step_i += 1;
                    // This is the step's sequential pop slot: replay its
                    // buffered trace events before anything it scheduled.
                    state.tracer.replay(rec.trace);
                    match rec.child {
                        ChildOut::Local(ctxn) => {
                            let key = Key {
                                at: rec.child_at,
                                rank: next_rank,
                            };
                            next_rank += 1;
                            sc.heap.push(Reverse(ReplayEntry {
                                key,
                                stamp: queue.next_seq(),
                                replica: entry.replica,
                                action: Replay::Item(ctxn),
                            }));
                        }
                        ChildOut::Emit(ev) => {
                            let key = Key {
                                at: rec.child_at,
                                rank: next_rank,
                            };
                            next_rank += 1;
                            if pre_stopper(rec.child_at) {
                                sc.heap.push(Reverse(ReplayEntry {
                                    key,
                                    stamp: queue.next_seq(),
                                    replica: entry.replica,
                                    action: Replay::Handle(ev),
                                }));
                            } else {
                                queue.merge(rec.child_at, ev);
                            }
                        }
                        // A stale step scheduled nothing sequentially: no
                        // emission, nothing to replay.
                        ChildOut::Stale => {}
                    }
                }
            }
            Replay::Handle(ev) => {
                feed.ensure(ev.footprint().demand(), state, sc, &mut shards, &mut certs);
                state.handle(entry.key.at, ev, queue);
            }
            Replay::Cert(group) => {
                feed.ensure_cert_records(group, state, sc, &mut shards, &mut certs);
                let slot = sc.cert_slot_of[group];
                let cur = &mut certs[slot];
                let rec = cur.recs[cur.rec_i]
                    .take()
                    .expect("cert record consumed twice");
                cur.rec_i += 1;
                state.certify_decide(group, rec.replica, rec.txn, rec.ws, rec.check, queue);
            }
        }
        feed.overlapped |= feed.pending > 0;
        if state.ended() {
            // Nothing past an End would have executed sequentially either.
            return;
        }
    }
    debug_assert_eq!(feed.pending, 0, "transcripts outlived the replay");
    for mut shard in shards {
        debug_assert_eq!(
            shard.step_i,
            shard.steps.len(),
            "transcript longer than replayed items"
        );
        debug_assert_eq!(
            shard.unproc_i,
            shard.unprocessed.len(),
            "unprocessed batch events never replayed"
        );
        shard.steps.clear();
        sc.steps_pool.push(shard.steps);
        shard.unprocessed.clear();
        sc.unproc_pool.push(shard.unprocessed);
    }
    for mut cur in certs {
        debug_assert_eq!(
            cur.rec_i,
            cur.recs.len(),
            "cert records longer than replayed checks"
        );
        cur.recs.clear();
        sc.recs_pool.push(cur.recs);
    }
}

/// Persistent worker threads over dedicated SPSC lanes ([`crate::sync`]).
///
/// Each replica has a *stable affinity* — [`WorkerPool::worker_of`] maps
/// replica `r` to worker `r % workers` — so a worker that keeps a shard
/// lease across windows always receives that replica's next job on its own
/// lane, in FIFO order with any recall for the same node. That FIFO-per-lane
/// property is what makes leases race-free: a `Recall(r)` enqueued after a
/// `Job` for `r` cannot overtake it.
///
/// Workers rack leased nodes locally (`held`), run jobs with a
/// thread-local agenda heap, and send results (or the leased node, on
/// recall) back on their own result lane. Panics inside `run_shard` are
/// caught and forwarded as [`FromWorker::Panic`] so the coordinator
/// re-raises them instead of deadlocking on a result that never comes.
///
/// Windows are tens of microseconds of work, so both ends spin briefly
/// ([`sync::SPIN_LIMIT`]) before parking: a park/unpark wake-up costs
/// microseconds of futex latency per hop, which would swamp the overlapped
/// step work. Spinning is bounded, so idle stretches (long sequential runs
/// between windows) park the workers at ~zero CPU; [`WaitCounters`] records
/// the split so [`DriverStats::worker_idle_fraction`] can prove it.
struct WorkerPool {
    jobs: Vec<sync::Sender<ToWorker>>,
    results: Vec<sync::Receiver<FromWorker>>,
    /// Shared spin/park/busy accounting across all workers (cumulative for
    /// the pool's lifetime; the driver snapshots deltas per run).
    counters: Arc<WaitCounters>,
    /// Replica count — cert group `g`'s stable affinity is offset past the
    /// replicas' so cert work spreads over different workers.
    replicas: usize,
    handles: Vec<JoinHandle<()>>,
}

/// Per-lane ring capacity. A window dispatches at most one job per shard
/// and shards per worker are small, but recalls and jobs can stack several
/// deep during long runs; 64 slots make producer-full yields vanishingly
/// rare without measurable footprint.
const LANE_CAP: usize = 64;

impl WorkerPool {
    fn new(workers: usize, replicas: usize, cert_groups: usize) -> Self {
        let counters = Arc::new(WaitCounters::default());
        let mut jobs = Vec::with_capacity(workers);
        let mut results = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (job_tx, job_rx) = sync::channel::<ToWorker>(LANE_CAP);
            let (res_tx, res_rx) = sync::channel::<FromWorker>(LANE_CAP);
            let counters = Arc::clone(&counters);
            jobs.push(job_tx);
            results.push(res_rx);
            handles.push(
                thread::Builder::new()
                    .name(format!("tashkent-worker-{i}"))
                    .spawn(move || {
                        worker_main(job_rx, res_tx, counters, replicas, cert_groups);
                    })
                    .expect("spawn worker thread"),
            );
        }
        // Register the coordinator thread on every result lane up front so
        // workers can unpark it; `recv_any` relies on this.
        for rx in &results {
            rx.register();
        }
        WorkerPool {
            jobs,
            results,
            counters,
            replicas,
            handles,
        }
    }

    /// Stable shard affinity: replica `r` always runs on this worker.
    fn worker_of(&self, replica: usize) -> usize {
        replica % self.jobs.len()
    }

    /// Stable cert-group affinity: group `g` always runs on this worker,
    /// offset past the replica slots so certification overlaps execution.
    fn worker_of_cert(&self, group: usize) -> usize {
        (self.replicas + group) % self.jobs.len()
    }

    fn send_job(&self, job: Job) {
        let w = self.worker_of(job.replica);
        if self.jobs[w].send(ToWorker::Job(job)).is_err() {
            self.surface_death();
        }
    }

    fn send_cert_job(&self, job: CertJob) {
        let w = self.worker_of_cert(job.group);
        if self.jobs[w].send(ToWorker::CertJob(job)).is_err() {
            self.surface_death();
        }
    }

    /// Asks worker `w` (the lease holder) to send `replica`'s node home.
    fn recall(&self, w: usize, replica: usize) {
        if self.jobs[w].send(ToWorker::Recall(replica)).is_err() {
            self.surface_death();
        }
    }

    /// Asks worker `w` (the lease holder) to send group `g`'s cert shard
    /// home.
    fn recall_cert(&self, w: usize, group: usize) {
        if self.jobs[w].send(ToWorker::RecallCert(group)).is_err() {
            self.surface_death();
        }
    }

    /// Receives one message from any worker, spinning briefly before
    /// parking (workers unpark the registered coordinator on every push).
    fn recv_any(&self) -> FromWorker {
        let mut spins: u32 = 0;
        loop {
            let mut open = false;
            for rx in &self.results {
                if let Some(msg) = rx.try_recv() {
                    return msg;
                }
                open |= !rx.is_closed();
            }
            assert!(open, "worker threads died without reporting a result");
            if spins < sync::SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                // Re-scan after every wake-up: any lane may have filled.
                thread::park();
            }
        }
    }

    /// Non-blocking: one pending message, if any worker has one ready.
    fn try_recv_any(&self) -> Option<FromWorker> {
        self.results.iter().find_map(|rx| rx.try_recv())
    }

    /// A send failed because a worker hung up — the only way that happens
    /// is a panic mid-job, so drain the lanes for the payload and re-raise.
    #[cold]
    fn surface_death(&self) -> ! {
        while let Some(msg) = self.try_recv_any() {
            if let FromWorker::Panic(payload) = msg {
                std::panic::resume_unwind(payload);
            }
        }
        panic!("worker thread died without reporting a result");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.jobs.clear(); // Hang up; workers drain their lanes and exit.
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Runs one cert group's window checks in pop order against the group's
/// conflict shard, recording the outcome of each (the decide half replays
/// on the coordinator).
fn run_cert_job(shard: &mut CertShard, job: &mut CertJob) {
    for item in job.checks.drain(..) {
        let check = shard.check(item.key.at, &item.ws, item.gsnap);
        job.recs.push(Some(CertRec {
            replica: item.replica,
            txn: item.txn,
            ws: item.ws,
            check,
        }));
    }
}

/// Body of each pool worker: drain the job lane, racking leased nodes in
/// `held` (and cert shards in `held_certs`) between jobs, until the
/// coordinator hangs up.
fn worker_main(
    job_rx: sync::Receiver<ToWorker>,
    res_tx: sync::Sender<FromWorker>,
    counters: Arc<WaitCounters>,
    replicas: usize,
    cert_groups: usize,
) {
    let mut agenda = BinaryHeap::new();
    let mut held: Vec<Option<Box<ClusterNode>>> = (0..replicas).map(|_| None).collect();
    let mut held_certs: Vec<Option<Box<CertShard>>> = (0..cert_groups).map(|_| None).collect();
    loop {
        let msg = match job_rx.recv(&counters) {
            Some(msg) => msg,
            None => return, // Coordinator hung up; leased nodes drop with us.
        };
        let t0 = Instant::now();
        let out = match msg {
            ToWorker::Job(mut job) => {
                if job.node.is_none() {
                    // Leased from a previous window in this run.
                    job.node = Some(
                        held[job.replica]
                            .take()
                            .expect("job for a node neither sent nor leased"),
                    );
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_shard(job, &mut agenda)
                })) {
                    Ok(mut res) => {
                        // Keep the node racked here; the coordinator recalls
                        // it when the merge (or a stopper) needs it.
                        held[res.replica] = Some(res.node.take().expect("run_shard returns node"));
                        FromWorker::Shard(res)
                    }
                    Err(payload) => FromWorker::Panic(payload),
                }
            }
            ToWorker::Recall(replica) => match held[replica].take() {
                Some(node) => FromWorker::Node { replica, node },
                None => FromWorker::Panic(Box::new(format!(
                    "recall for replica {replica} but no node is held"
                ))),
            },
            ToWorker::CertJob(mut job) => {
                let mut shard = match job.shard.take() {
                    Some(shard) => shard,
                    // Leased from a previous window in this run.
                    None => held_certs[job.group]
                        .take()
                        .expect("cert job for a shard neither sent nor leased"),
                };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_cert_job(&mut shard, &mut job);
                    job
                })) {
                    Ok(job) => {
                        held_certs[job.group] = Some(shard);
                        FromWorker::CertDone(CertResult {
                            group: job.group,
                            recs: job.recs,
                            checks: job.checks,
                        })
                    }
                    Err(payload) => FromWorker::Panic(payload),
                }
            }
            ToWorker::RecallCert(group) => match held_certs[group].take() {
                Some(shard) => FromWorker::CertHome { group, shard },
                None => FromWorker::Panic(Box::new(format!(
                    "recall for cert group {group} but no shard is held"
                ))),
            },
        };
        counters.add_busy_ns(t0.elapsed().as_nanos() as u64);
        let poisoned = matches!(out, FromWorker::Panic(_));
        if res_tx.send(out).is_err() || poisoned {
            return;
        }
    }
}

/// The windowed multi-threaded driver. See the module docs for the window
/// lifecycle and the exactness argument; [`ParallelDriver::new`] with `0`
/// threads sizes the pool to the host.
pub struct ParallelDriver {
    /// Requested worker count (`available_parallelism` is queried once; it
    /// is a syscall, far too slow for the per-window hot path).
    workers: usize,
    /// Workers the dispatch decision credits: `workers` clamped to the
    /// host's parallelism. Oversubscribed workers cannot overlap, so on a
    /// small host the pooled path would pay handoffs for nothing — windows
    /// run inline instead. [`ParallelDriver::with_min_dispatch`] lifts the
    /// clamp so stress tests exercise the pool anywhere.
    effective: usize,
    /// Smallest window (step events + cert checks) worth a channel
    /// round-trip per shard; smaller windows run inline on the
    /// coordinator. Purely a performance knob — both paths run the
    /// identical algorithm.
    min_dispatch: usize,
    /// Whether `min_dispatch` retunes itself from the measured
    /// handoff-stall histogram ([`DriverKind::Parallel`]; explicit
    /// [`ParallelDriver::with_min_dispatch`] turns it off). Wall-clock
    /// only: the threshold never changes simulation results.
    auto_tune: bool,
    /// Pooled windows observed since the run started (auto-tune sample).
    tune_windows: u64,
    /// Coordinator stall nanoseconds across those windows.
    tune_stall_ns: u64,
    /// Step events dispatched across those windows.
    tune_steps: u64,
    /// Pool busy-ns counter at run start (the pool counter is cumulative).
    tune_busy0: u64,
    pool: Option<WorkerPool>,
    stats: DriverStats,
    /// Print the stats summary at the end of the run
    /// (`TASHKENT_DRIVER_STATS`).
    print_stats: bool,
    /// Where each replica's node (slots `0..replicas`) and each certifier
    /// group's shard (slots `replicas..`) lives right now. Leases persist
    /// across pooled windows; anything that demands one recalls it first.
    lease: Vec<NodeLoc>,
    /// Pooled windows since the last run-ending recall (see module docs).
    run_len: u64,
    // Recycled window-formation scratch: the size-proportional buffers
    // (batch, per-shard item/transcript vectors, replay heap, worker
    // agendas) are pooled across windows; only the few-elements-long
    // `jobs` vector still allocates per window.
    batch: Vec<(SimTime, WinItem)>,
    job_of: Vec<usize>,
    cert_job_of: Vec<usize>,
    defer_barrier: Vec<Option<Key>>,
    agenda: BinaryHeap<Reverse<(Key, u64, usize)>>,
    merge: MergeScratch,
}

/// The auto-tuned dispatch threshold: the measured mean coordinator stall
/// per pooled window, divided by the mean worker-busy nanoseconds per
/// dispatched step, estimates how many step events a window must carry
/// before overlapped execution amortizes the handoff; clamping keeps the
/// threshold inside the productive band even on noisy samples.
fn tuned_min_dispatch(
    stall_ns: u64,
    pooled_windows: u64,
    busy_ns: u64,
    steps: u64,
    fallback: usize,
) -> usize {
    if pooled_windows == 0 || steps == 0 || busy_ns == 0 {
        return fallback;
    }
    let stall_per_window = stall_ns / pooled_windows;
    let busy_per_step = (busy_ns / steps).max(1);
    (stall_per_window / busy_per_step).clamp(2, 64) as usize
}

impl ParallelDriver {
    /// Smallest window dispatched to worker threads by default: below this
    /// the per-shard channel round-trip costs more than the overlapped step
    /// work buys (steps are sub-microsecond; even an SPSC hop is not).
    const MIN_DISPATCH: usize = 8;

    /// Creates the driver with `threads` workers (`0` = host parallelism).
    pub fn new(threads: usize) -> Self {
        let host = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if threads > 0 { threads } else { host };
        ParallelDriver {
            workers,
            effective: workers.min(host),
            min_dispatch: Self::MIN_DISPATCH,
            auto_tune: true,
            tune_windows: 0,
            tune_stall_ns: 0,
            tune_steps: 0,
            tune_busy0: 0,
            pool: None,
            stats: DriverStats::default(),
            print_stats: std::env::var_os("TASHKENT_DRIVER_STATS").is_some(),
            lease: Vec::new(),
            run_len: 0,
            batch: Vec::new(),
            job_of: Vec::new(),
            cert_job_of: Vec::new(),
            defer_barrier: Vec::new(),
            agenda: BinaryHeap::new(),
            merge: MergeScratch::default(),
        }
    }

    /// Overrides the smallest step count dispatched to worker threads
    /// (stress/testing; `0` forces every multi-shard window through the
    /// pool). Also lifts the host-parallelism clamp, so the pooled path is
    /// exercised even on single-core machines, and disables the
    /// handoff-stall auto-tuner — an explicit threshold always wins.
    pub fn with_min_dispatch(mut self, min_dispatch: usize) -> Self {
        self.min_dispatch = min_dispatch;
        self.effective = self.workers;
        self.auto_tune = false;
        self
    }

    /// Drains one pool message during a between-window recall, returning
    /// whether it was a homecoming (node or cert shard). Transcripts that
    /// arrive in the meantime are recycled — between windows every merge
    /// has completed, so any stray transcript was orphaned by an `End`.
    fn drain_recall_msg(
        msg: FromWorker,
        state: &mut ClusterState,
        lease: &mut [NodeLoc],
        merge: &mut MergeScratch,
    ) -> bool {
        match msg {
            FromWorker::Node { replica, node } => {
                state.put_node(replica, node);
                lease[replica] = NodeLoc::Home;
                true
            }
            FromWorker::CertHome { group, shard } => {
                state.put_cert_shard(group, shard);
                lease[state.config.replicas + group] = NodeLoc::Home;
                true
            }
            FromWorker::Shard(res) => {
                merge.recycle(res);
                false
            }
            FromWorker::CertDone(res) => {
                merge.recycle_cert(res);
                false
            }
            FromWorker::Panic(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Pulls one replica's node home if it is leased to a worker. Used for
    /// between-window events that demand a single node — the run (and every
    /// other lease) stays alive.
    fn recall_node(&mut self, state: &mut ClusterState, replica: usize) {
        let NodeLoc::AtWorker(w) = self.lease[replica] else {
            return;
        };
        let ParallelDriver {
            pool,
            lease,
            merge,
            stats,
            ..
        } = self;
        let pool = pool.as_ref().expect("lease without a pool");
        pool.recall(w, replica);
        stats.recalls += 1;
        while lease[replica] != NodeLoc::Home {
            let msg = pool.recv_any();
            Self::drain_recall_msg(msg, state, lease, merge);
        }
    }

    /// Pulls the touched cert groups' shards home if leased. Used for
    /// between-window certification events under sharding — the run (and
    /// every other lease) stays alive.
    fn recall_cert_groups(&mut self, state: &mut ClusterState, mask: u64) {
        let replicas = state.config.replicas;
        let ParallelDriver {
            pool,
            lease,
            merge,
            stats,
            ..
        } = self;
        let mut m = mask;
        while m != 0 {
            let g = m.trailing_zeros() as usize;
            m &= m - 1;
            let slot = replicas + g;
            let Some(NodeLoc::AtWorker(w)) = lease.get(slot).copied() else {
                continue;
            };
            let pool = pool.as_ref().expect("lease without a pool");
            pool.recall_cert(w, g);
            stats.recalls += 1;
            while lease[slot] != NodeLoc::Home {
                let msg = pool.recv_any();
                Self::drain_recall_msg(msg, state, lease, merge);
            }
        }
    }

    /// Pulls every leased node and cert shard home and ends the current
    /// lease run. Called for events that demand all nodes (true barriers)
    /// and at end of run.
    fn recall_all(&mut self, state: &mut ClusterState) {
        self.run_len = 0;
        let replicas = state.config.replicas;
        let ParallelDriver {
            pool,
            lease,
            merge,
            stats,
            ..
        } = self;
        let Some(pool) = pool.as_ref() else {
            return;
        };
        let mut outstanding = 0u64;
        for (slot, loc) in lease.iter().enumerate() {
            if let NodeLoc::AtWorker(w) = *loc {
                if slot < replicas {
                    pool.recall(w, slot);
                } else {
                    pool.recall_cert(w, slot - replicas);
                }
                stats.recalls += 1;
                outstanding += 1;
            }
        }
        while outstanding > 0 {
            let msg = pool.recv_any();
            if Self::drain_recall_msg(msg, state, lease, merge) {
                outstanding -= 1;
            }
        }
    }

    /// Executes one lookahead window starting from the already-popped
    /// window-starter (`StepTxn`, or `CertifySend` under sharded
    /// certification) at `t0`.
    fn run_window(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
        t0: SimTime,
        first: Ev,
    ) {
        let lan_hop_us = state.lan_hop_us();
        let horizon = t0 + 4 * lan_hop_us;
        // A window-compatible event: inside the horizon and not
        // cross-cutting. Steps shard out; other non-global stoppers defer.
        let windowable =
            |t: SimTime, ev: &Ev| t <= horizon && !matches!(ev.footprint(), Footprint::Global);
        // Lone starters dominate sparse phases; peek before paying for
        // window formation on the hottest event types.
        if !matches!(queue.peek(), Some((t, ev)) if windowable(t, ev)) {
            self.stats.observe_single();
            // A lone starter touches only its own node (or cert groups);
            // pull just those home — the other leases (and the run)
            // survive.
            match first.footprint().demand() {
                NodeDemand::NoNode => {}
                NodeDemand::Node(r) => self.recall_node(state, r),
                NodeDemand::CertGroups(mask) => self.recall_cert_groups(state, mask),
                NodeDemand::AllNodes => self.recall_all(state),
            }
            state.handle(t0, first, queue);
            return;
        }
        let replicas = state.config.replicas;
        self.batch.clear();
        self.defer_barrier.clear();
        self.defer_barrier.resize(replicas, None);
        // Barrier every shard observes (deferred dispatch events: the
        // submitted transaction's first step may land on any replica two
        // hops out).
        let mut all_barrier: Option<Key> = None;
        let mut n_steps: u64 = 0;
        // Sharded certification: groups touched by sends destined for
        // inline handling (cross-group, late, unavailable) — later sends
        // into them must stay inline too — plus the candidate checks and
        // groups for worker dispatch.
        let mut cert_inline_mask: u64 = 0;
        let mut n_cert_inline: u64 = 0;
        let mut cand_mask: u64 = 0;
        let mut n_checks: u64 = 0;
        // The starter runs through the same classification as every popped
        // event — it is simply the window's rank-0 item.
        let mut next = Some((t0, first));
        while let Some((t, ev)) = next.take().or_else(|| queue.pop_if(windowable)) {
            let rank = self.batch.len() as u64;
            match ev {
                Ev::StepTxn { replica, txn } => {
                    n_steps += 1;
                    self.batch.push((t, WinItem::Step { replica, txn }));
                }
                Ev::CertifySend {
                    replica: origin,
                    txn,
                    ws,
                    groups,
                } if groups.count_ones() == 1
                    && t <= t0 + lan_hop_us
                    && groups & cert_inline_mask == 0
                    && !state.origin_partitioned(origin)
                    && state
                        .cert_link()
                        .group_of(groups.trailing_zeros() as usize)
                        .is_available() =>
                {
                    // Worker-checkable (see the module docs, "Sharded
                    // certification in the window"): the group's shard runs
                    // the conflict check on its pool worker; the decision
                    // replays inline at this exact rank. The certifier's
                    // answer still reaches the origin no earlier than one
                    // hop out, so the origin's barrier is the same as for a
                    // deferred send.
                    let key = Key {
                        at: t + lan_hop_us,
                        rank,
                    };
                    let slot = &mut self.defer_barrier[origin];
                    *slot = Some(slot.map_or(key, |b| b.min(key)));
                    cand_mask |= groups;
                    n_checks += 1;
                    self.batch.push((
                        t,
                        WinItem::CertSend {
                            replica: origin,
                            txn,
                            ws,
                            groups,
                        },
                    ));
                }
                ev => {
                    if let Ev::CertifySend { groups, .. } = &ev {
                        cert_inline_mask |= *groups;
                        n_cert_inline += 1;
                    }
                    // A deferred stopper: the merge will handle it inline at
                    // this exact pop rank; bar the shard(s) it can reach
                    // from the first key its handling can touch them at.
                    match ev.footprint() {
                        Footprint::Replica(r) => {
                            let key = Key { at: t, rank };
                            let slot = &mut self.defer_barrier[r];
                            *slot = Some(slot.map_or(key, |b| b.min(key)));
                        }
                        Footprint::Certifier { groups: _, origin } => {
                            let key = Key {
                                at: t + lan_hop_us,
                                rank,
                            };
                            let slot = &mut self.defer_barrier[origin];
                            *slot = Some(slot.map_or(key, |b| b.min(key)));
                        }
                        Footprint::Dispatch => {
                            let key = Key {
                                at: t + 2 * lan_hop_us,
                                rank,
                            };
                            all_barrier = Some(all_barrier.map_or(key, |b| b.min(key)));
                        }
                        Footprint::Global => unreachable!("windowable excludes global events"),
                    }
                    self.batch.push((t, WinItem::Deferred(ev)));
                }
            }
        }
        let stop_ts = queue.peek_time().unwrap_or(SimTime::from_micros(u64::MAX));
        let child_rank_base = self.batch.len() as u64;

        // Shard the steps by replica, preserving pop order within each.
        let mut jobs: Vec<Job> = Vec::new();
        self.job_of.clear();
        self.job_of.resize(replicas, usize::MAX);
        for (rank, (at, item)) in self.batch.iter().enumerate() {
            let WinItem::Step { replica, txn } = item else {
                continue;
            };
            let key = Key {
                at: *at,
                rank: rank as u64,
            };
            if self.job_of[*replica] == usize::MAX {
                self.job_of[*replica] = jobs.len();
                jobs.push(Job {
                    replica: *replica,
                    // Resolved at dispatch: taken from state, or already
                    // racked at the leased worker.
                    node: None,
                    items: self.merge.items_pool.pop().unwrap_or_default(),
                    horizon,
                    stop_ts,
                    defer_barrier: match (self.defer_barrier[*replica], all_barrier) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    },
                    child_rank_base,
                    lan_hop_us,
                    steps: self.merge.steps_pool.pop().unwrap_or_default(),
                    unprocessed: self.merge.unproc_pool.pop().unwrap_or_default(),
                });
            }
            jobs[self.job_of[*replica]].items.push((key, *txn));
        }

        // Certification checks count toward the dispatch economics like
        // steps: a window with one replica job and one cert job still
        // overlaps (checks run while the merge replays steps).
        let n_cert_jobs = cand_mask.count_ones() as usize;
        let pooled = jobs.len() + n_cert_jobs >= 2
            && self.effective >= 2
            && (n_steps + n_checks) as usize >= self.min_dispatch;
        self.stats.observe_window(
            n_steps,
            child_rank_base - n_steps,
            jobs.len() as u64,
            pooled,
        );
        let mut cert_jobs: Vec<CertJob> = Vec::new();
        if pooled {
            // Resolve each eligible send into its group's cert job, in pop
            // order; the batch slot becomes the check's replay marker.
            self.stats.certifier_sharded += n_checks;
            self.stats.certifier_inline += n_cert_inline;
            if n_cert_jobs > 0 {
                self.cert_job_of.clear();
                self.cert_job_of
                    .resize(state.cert_group_count(), usize::MAX);
                cert_jobs.reserve(n_cert_jobs);
                for (rank, (at, item)) in self.batch.iter_mut().enumerate() {
                    if !matches!(item, WinItem::CertSend { .. }) {
                        continue;
                    }
                    let WinItem::CertSend {
                        replica,
                        txn,
                        ws,
                        groups,
                    } = std::mem::replace(item, WinItem::CertCheck { group: 0 })
                    else {
                        unreachable!()
                    };
                    let g = groups.trailing_zeros() as usize;
                    *item = WinItem::CertCheck { group: g };
                    if self.cert_job_of[g] == usize::MAX {
                        self.cert_job_of[g] = cert_jobs.len();
                        cert_jobs.push(CertJob {
                            group: g,
                            shard: None, // Resolved at dispatch.
                            checks: self.merge.checks_pool.pop().unwrap_or_default(),
                            recs: self.merge.recs_pool.pop().unwrap_or_default(),
                        });
                    }
                    let gsnap = state.cert_gsnap(g, ws.snapshot.version);
                    cert_jobs[self.cert_job_of[g]].checks.push(CertCheckItem {
                        key: Key {
                            at: *at,
                            rank: rank as u64,
                        },
                        replica,
                        txn,
                        ws,
                        gsnap,
                    });
                }
            }
        } else {
            // Inline windows never form cert jobs: demote every eligible
            // send back to a deferred stopper.
            self.stats.certifier_inline += n_cert_inline + n_checks;
            for (_, item) in self.batch.iter_mut() {
                if !matches!(item, WinItem::CertSend { .. }) {
                    continue;
                }
                let WinItem::CertSend {
                    replica,
                    txn,
                    ws,
                    groups,
                } = std::mem::replace(item, WinItem::CertCheck { group: 0 })
                else {
                    unreachable!()
                };
                *item = WinItem::Deferred(Ev::CertifySend {
                    replica,
                    txn,
                    ws,
                    groups,
                });
            }
        }
        if pooled {
            if self.run_len == 0 {
                self.stats.runs += 1;
            }
            self.run_len += 1;
            self.stats.max_run_windows = self.stats.max_run_windows.max(self.run_len);
            let workers = self.workers;
            let replicas = state.config.replicas;
            let cert_groups = state.cert_group_count();
            let ParallelDriver {
                pool,
                lease,
                merge,
                stats,
                batch,
                min_dispatch,
                auto_tune,
                tune_windows,
                tune_stall_ns,
                tune_steps,
                tune_busy0,
                ..
            } = self;
            let pool = pool.get_or_insert_with(|| WorkerPool::new(workers, replicas, cert_groups));
            let pending = jobs.len() + cert_jobs.len();
            for mut job in jobs {
                match lease[job.replica] {
                    NodeLoc::Home => {
                        job.node = Some(state.take_node(job.replica));
                        lease[job.replica] = NodeLoc::AtWorker(pool.worker_of(job.replica));
                    }
                    NodeLoc::AtWorker(_) => {
                        // The worker still racks it from the previous
                        // window of this run; the job travels light.
                        stats.leases_retained += 1;
                    }
                }
                pool.send_job(job);
            }
            for mut cj in cert_jobs {
                match lease[replicas + cj.group] {
                    NodeLoc::Home => {
                        cj.shard = Some(state.take_cert_shard(cj.group));
                        lease[replicas + cj.group] =
                            NodeLoc::AtWorker(pool.worker_of_cert(cj.group));
                    }
                    NodeLoc::AtWorker(_) => {
                        stats.leases_retained += 1;
                    }
                }
                pool.send_cert_job(cj);
            }
            let mut feed = ShardFeed::new(Some(&*pool), lease, replicas, pending);
            merge_window(batch, Vec::new(), &mut feed, state, queue, merge);
            stats.observe_handoff(feed.stall_ns);
            stats.recalls += feed.recalls;
            if feed.overlapped {
                stats.pipelined += 1;
            }
            if *auto_tune {
                // Satellite: retune the dispatch threshold from the
                // measured handoff stalls — seeded after the first few
                // pooled windows, refreshed periodically. Wall-clock only;
                // simulation results never depend on the threshold.
                *tune_windows += 1;
                *tune_stall_ns += feed.stall_ns;
                *tune_steps += n_steps;
                if *tune_windows == 8 || *tune_windows % 32 == 0 {
                    let (_, _, _, busy) = pool.counters.snapshot();
                    *min_dispatch = tuned_min_dispatch(
                        *tune_stall_ns,
                        *tune_windows,
                        busy.saturating_sub(*tune_busy0),
                        *tune_steps,
                        Self::MIN_DISPATCH,
                    );
                }
            }
        } else {
            let mut ready = Vec::with_capacity(jobs.len());
            for mut job in jobs {
                // Inline execution touches the node on this thread: any
                // lease from an earlier pooled window must come home first.
                self.recall_node(state, job.replica);
                job.node = Some(state.take_node(job.replica));
                ready.push(run_shard(job, &mut self.agenda));
            }
            let replicas = state.config.replicas;
            let ParallelDriver {
                pool,
                lease,
                merge,
                stats,
                batch,
                ..
            } = self;
            let mut feed = ShardFeed::new(pool.as_ref(), lease, replicas, 0);
            merge_window(batch, ready, &mut feed, state, queue, merge);
            stats.recalls += feed.recalls;
        }
    }
}

impl Driver for ParallelDriver {
    fn run_to_end(
        &mut self,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) -> Result<(), RunError> {
        // Per-run accounting: a reused driver must not blend runs. The
        // pool's wait counters are cumulative for its lifetime, so worker
        // numbers are reported as deltas from this snapshot.
        self.stats = DriverStats::default();
        self.lease.clear();
        self.lease.resize(
            state.config.replicas + state.cert_group_count(),
            NodeLoc::Home,
        );
        self.run_len = 0;
        let counters0 = self
            .pool
            .as_ref()
            .map(|p| p.counters.snapshot())
            .unwrap_or_default();
        self.tune_windows = 0;
        self.tune_stall_ns = 0;
        self.tune_steps = 0;
        self.tune_busy0 = counters0.3;
        let result = loop {
            if state.ended() {
                break Ok(());
            }
            let Some((now, ev)) = queue.pop() else {
                break Err(RunError::QueueDrained { at: queue.now() });
            };
            match ev {
                Ev::StepTxn { .. } => self.run_window(state, queue, now, ev),
                // Under sharded certification, a certify send is a window
                // starter too: bursts of near-simultaneous sends form
                // cert-heavy windows whose per-group checks run on the pool.
                Ev::CertifySend { .. } if state.cert_group_count() > 0 => {
                    self.run_window(state, queue, now, ev)
                }
                ev => {
                    // A between-window stopper: pull home exactly the nodes
                    // its handler can touch. An all-nodes demand is a true
                    // barrier — it ends the current lease run.
                    match ev.footprint().demand() {
                        NodeDemand::NoNode => {}
                        NodeDemand::Node(r) => self.recall_node(state, r),
                        NodeDemand::CertGroups(mask) => self.recall_cert_groups(state, mask),
                        NodeDemand::AllNodes => self.recall_all(state),
                    }
                    state.handle(now, ev, queue);
                }
            }
        };
        // Leave every node home: callers inspect state after the run.
        self.recall_all(state);
        if let Some(pool) = self.pool.as_ref() {
            let (spins, parks, parked_ns, busy_ns) = pool.counters.snapshot();
            self.stats.worker_spins = spins - counters0.0;
            self.stats.worker_parks = parks - counters0.1;
            self.stats.worker_parked_ns = parked_ns - counters0.2;
            self.stats.worker_busy_ns = busy_ns - counters0.3;
        }
        state.driver_stats = Some(self.stats);
        if self.print_stats {
            eprintln!("{}", self.stats.summary());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, PolicySpec};
    use tashkent_workloads::tpcw::{self, TpcwScale};

    /// Drives a tiny cluster to completion under `driver`, returning the
    /// result fingerprint and the driver's window stats (`None` for the
    /// sequential reference).
    fn drive(mut driver: Box<dyn Driver>) -> ((u64, u64, u64, u64), Option<DriverStats>) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 3,
            clients: 9,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        };
        let mut state = ClusterState::new(config, workload, vec![mix]);
        let mut queue = EventQueue::new();
        state.prime(&mut queue);
        queue.schedule(SimTime::from_secs(2), Ev::EndWarmup);
        queue.schedule(SimTime::from_secs(12), Ev::End);
        driver
            .run_to_end(&mut state, &mut queue)
            .expect("End event scheduled");
        let (read, write) = state.disk_bytes();
        let r = state.metrics.finish(queue.now(), read, write, Vec::new());
        ((r.committed, r.aborts, read, write), state.driver_stats)
    }

    fn fingerprint(driver: Box<dyn Driver>) -> (u64, u64, u64, u64) {
        drive(driver).0
    }

    #[test]
    fn forced_pooled_windows_match_sequential() {
        // `min_dispatch = 0` forces every multi-shard window through the
        // mpsc worker pool, even the tiny ones the production threshold
        // keeps inline — the channel path must be just as exact.
        let pooled = ParallelDriver::new(2).with_min_dispatch(0);
        assert_eq!(
            fingerprint(Box::new(SequentialDriver)),
            fingerprint(Box::new(pooled)),
        );
    }

    #[test]
    fn deferral_produces_larger_windows_than_step_only_stops() {
        // With deferral, certifier round-trips and completions no longer
        // terminate windows: the same run must both match the sequential
        // fingerprint and actually defer stoppers.
        let (seq, _) = drive(Box::new(SequentialDriver));
        let (par, stats) = drive(Box::new(ParallelDriver::new(2)));
        let stats = stats.expect("parallel driver records stats");
        assert!(stats.deferred > 0, "run must defer stoppers: {stats:?}");
        assert!(stats.windows > 0);
        assert_eq!(seq, par);
    }

    /// A 3-replica state + queue pair for merge-order tests.
    fn tiny_state_with(policy: PolicySpec) -> (ClusterState, EventQueue<Ev>) {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 3,
            clients: 3,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        (
            ClusterState::new(config, workload, vec![mix]),
            EventQueue::new(),
        )
    }

    fn tiny_state() -> (ClusterState, EventQueue<Ev>) {
        tiny_state_with(PolicySpec::LeastConnections)
    }

    /// Marker for `LbTick` in drained-queue assertions.
    const TICK: u64 = u64::MAX;
    /// Marker for `TxnRetry` in drained-queue assertions.
    const RETRY: u64 = u64::MAX - 1;

    /// Drains the queue into `(time, txn-or-marker)` pairs: `TxnComplete`
    /// and `StepTxn` map to their transaction id, `LbTick` to [`TICK`],
    /// `TxnRetry` to [`RETRY`].
    fn drain(queue: &mut EventQueue<Ev>) -> Vec<(SimTime, u64)> {
        std::iter::from_fn(|| queue.pop())
            .map(|(at, ev)| match ev {
                Ev::TxnComplete { txn, .. } | Ev::StepTxn { txn, .. } => (at, txn.0),
                Ev::LbTick => (at, TICK),
                Ev::TxnRetry { .. } => (at, RETRY),
                other => panic!("unexpected event in merge test: {other:?}"),
            })
            .collect()
    }

    fn emit_complete(replica: usize, txn: u64, at: SimTime) -> StepRec {
        StepRec {
            child_at: at,
            trace: Vec::new(),
            child: ChildOut::Emit(Ev::TxnComplete {
                replica,
                txn: TxnId(txn),
                committed: true,
            }),
        }
    }

    fn step_item(at: SimTime, replica: usize, txn: u64) -> (SimTime, WinItem) {
        (
            at,
            WinItem::Step {
                replica,
                txn: TxnId(txn),
            },
        )
    }

    fn shard_result(
        state: &mut ClusterState,
        replica: usize,
        steps: Vec<StepRec>,
        unprocessed_batch: Vec<(u64, TxnId)>,
    ) -> ShardResult {
        ShardResult {
            replica,
            node: Some(state.take_node(replica)),
            items: Vec::new(),
            steps,
            unprocessed_batch,
        }
    }

    fn run_merge(
        batch: Vec<(SimTime, WinItem)>,
        results: Vec<ShardResult>,
        state: &mut ClusterState,
        queue: &mut EventQueue<Ev>,
    ) {
        let mut batch = batch;
        let mut lease = vec![NodeLoc::Home; state.config.replicas];
        let mut feed = ShardFeed::new(None, &mut lease, state.config.replicas, 0);
        merge_window(
            &mut batch,
            results,
            &mut feed,
            state,
            queue,
            &mut MergeScratch::default(),
        );
    }

    /// Regression for the `merge_window` same-microsecond tie corner: two
    /// shards emitting at an *identical* timestamp must replay in batch pop
    /// order, and both must stay junior to an event that was already queued
    /// at that instant (the true stopper) — exactly the sequential
    /// insertion order.
    #[test]
    fn same_instant_cross_shard_emissions_replay_in_pop_order() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(100);
        // Sequential schedule order: step(0), step(1), then the stopper.
        for (replica, txn) in [(0usize, 7000u64), (1, 7001)] {
            queue.schedule(
                t,
                Ev::StepTxn {
                    replica,
                    txn: TxnId(txn),
                },
            );
        }
        queue.schedule(t, Ev::LbTick);
        // The window pops both steps (they are senior to the stopper).
        let batch = vec![step_item(t, 0, 7000), step_item(t, 1, 7001)];
        queue
            .pop_if(|_, ev| matches!(ev, Ev::StepTxn { .. }))
            .unwrap();
        queue
            .pop_if(|_, ev| matches!(ev, Ev::StepTxn { .. }))
            .unwrap();
        let results = vec![
            shard_result(&mut state, 0, vec![emit_complete(0, 7000, t)], Vec::new()),
            shard_result(&mut state, 1, vec![emit_complete(1, 7001, t)], Vec::new()),
        ];
        run_merge(batch, results, &mut state, &mut queue);
        // Sequentially: the stopper's seq predates both emissions.
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 7000), (t, 7001)]);
    }

    /// Same-instant emissions from shards whose batch events *interleave*
    /// (replica 0, replica 1, replica 0 again at one timestamp) must merge
    /// in global batch-rank order, not per-shard order. The stopper bounds
    /// the window at the same instant, so the emissions take the queue
    /// path; being junior, they pop after it.
    #[test]
    fn same_instant_interleaved_shards_keep_global_rank_order() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(250);
        queue.schedule(t, Ev::LbTick); // The stopper, bounding the window.
        let batch = vec![
            step_item(t, 0, 10),
            step_item(t, 1, 11),
            step_item(t, 0, 12),
        ];
        let results = vec![
            shard_result(
                &mut state,
                0,
                vec![emit_complete(0, 10, t), emit_complete(0, 12, t)],
                Vec::new(),
            ),
            shard_result(&mut state, 1, vec![emit_complete(1, 11, t)], Vec::new()),
        ];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(
            drain(&mut queue),
            vec![(t, u64::MAX), (t, 10), (t, 11), (t, 12)]
        );
    }

    /// Batch events a shard's barriers skipped execute *inline* during the
    /// replay, at their exact sequential slot — senior to the stopper even
    /// at a same-microsecond tie. Here the skipped transactions no longer
    /// exist (the crash-dropped shape), so their inline execution is a
    /// stale no-op and only the stopper remains queued; with live
    /// transactions the inline path is exercised end-to-end by the
    /// cross-driver equivalence suite.
    #[test]
    fn skipped_batch_events_execute_inline_during_the_replay() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(400);
        queue.schedule(t, Ev::LbTick); // The stopper, queued behind the batch.
        let batch = vec![step_item(t, 0, 1), step_item(t, 0, 2)];
        let results = vec![shard_result(
            &mut state,
            0,
            Vec::new(),
            vec![(0, TxnId(1)), (1, TxnId(2))],
        )];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX)]);
    }

    /// An emission strictly senior to the stopper is handled inline during
    /// the replay (so its follow-ups get their sequence numbers at its pop
    /// position — the closed tie corner), never merged into the queue.
    /// Here the completion refers to a transaction the state does not know
    /// (the orphaned shape), so the inline handling is a no-op and only the
    /// stopper remains.
    #[test]
    fn pre_stopper_emissions_are_handled_inline_not_queued() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(100);
        let stop = SimTime::from_micros(500);
        queue.schedule(stop, Ev::LbTick); // Stopper well past the emission.
        let batch = vec![step_item(t, 0, 7)];
        let results = vec![shard_result(
            &mut state,
            0,
            vec![emit_complete(0, 7, t)],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(stop, u64::MAX)]);
    }

    /// Stale steps (crash-dropped transactions) consume their transcript
    /// record without emitting anything; later emissions still land in
    /// order behind the same-instant stopper.
    #[test]
    fn stale_steps_merge_to_nothing() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(50);
        queue.schedule(t, Ev::LbTick); // The stopper, bounding the window.
        let batch = vec![step_item(t, 0, 3), step_item(t, 0, 4)];
        let results = vec![shard_result(
            &mut state,
            0,
            vec![
                StepRec {
                    child_at: t,
                    child: ChildOut::Stale,
                    trace: Vec::new(),
                },
                emit_complete(0, 4, t),
            ],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 4)]);
    }

    /// A deferred stopper executes inline at its exact pop rank: senior to
    /// everything the replay schedules, junior to batch events popped
    /// before it — even when every key shares one microsecond.
    #[test]
    fn deferred_stoppers_replay_at_their_pop_rank() {
        let (mut state, mut queue) = tiny_state();
        let t = SimTime::from_micros(90);
        queue.schedule(t, Ev::LbTick); // The true stopper.
                                       // Pop order: step(0), deferred completion for an unknown txn (a
                                       // no-op on handle), step(0) again. The deferred entry must slot
                                       // between the two steps' emissions.
        let batch = vec![
            step_item(t, 0, 20),
            (
                t,
                WinItem::Deferred(Ev::TxnComplete {
                    replica: 2,
                    txn: TxnId(9999),
                    committed: true,
                }),
            ),
            step_item(t, 0, 21),
        ];
        let results = vec![shard_result(
            &mut state,
            0,
            vec![emit_complete(0, 20, t), emit_complete(0, 21, t)],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        // The deferred no-op leaves no trace; the emissions stay in pop
        // order behind the same-instant stopper.
        assert_eq!(drain(&mut queue), vec![(t, u64::MAX), (t, 20), (t, 21)]);
    }

    /// The regression the deferral design hinges on: a deferred
    /// `CertifyReturn` whose inline handling schedules same-microsecond
    /// work that must interleave exactly with *another* shard's replay at
    /// that very microsecond. The aborted return schedules a completion at
    /// its own instant; sequentially that completion pops *between* shard
    /// 1's two same-instant emissions (its sequence number falls between
    /// their insertion points), so the merge must handle it mid-replay —
    /// freeing replica 0's slot and sending the retry back to the client
    /// two hops out — not before or after the shard's entries.
    #[test]
    fn deferred_certify_return_interleaves_same_instant_work_across_shards() {
        let (mut state, mut queue) = tiny_state_with(PolicySpec::RoundRobin);
        // A real in-flight transaction on replica 0 (round-robin starts
        // there), so the certifier's abort response finds its metadata.
        state.handle(SimTime::ZERO, Ev::ClientArrive { client: 0 }, &mut queue);
        let (at, ev) = queue.pop().expect("arrival schedules the first step");
        assert!(matches!(ev, Ev::StepTxn { replica: 0, .. }), "{ev:?}");
        assert_eq!(at, SimTime::from_micros(300), "two LAN hops out");
        let t = SimTime::from_micros(400);
        queue.schedule(t + 1, Ev::LbTick); // True stopper, one µs later.
                                           // Window pop order: step on shard 1, the deferred abort return for
                                           // replica 0's transaction, another step on shard 1.
        let batch = vec![
            step_item(t, 1, 77),
            (
                t,
                WinItem::Deferred(Ev::CertifyReturn {
                    replica: 0,
                    txn: TxnId(0),
                    version: None,
                }),
            ),
            step_item(t, 1, 78),
        ];
        // Shard 1's transcript: both steps emit same-instant completions
        // for transactions the state does not know (inline no-ops standing
        // in for real window work at time `t`).
        let results = vec![shard_result(
            &mut state,
            1,
            vec![emit_complete(1, 77, t), emit_complete(1, 78, t)],
            Vec::new(),
        )];
        run_merge(batch, results, &mut state, &mut queue);
        // Sequential order inside the merge: step 77 (emission 77 stamped),
        // the deferred return (schedules TxnComplete{replica 0} at `t`),
        // step 78 (emission 78 stamped later), emission 77 (stamped before
        // the return's follow-up — handled first), the interleaved
        // TxnComplete{0} — which frees replica 0's slot and schedules the
        // client's retry two hops out — then emission 78. Left behind: the
        // stopper and the retry.
        assert_eq!(drain(&mut queue), vec![(t + 1, TICK), (t + 300, RETRY)],);
    }

    /// A job's deferred barrier stops the shard exactly at the barrier key:
    /// senior batch steps run, junior ones return as unprocessed for the
    /// merge to execute inline.
    #[test]
    fn defer_barrier_splits_a_shard_at_the_key() {
        let (mut state, _queue) = tiny_state();
        let t = SimTime::from_micros(100);
        let job = Job {
            replica: 0,
            node: Some(state.take_node(0)),
            // Two same-instant steps for transactions the node does not
            // run (stale): ranks 0 and 2 straddle the barrier at rank 1.
            items: vec![
                (Key { at: t, rank: 0 }, TxnId(50)),
                (Key { at: t, rank: 2 }, TxnId(51)),
            ],
            horizon: t + 300,
            stop_ts: t + 1000,
            defer_barrier: Some(Key { at: t, rank: 1 }),
            child_rank_base: 3,
            lan_hop_us: 150,
            steps: Vec::new(),
            unprocessed: Vec::new(),
        };
        let mut agenda = BinaryHeap::new();
        let result = run_shard(job, &mut agenda);
        assert_eq!(result.steps.len(), 1, "only the senior step ran");
        assert!(matches!(result.steps[0].child, ChildOut::Stale));
        assert_eq!(result.unprocessed_batch, vec![(2, TxnId(51))]);
        state.put_node(0, result.node.expect("inline results carry the node"));
    }

    #[test]
    fn keys_order_like_the_sequential_pop() {
        let t = SimTime::from_micros;
        let a = Key { at: t(5), rank: 3 };
        let b = Key { at: t(5), rank: 7 };
        let c = Key { at: t(6), rank: 0 };
        assert!(a < b, "same instant: earlier insertion pops first");
        assert!(b < c, "time dominates rank");
    }

    #[test]
    fn stats_histogram_buckets_by_log2() {
        let mut stats = DriverStats::default();
        stats.observe_single();
        stats.observe_window(2, 1, 1, false); // size 3 -> bucket 1
        stats.observe_window(6, 2, 2, true); // size 8 -> bucket 3
        assert_eq!(stats.size_hist[0], 1);
        assert_eq!(stats.size_hist[1], 1);
        assert_eq!(stats.size_hist[3], 1);
        assert_eq!(stats.items, 11);
        assert_eq!(stats.deferred, 3);
        assert!((stats.mean_window_items() - 5.5).abs() < 1e-9);
        assert!((stats.mean_window_incl_singles() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn driver_kind_builds_all_drivers() {
        let _ = DriverKind::Sequential.build();
        let _ = DriverKind::parallel().build();
        let _ = DriverKind::ParallelTuned {
            threads: 2,
            min_dispatch: 0,
        }
        .build();
        assert_eq!(DriverKind::default(), DriverKind::Sequential);
    }

    #[test]
    fn queue_drained_is_an_error_value() {
        let err = RunError::QueueDrained {
            at: SimTime::from_secs(2),
        };
        assert!(err.to_string().contains("2.000"));
    }

    /// A job whose generated-rank item survives to the drain loop with no
    /// generator record indexes out of bounds inside the worker; the pool
    /// must forward the payload instead of deadlocking the coordinator.
    #[test]
    fn worker_panics_propagate_from_the_persistent_pool() {
        let (mut state, _queue) = tiny_state();
        let t = SimTime::from_micros(100);
        let pool = WorkerPool::new(2, state.config.replicas, 0);
        pool.send_job(Job {
            replica: 0,
            node: Some(state.take_node(0)),
            // Rank 5 with `child_rank_base: 0` claims a generated child
            // whose generator record does not exist; `stop_ts: ZERO` keeps
            // it unrunnable, so the drain loop hits `steps[usize::MAX]`.
            items: vec![(Key { at: t, rank: 5 }, TxnId(1))],
            horizon: t + 300,
            stop_ts: SimTime::ZERO,
            defer_barrier: None,
            child_rank_base: 0,
            lan_hop_us: 150,
            steps: Vec::new(),
            unprocessed: Vec::new(),
        });
        let msg = pool.recv_any();
        let FromWorker::Panic(payload) = msg else {
            panic!("expected the worker's panic to come back, got a result");
        };
        let rethrown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::panic::resume_unwind(payload)
        }));
        assert!(
            rethrown.is_err(),
            "payload must re-raise on the coordinator"
        );
    }

    /// Pooled windows must chain into lease runs (nodes staying racked at
    /// their workers across windows) and still hand every node home by the
    /// end of the run.
    #[test]
    fn pooled_windows_form_lease_runs_and_recall_on_demand() {
        let (_, stats) = drive(Box::new(ParallelDriver::new(2).with_min_dispatch(0)));
        let stats = stats.expect("parallel driver records stats");
        assert!(
            stats.pooled > 0,
            "min_dispatch 0 must pool windows: {stats:?}"
        );
        assert!(stats.runs > 0, "pooled windows must open lease runs");
        assert!(
            stats.max_run_windows >= 1 && stats.max_run_windows <= stats.pooled,
            "run length is bounded by the pooled-window count: {stats:?}"
        );
        assert!(
            stats.recalls > 0,
            "stoppers between windows must recall leased nodes: {stats:?}"
        );
    }

    /// The satellite fix for the old spin-recv pathology: an idle pool
    /// costs ~0 CPU. Park the workers for a while with nothing to do and
    /// check the accounting says "parked", not "spinning".
    #[test]
    fn idle_workers_park_instead_of_spinning() {
        let pool = WorkerPool::new(2, 1, 0);
        let counters = Arc::clone(&pool.counters);
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(pool); // Unparks and joins; parked time is banked on wake-up.
        let (spins, parks, parked_ns, busy_ns) = counters.snapshot();
        assert!(parks >= 2, "both idle workers must park: {parks} parks");
        assert!(
            counters.idle_fraction() > 0.5,
            "idle time must be parked, not busy: parked {parked_ns}ns busy {busy_ns}ns"
        );
        assert!(
            spins <= (parks + 4) * u64::from(sync::SPIN_LIMIT),
            "spinning must stay bounded per wait episode: {spins} spins, {parks} parks"
        );
    }

    #[test]
    fn stats_summary_reports_the_pipeline_counters() {
        let mut stats = DriverStats::default();
        stats.observe_window(6, 2, 2, true);
        stats.runs = 3;
        stats.max_run_windows = 4;
        stats.leases_retained = 5;
        stats.recalls = 6;
        stats.pipelined = 1;
        stats.worker_busy_ns = 1_000_000;
        stats.worker_parked_ns = 3_000_000;
        stats.worker_parks = 7;
        stats.worker_spins = 640;
        let s = stats.summary();
        for needle in [
            "1 pipelined",
            "3 runs",
            "max 4 windows",
            "5 leases retained",
            "6 recalls",
            "idle 75.0%",
            "7 parks",
            "640 spins",
        ] {
            assert!(s.contains(needle), "summary missing {needle:?}: {s}");
        }
    }

    #[test]
    fn handoff_histogram_buckets_by_log2_ns() {
        let mut stats = DriverStats::default();
        stats.observe_handoff(0); // sub-spin handoff
        stats.observe_handoff(300); // still bucket 0 (< 512ns)
        stats.observe_handoff(600); // 512..1024
        stats.observe_handoff(5_000); // 4096..8192
        stats.observe_handoff(u64::MAX); // clamps to the last bucket
        assert_eq!(stats.handoff_ns_hist[0], 2);
        assert_eq!(stats.handoff_ns_hist[1], 1);
        assert_eq!(stats.handoff_ns_hist[4], 1);
        assert_eq!(stats.handoff_ns_hist[HANDOFF_HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn tuned_min_dispatch_follows_the_stall_to_step_ratio() {
        // No samples yet (or degenerate counters): keep the fallback.
        assert_eq!(tuned_min_dispatch(0, 0, 0, 0, 8), 8);
        assert_eq!(tuned_min_dispatch(1_000, 4, 0, 100, 8), 8);
        assert_eq!(tuned_min_dispatch(1_000, 4, 100, 0, 8), 8);
        // 1000 ns stall per window over 100 ns busy per step: a window
        // needs ~10 steps before dispatch amortizes its handoff.
        assert_eq!(tuned_min_dispatch(4_000, 4, 10_000, 100, 8), 10);
        // Cheap handoffs clamp up to 2 (never dispatch singletons)...
        assert_eq!(tuned_min_dispatch(1, 1, 1_000_000, 1_000, 8), 2);
        // ...and pathological stalls clamp down to 64 (never give up on
        // dispatch entirely).
        assert_eq!(tuned_min_dispatch(u64::MAX / 2, 1, 1_000, 1_000, 8), 64);
    }

    #[test]
    fn auto_tune_is_on_by_default_and_off_under_an_explicit_threshold() {
        assert!(ParallelDriver::new(2).auto_tune);
        assert!(!ParallelDriver::new(2).with_min_dispatch(5).auto_tune);
    }
}
