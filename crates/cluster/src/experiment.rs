//! Experiment descriptions, scenarios, the runner, and standalone
//! calibration.
//!
//! An [`Experiment`] is the raw unit of execution: a cluster configuration
//! plus workload-mix phases. A [`Scenario`] is a named, reusable recipe that
//! *builds* experiments — workload mix + cluster config + phase schedule —
//! parameterized by [`ScenarioKnobs`] so the same scenario serves paper-scale
//! figure runs, example walkthroughs, and fast smoke tests. The
//! [`registry`] lists every built-in scenario; examples, integration tests,
//! and the bench figures all pull their setups from it instead of
//! hand-rolling configuration.

use tashkent_sim::SimTime;
use tashkent_workloads::tpcw::TpcwScale;
use tashkent_workloads::{rubis, tpcw, Mix, Workload};

use crate::config::{CertifierSharding, ClusterConfig, PlacementSpec, PolicySpec};
use crate::driver::{DriverKind, RunError};
use crate::metrics::RunResult;
use crate::world::{Ev, World};

pub use crate::detection::{Detection, DetectionSchedule};
pub use crate::failover::{Failover, FailoverSchedule};
pub use crate::partial::PartialReplication;
pub use crate::rebalance::Rebalance;

/// One experiment: a cluster configuration plus one or more workload-mix
/// phases (multiple phases reproduce the Figure 6 mix switches).
#[derive(Clone)]
pub struct Experiment {
    /// Cluster configuration.
    pub config: ClusterConfig,
    /// The workload.
    pub workload: Workload,
    /// Phases: `(duration in seconds, mix)`. The first phase's mix also
    /// seeds MALB's grouping.
    pub phases: Vec<(u64, Mix)>,
    /// Warm-up excluded from measurement, in seconds.
    pub warmup_secs: u64,
    /// Freeze the balancer at this offset (static-configuration baseline),
    /// if set.
    pub freeze_at_secs: Option<u64>,
    /// Fault injections (and any other extra events), scheduled verbatim at
    /// absolute simulated times when the run starts. Ties with the phase /
    /// warm-up / end events resolve in favour of the latter (injections are
    /// scheduled last).
    pub injections: Vec<(SimTime, Ev)>,
    /// Event-loop strategy. Every driver produces identical results; the
    /// parallel driver is faster for multi-replica runs on multi-core
    /// hosts.
    pub driver: DriverKind,
}

impl Experiment {
    /// Single-phase experiment with the paper-shaped default measurement
    /// window (90 s warm-up + 180 s measured).
    pub fn new(config: ClusterConfig, workload: Workload, mix: Mix) -> Self {
        Experiment {
            config,
            workload,
            phases: vec![(270, mix)],
            warmup_secs: 90,
            freeze_at_secs: None,
            injections: Vec::new(),
            driver: DriverKind::Sequential,
        }
    }

    /// Overrides warm-up and measured duration.
    pub fn with_window(mut self, warmup_secs: u64, measured_secs: u64) -> Self {
        self.warmup_secs = warmup_secs;
        if let Some(first) = self.phases.first_mut() {
            first.0 = warmup_secs + measured_secs;
        }
        self
    }

    /// Selects the event-loop driver.
    pub fn with_driver(mut self, driver: DriverKind) -> Self {
        self.driver = driver;
        self
    }

    /// Appends a fault injection (or any extra event) at an absolute
    /// simulated time.
    pub fn with_injection(mut self, at: SimTime, ev: Ev) -> Self {
        self.injections.push((at, ev));
        self
    }

    /// Total simulated duration.
    pub fn total_secs(&self) -> u64 {
        self.phases.iter().map(|(d, _)| d).sum()
    }
}

/// Runs an experiment to completion and returns its result.
///
/// # Errors
///
/// Returns [`RunError::QueueDrained`] when the simulation's event queue
/// empties before the scheduled `End` — a mis-built experiment (for
/// example, zero clients and no periodic events). The error carries the
/// drain time so harnesses can report it instead of crashing the process.
pub fn run(exp: Experiment) -> Result<RunResult, RunError> {
    let mixes: Vec<Mix> = exp.phases.iter().map(|(_, m)| m.clone()).collect();
    let mut world = World::with_driver(exp.config, exp.workload, mixes, exp.driver);
    world.prime();
    // Phase switches.
    let mut t = 0u64;
    for (i, (dur, _)) in exp.phases.iter().enumerate() {
        if i > 0 {
            world.schedule(SimTime::from_secs(t), Ev::MixSwitch { mix: i });
        }
        t += dur;
    }
    if let Some(f) = exp.freeze_at_secs {
        world.schedule(SimTime::from_secs(f), Ev::FreezeLb);
    }
    world.schedule(SimTime::from_secs(exp.warmup_secs), Ev::EndWarmup);
    world.schedule(SimTime::from_secs(t), Ev::End);
    for (at, ev) in exp.injections {
        world.schedule(at, ev);
    }
    world.run_to_end()?;
    world.export_traces().expect("trace export failed");
    Ok(world.finish_result())
}

/// Scale and tuning knobs a [`Scenario`] combines with its own recipe.
///
/// Every knob has a sensible paper-shaped default; [`ScenarioKnobs::smoke`]
/// shrinks the cluster and window for fast deterministic tests.
#[derive(Debug, Clone)]
pub struct ScenarioKnobs {
    /// Number of replicas.
    pub replicas: usize,
    /// Closed-loop clients per replica.
    pub clients_per_replica: usize,
    /// Mean client think time, µs.
    pub think_mean_us: u64,
    /// RAM per replica, MB.
    pub ram_mb: u64,
    /// Overrides the scenario's default policy when set.
    pub policy: Option<PolicySpec>,
    /// Warm-up excluded from measurement, seconds.
    pub warmup_secs: u64,
    /// Measured window, seconds. Multi-phase scenarios split this across
    /// their phases.
    pub measured_secs: u64,
    /// RNG seed (runs are bit-reproducible per seed).
    pub seed: u64,
    /// Event-loop strategy (identical results either way; parallel is
    /// faster for multi-replica runs on multi-core hosts).
    pub driver: DriverKind,
    /// Partial replication: holder copies per relation group. `None` keeps
    /// full replication; `Some(n)` with `n >= replicas` is the degenerate
    /// full-replication case and reproduces `None` results bit for bit.
    pub min_copies: Option<usize>,
    /// Certifier sharding: maximum certifier groups. `None` keeps the
    /// single unified certifier; `Some(1)` is the degenerate sharded case
    /// and reproduces unified results bit for bit.
    pub cert_groups: Option<usize>,
    /// Bandwidth cap for placement backfills (re-replication and
    /// migration), bytes per simulated second. `None` keeps the
    /// instantaneous copy (the historical behaviour); `Some(b)` stages
    /// copies through `Ev::BackfillChunk` at that rate.
    pub backfill_bytes_per_sec: Option<u64>,
    /// Trace output base path: when set (or when the `TASHKENT_TRACE`
    /// environment variable is set), the run records lifecycle spans and
    /// writes `<path>` (JSONL) plus `<path>.chrome.json` (Chrome
    /// `trace_event` format). `None` (the default) keeps tracing off.
    pub trace: Option<String>,
    /// Heartbeat failure detection period, µs. `None` keeps the omniscient
    /// oracle fault model (crash events notify the balancer directly);
    /// `Some(p)` runs the suspicion state machine off heartbeat rounds
    /// every `p` µs.
    pub heartbeat_period_us: Option<u64>,
    /// Checkpoint lag `k`: crashed replicas recover at `applied − k` and
    /// replay the redo window from the certifier log. `None` keeps the
    /// historical exact-prefix recovery (`k = 0`).
    pub checkpoint_lag: Option<u64>,
    /// Per-request client timeout, µs. `None` keeps clients waiting
    /// indefinitely (the historical behaviour); `Some(t)` abandons and
    /// retries a request `t` µs after submission, with capped exponential
    /// backoff.
    pub client_timeout_us: Option<u64>,
}

impl Default for ScenarioKnobs {
    fn default() -> Self {
        ScenarioKnobs {
            replicas: 16,
            clients_per_replica: 7,
            think_mean_us: 500_000,
            ram_mb: 512,
            policy: None,
            warmup_secs: 90,
            measured_secs: 180,
            seed: 42,
            driver: DriverKind::Sequential,
            min_copies: None,
            cert_groups: None,
            backfill_bytes_per_sec: None,
            trace: None,
            heartbeat_period_us: None,
            checkpoint_lag: None,
            client_timeout_us: None,
        }
    }
}

impl ScenarioKnobs {
    /// Small cluster, short window: for tests and example walkthroughs.
    pub fn smoke() -> Self {
        ScenarioKnobs {
            replicas: 2,
            clients_per_replica: 3,
            think_mean_us: 300_000,
            warmup_secs: 5,
            measured_secs: 20,
            ..ScenarioKnobs::default()
        }
    }

    /// Sets the policy override.
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the event-loop driver.
    pub fn with_driver(mut self, driver: DriverKind) -> Self {
        self.driver = driver;
        self
    }

    /// Sets (or clears) the partial-replication durability constraint.
    pub fn with_min_copies(mut self, min_copies: Option<usize>) -> Self {
        self.min_copies = min_copies;
        self
    }

    /// Sets (or clears) the certifier-sharding group cap.
    pub fn with_cert_groups(mut self, cert_groups: Option<usize>) -> Self {
        self.cert_groups = cert_groups;
        self
    }

    /// Sets (or clears) the placement-backfill bandwidth cap.
    pub fn with_backfill_cap(mut self, bytes_per_sec: Option<u64>) -> Self {
        self.backfill_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Enables run tracing, writing `<path>` (JSONL) and
    /// `<path>.chrome.json` (Chrome `trace_event`) when the run finishes.
    pub fn with_trace(mut self, path: impl Into<String>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Sets (or clears) the heartbeat failure-detection period.
    pub fn with_heartbeat(mut self, period_us: Option<u64>) -> Self {
        self.heartbeat_period_us = period_us;
        self
    }

    /// Sets (or clears) the checkpoint-lag recovery depth.
    pub fn with_checkpoint_lag(mut self, k: Option<u64>) -> Self {
        self.checkpoint_lag = k;
        self
    }

    /// Sets (or clears) the per-request client timeout.
    pub fn with_client_timeout(mut self, timeout_us: Option<u64>) -> Self {
        self.client_timeout_us = timeout_us;
        self
    }

    /// The cluster configuration these knobs describe, under `default`
    /// policy when no override is set.
    pub fn config(&self, default_policy: PolicySpec) -> ClusterConfig {
        let mut config = ClusterConfig::paper_default()
            .with_ram_mb(self.ram_mb)
            .with_policy(self.policy.unwrap_or(default_policy))
            .with_clients(self.replicas * self.clients_per_replica);
        config.replicas = self.replicas;
        config.think_mean_us = self.think_mean_us;
        config.seed = self.seed;
        config.placement = match self.min_copies {
            Some(min_copies) => PlacementSpec::Partial { min_copies },
            None => PlacementSpec::Full,
        };
        config.certifier_sharding = match self.cert_groups {
            Some(max_groups) => CertifierSharding::Sharded { max_groups },
            None => CertifierSharding::Unified,
        };
        config.backfill_bytes_per_sec = self.backfill_bytes_per_sec.unwrap_or(0);
        if let Some(p) = self.heartbeat_period_us {
            config.heartbeat_period_us = p;
        }
        if let Some(k) = self.checkpoint_lag {
            config.checkpoint_lag = k;
        }
        if let Some(t) = self.client_timeout_us {
            config.client_timeout_us = t;
        }
        // The knob wins over the environment; either enables both exporters.
        let trace_base = self
            .trace
            .clone()
            .or_else(|| std::env::var("TASHKENT_TRACE").ok());
        if let Some(base) = trace_base {
            config.trace.jsonl_path = Some(base.clone());
            config.trace.chrome_path = Some(format!("{base}.chrome.json"));
        }
        config
    }
}

/// A named experiment recipe: workload mix + cluster config + phase
/// schedule.
///
/// Implementations are registered in [`registry`] so every entry point
/// (examples, integration tests, bench figures) builds its runs from one
/// shared catalog.
pub trait Scenario {
    /// Registry key, e.g. `"tpcw-steady-state"`.
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn summary(&self) -> &'static str;

    /// Builds the experiment this scenario describes at the given scale.
    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment;

    /// Builds and runs the scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`run`] (drained event queue) instead
    /// of crashing the process, so scenario sweeps can report and continue.
    fn run(&self, knobs: &ScenarioKnobs) -> Result<RunResult, RunError> {
        run(self.experiment(knobs))
    }
}

/// TPC-W steady state: one mix for the whole run (Figures 3/5 shape).
pub struct TpcwSteadyState {
    /// Database scale.
    pub scale: TpcwScale,
    /// Mix name: `"ordering"`, `"shopping"`, or `"browsing"`.
    pub mix: &'static str,
}

impl Default for TpcwSteadyState {
    fn default() -> Self {
        TpcwSteadyState {
            scale: TpcwScale::Small,
            mix: "ordering",
        }
    }
}

impl Scenario for TpcwSteadyState {
    fn name(&self) -> &'static str {
        "tpcw-steady-state"
    }

    fn summary(&self) -> &'static str {
        "TPC-W bookstore, one fixed mix, MALB-SC by default"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, mix) = tpcw::workload_with_mix(self.scale, self.mix);
        let config = knobs.config(PolicySpec::malb_sc());
        Experiment::new(config, workload, mix)
            .with_window(knobs.warmup_secs, knobs.measured_secs)
            .with_driver(knobs.driver)
    }
}

/// RUBiS auction site on the bidding mix, with the `AboutMe` whale that
/// motivates working-set isolation (Figure 4 shape).
pub struct RubisAuctionMix {
    /// Mix name: `"bidding"` or `"browsing"`.
    pub mix: &'static str,
}

impl Default for RubisAuctionMix {
    fn default() -> Self {
        RubisAuctionMix { mix: "bidding" }
    }
}

impl Scenario for RubisAuctionMix {
    fn name(&self) -> &'static str {
        "rubis-auction"
    }

    fn summary(&self) -> &'static str {
        "RUBiS auction site, bidding mix with the AboutMe whale"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, mix) = rubis::workload_with_mix(self.mix);
        let config = knobs.config(PolicySpec::malb_sc());
        Experiment::new(config, workload, mix)
            .with_window(knobs.warmup_secs, knobs.measured_secs)
            .with_driver(knobs.driver)
    }
}

/// Dynamic reconfiguration: the TPC-W mix switches shopping → browsing →
/// shopping and MALB re-allocates replicas after each switch (Figure 6
/// shape). The measured window is split evenly across the three phases.
pub struct DynamicReconfig {
    /// Database scale.
    pub scale: TpcwScale,
    /// Freeze the balancer mid-first-phase (static-configuration baseline).
    pub freeze: bool,
}

impl Default for DynamicReconfig {
    fn default() -> Self {
        DynamicReconfig {
            scale: TpcwScale::Small,
            freeze: false,
        }
    }
}

impl Scenario for DynamicReconfig {
    fn name(&self) -> &'static str {
        "dynamic-reconfig"
    }

    fn summary(&self) -> &'static str {
        "TPC-W mix switches shopping -> browsing -> shopping; MALB re-allocates"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, shopping) = tpcw::workload_with_mix(self.scale, "shopping");
        let (_, browsing) = tpcw::workload_with_mix(self.scale, "browsing");
        let config = knobs.config(PolicySpec::malb_sc());
        // Split the measured window across the three phases; the last phase
        // absorbs the division remainder so the window totals measured_secs.
        let phase = (knobs.measured_secs / 3).max(1);
        let last = knobs.measured_secs.saturating_sub(2 * phase).max(1);
        Experiment {
            config,
            workload,
            phases: vec![
                (knobs.warmup_secs + phase, shopping.clone()),
                (phase, browsing),
                (last, shopping),
            ],
            warmup_secs: knobs.warmup_secs,
            freeze_at_secs: self
                .freeze
                .then_some(knobs.warmup_secs + (phase / 2).max(1)),
            injections: Vec::new(),
            driver: knobs.driver,
        }
    }
}

/// Every built-in scenario, in registry order.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(TpcwSteadyState::default()),
        Box::new(RubisAuctionMix::default()),
        Box::new(DynamicReconfig::default()),
        Box::new(Failover::default()),
        Box::new(Detection::default()),
        Box::new(PartialReplication::default()),
        Box::new(Rebalance::default()),
    ]
}

/// Looks a scenario up by its registry name.
pub fn scenario(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}

/// Runs a registered scenario by name.
///
/// # Errors
///
/// Propagates [`RunError`] from the underlying [`run`].
///
/// # Panics
///
/// Panics if no scenario is registered under `name` (programming error at
/// every call site; the registry is static).
pub fn run_scenario(name: &str, knobs: &ScenarioKnobs) -> Result<RunResult, RunError> {
    scenario(name)
        .unwrap_or_else(|| panic!("no scenario named {name:?} in the registry"))
        .run(knobs)
}

/// Result of the §4.4 client-sizing procedure.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Peak standalone throughput observed.
    pub peak_tps: f64,
    /// Client count per replica that produced ~85 % of the peak.
    pub clients_at_85: usize,
    /// The sweep: `(clients, tps)` pairs.
    pub sweep: Vec<(usize, f64)>,
}

/// Measures a standalone (single-replica) database across client counts and
/// returns the count that yields 85 % of peak throughput — the paper's
/// method for sizing the client population (§4.4).
pub fn calibrate_standalone(
    base: &ClusterConfig,
    workload: &Workload,
    mix: &Mix,
    candidates: &[usize],
    warmup_secs: u64,
    measured_secs: u64,
) -> Calibration {
    let mut sweep = Vec::new();
    for &n in candidates {
        let config = base.clone().standalone(n);
        let exp = Experiment::new(config, workload.clone(), mix.clone())
            .with_window(warmup_secs, measured_secs);
        let result = run(exp).expect("calibration experiments schedule an End event");
        sweep.push((n, result.tps));
    }
    let peak_tps = sweep.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    let target = 0.85 * peak_tps;
    let clients_at_85 = sweep
        .iter()
        .find(|(_, t)| *t >= target)
        .map(|(n, _)| *n)
        .unwrap_or_else(|| sweep.last().map(|(n, _)| *n).unwrap_or(1));
    Calibration {
        peak_tps,
        clients_at_85,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    #[test]
    fn run_produces_throughput() {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "shopping");
        let config = ClusterConfig {
            replicas: 2,
            clients: 8,
            think_mean_us: 300_000,
            ..ClusterConfig::paper_default()
        };
        let r = run(Experiment::new(config, workload, mix).with_window(5, 20)).unwrap();
        assert!(r.tps > 0.5, "tps {}", r.tps);
        assert!((r.window_s - 20.0).abs() < 0.5);
    }

    #[test]
    fn phases_switch_mixes() {
        let (workload, ordering) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let (_, browsing) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 300_000,
            ..ClusterConfig::paper_default()
        }
        .with_policy(PolicySpec::malb_sc());
        let exp = Experiment {
            config,
            workload,
            phases: vec![(15, ordering), (15, browsing)],
            warmup_secs: 5,
            freeze_at_secs: None,
            injections: Vec::new(),
            driver: DriverKind::Sequential,
        };
        assert_eq!(exp.total_secs(), 30);
        let r = run(exp).unwrap();
        assert!(r.committed > 0);
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate scenario names");
        for name in names {
            assert!(scenario(name).is_some(), "scenario {name} not findable");
        }
        assert!(scenario("no-such-scenario").is_none());
    }

    #[test]
    fn knobs_shape_the_experiment() {
        let knobs = ScenarioKnobs {
            replicas: 3,
            clients_per_replica: 4,
            ..ScenarioKnobs::smoke()
        }
        .with_policy(PolicySpec::Lard)
        .with_seed(7);
        let exp = TpcwSteadyState::default().experiment(&knobs);
        assert_eq!(exp.config.replicas, 3);
        assert_eq!(exp.config.clients, 12);
        assert_eq!(exp.config.policy, PolicySpec::Lard);
        assert_eq!(exp.config.seed, 7);
        assert_eq!(exp.total_secs(), knobs.warmup_secs + knobs.measured_secs);
    }

    #[test]
    fn dynamic_reconfig_splits_measured_window() {
        let knobs = ScenarioKnobs::smoke();
        let exp = DynamicReconfig::default().experiment(&knobs);
        assert_eq!(exp.phases.len(), 3);
        let phase = (knobs.measured_secs / 3).max(1);
        assert_eq!(exp.phases[0].0, knobs.warmup_secs + phase);
        assert_eq!(exp.phases[1].0, phase);
        // The last phase absorbs the remainder: the whole window is honored
        // even when measured_secs is not divisible by 3.
        assert_eq!(exp.total_secs(), knobs.warmup_secs + knobs.measured_secs);
        assert!(exp.freeze_at_secs.is_none());
        let frozen = DynamicReconfig {
            freeze: true,
            ..DynamicReconfig::default()
        }
        .experiment(&knobs);
        assert!(frozen.freeze_at_secs.is_some());
    }

    #[test]
    fn calibration_finds_85_percent_point() {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let base = ClusterConfig {
            think_mean_us: 300_000,
            ..ClusterConfig::paper_default()
        };
        let cal = calibrate_standalone(&base, &workload, &mix, &[2, 8], 3, 12);
        assert_eq!(cal.sweep.len(), 2);
        assert!(cal.peak_tps > 0.0);
        assert!(cal.clients_at_85 == 2 || cal.clients_at_85 == 8);
    }
}
