//! Experiment descriptions, the runner, and standalone calibration.

use tashkent_sim::SimTime;
use tashkent_workloads::{Mix, Workload};

use crate::config::ClusterConfig;
use crate::metrics::RunResult;
use crate::world::{Ev, World};

/// One experiment: a cluster configuration plus one or more workload-mix
/// phases (multiple phases reproduce the Figure 6 mix switches).
#[derive(Clone)]
pub struct Experiment {
    /// Cluster configuration.
    pub config: ClusterConfig,
    /// The workload.
    pub workload: Workload,
    /// Phases: `(duration in seconds, mix)`. The first phase's mix also
    /// seeds MALB's grouping.
    pub phases: Vec<(u64, Mix)>,
    /// Warm-up excluded from measurement, in seconds.
    pub warmup_secs: u64,
    /// Freeze the balancer at this offset (static-configuration baseline),
    /// if set.
    pub freeze_at_secs: Option<u64>,
}

impl Experiment {
    /// Single-phase experiment with the paper-shaped default measurement
    /// window (90 s warm-up + 180 s measured).
    pub fn new(config: ClusterConfig, workload: Workload, mix: Mix) -> Self {
        Experiment {
            config,
            workload,
            phases: vec![(270, mix)],
            warmup_secs: 90,
            freeze_at_secs: None,
        }
    }

    /// Overrides warm-up and measured duration.
    pub fn with_window(mut self, warmup_secs: u64, measured_secs: u64) -> Self {
        self.warmup_secs = warmup_secs;
        if let Some(first) = self.phases.first_mut() {
            first.0 = warmup_secs + measured_secs;
        }
        self
    }

    /// Total simulated duration.
    pub fn total_secs(&self) -> u64 {
        self.phases.iter().map(|(d, _)| d).sum()
    }
}

/// Runs an experiment to completion and returns its result.
pub fn run(exp: Experiment) -> RunResult {
    let mixes: Vec<Mix> = exp.phases.iter().map(|(_, m)| m.clone()).collect();
    let mut world = World::new(exp.config, exp.workload, mixes);
    world.prime();
    // Phase switches.
    let mut t = 0u64;
    for (i, (dur, _)) in exp.phases.iter().enumerate() {
        if i > 0 {
            world.schedule(SimTime::from_secs(t), Ev::MixSwitch { mix: i });
        }
        t += dur;
    }
    if let Some(f) = exp.freeze_at_secs {
        world.schedule(SimTime::from_secs(f), Ev::FreezeLb);
    }
    world.schedule(SimTime::from_secs(exp.warmup_secs), Ev::EndWarmup);
    world.schedule(SimTime::from_secs(t), Ev::End);
    world.run_to_end();
    world.finish_result()
}

/// Result of the §4.4 client-sizing procedure.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Peak standalone throughput observed.
    pub peak_tps: f64,
    /// Client count per replica that produced ~85 % of the peak.
    pub clients_at_85: usize,
    /// The sweep: `(clients, tps)` pairs.
    pub sweep: Vec<(usize, f64)>,
}

/// Measures a standalone (single-replica) database across client counts and
/// returns the count that yields 85 % of peak throughput — the paper's
/// method for sizing the client population (§4.4).
pub fn calibrate_standalone(
    base: &ClusterConfig,
    workload: &Workload,
    mix: &Mix,
    candidates: &[usize],
    warmup_secs: u64,
    measured_secs: u64,
) -> Calibration {
    let mut sweep = Vec::new();
    for &n in candidates {
        let config = base.clone().standalone(n);
        let exp = Experiment::new(config, workload.clone(), mix.clone())
            .with_window(warmup_secs, measured_secs);
        let result = run(exp);
        sweep.push((n, result.tps));
    }
    let peak_tps = sweep.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    let target = 0.85 * peak_tps;
    let clients_at_85 = sweep
        .iter()
        .find(|(_, t)| *t >= target)
        .map(|(n, _)| *n)
        .unwrap_or_else(|| sweep.last().map(|(n, _)| *n).unwrap_or(1));
    Calibration {
        peak_tps,
        clients_at_85,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    #[test]
    fn run_produces_throughput() {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "shopping");
        let config = ClusterConfig {
            replicas: 2,
            clients: 8,
            think_mean_us: 300_000,
            ..ClusterConfig::paper_default()
        };
        let r = run(Experiment::new(config, workload, mix).with_window(5, 20));
        assert!(r.tps > 0.5, "tps {}", r.tps);
        assert!((r.window_s - 20.0).abs() < 0.5);
    }

    #[test]
    fn phases_switch_mixes() {
        let (workload, ordering) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let (_, browsing) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 300_000,
            ..ClusterConfig::paper_default()
        }
        .with_policy(PolicySpec::malb_sc());
        let exp = Experiment {
            config,
            workload,
            phases: vec![(15, ordering), (15, browsing)],
            warmup_secs: 5,
            freeze_at_secs: None,
        };
        assert_eq!(exp.total_secs(), 30);
        let r = run(exp);
        assert!(r.committed > 0);
    }

    #[test]
    fn calibration_finds_85_percent_point() {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let base = ClusterConfig {
            think_mean_us: 300_000,
            ..ClusterConfig::paper_default()
        };
        let cal = calibrate_standalone(&base, &workload, &mix, &[2, 8], 3, 12);
        assert_eq!(cal.sweep.len(), 2);
        assert!(cal.peak_tps > 0.0);
        assert!(cal.clients_at_85 == 2 || cal.clients_at_85 == 8);
    }
}
