//! Partial replication: relation-group placement under a durability
//! constraint (Sutra & Shapiro 2008 direction).
//!
//! Tashkent+'s update filtering (§3) lets a replica *drop* writesets for
//! relations its assigned transaction types never read, but every replica
//! still stores the full database. Partial replication goes one step
//! further: each *relation group* — the relation set one transaction type
//! touches, the same unit §3's filter lists are built from — lives on only
//! a subset of replicas, its **holder set**, under an explicit durability
//! constraint (`min_copies` up-to-date copies). A replica's *held* relation
//! set is the union over the groups assigned to it; groups overlap freely
//! (TPC-W's co-access graph is connected, so disjoint components would
//! degenerate to full replication), and a shared relation is simply kept
//! current wherever any holder needs it. The consequences thread through
//! every layer:
//!
//! * **Dispatch** routes a transaction only to replicas holding *every*
//!   relation it touches (the balancer consumes per-type eligibility masks
//!   derived here);
//! * **Propagation** ships a committed writeset's pages only to replicas
//!   holding the touched relations; a replica holding none of them receives
//!   a bare *version tick* ([`WS_TICK_BYTES`]) so its applied version stays
//!   a consistent prefix — extending [`UpdateFilter`] from "may drop" to
//!   "must not receive";
//! * **Failover** must uphold the durability invariant: a crash that drops
//!   a group below `min_copies` live holders triggers re-replication onto a
//!   survivor via certifier-log backfill (see
//!   [`crate::state::ClusterState`]).
//!
//! Full replication is the `min_copies = cluster size` degenerate case:
//! every replica holds every group, the eligibility masks are all-true, and
//! runs reproduce the fully-replicated results bit for bit.

use std::collections::{BTreeMap, BTreeSet};

use tashkent_core::WorkingSetEstimator;
use tashkent_engine::{TxnTypeId, Writeset};
use tashkent_replica::UpdateFilter;
use tashkent_storage::RelationId;
use tashkent_workloads::Workload;

/// Bytes of a version tick — the durability notification a non-holder
/// receives instead of a writeset's pages (a version number plus framing).
pub const WS_TICK_BYTES: u64 = 16;

/// One unit of placement: the relations one or more transaction types
/// touch together (types with identical relation sets share a group), plus
/// each referenced index alongside its base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationGroup {
    /// The transaction types this group serves.
    pub types: Vec<TxnTypeId>,
    /// Member relations (tables and their indices), sorted.
    pub relations: BTreeSet<RelationId>,
    /// Combined size in pages (catalog `relpages`), the placement weight.
    pub pages: u64,
}

/// Where every relation group lives: the group → holder-set assignment the
/// cluster threads through dispatch, propagation, and failover.
#[derive(Debug, Clone)]
pub struct PlacementMap {
    n_replicas: usize,
    min_copies: usize,
    groups: Vec<RelationGroup>,
    /// Group index per transaction type (`None` for types touching no
    /// relation).
    group_of_type: Vec<Option<usize>>,
    /// Holder replica indices per group, sorted ascending.
    holders: Vec<Vec<usize>>,
    /// Cached per-replica held relations: the union over assigned groups.
    held: Vec<BTreeSet<RelationId>>,
    /// Relations a replica has been assigned but whose pages are still in
    /// flight from a capped backfill. A pending relation is *held* (the
    /// filter accepts foreground propagation so the copy converges) but the
    /// replica is not dispatch-eligible for any type touching it until the
    /// backfill completes.
    pending: Vec<BTreeSet<RelationId>>,
    /// Every relation referenced by some group (relations outside this set
    /// never appear in a writeset and count as held everywhere), with its
    /// size in pages (catalog `relpages`).
    referenced: BTreeMap<RelationId, u64>,
}

impl PlacementMap {
    /// Number of relation groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The durability constraint: minimum up-to-date copies per group.
    pub fn min_copies(&self) -> usize {
        self.min_copies
    }

    /// The relation groups, in id order.
    pub fn groups(&self) -> &[RelationGroup] {
        &self.groups
    }

    /// Holder replicas of `group`, ascending.
    pub fn holders(&self, group: usize) -> &[usize] {
        &self.holders[group]
    }

    /// The group serving a transaction type.
    pub fn group_of_type(&self, txn_type: TxnTypeId) -> Option<usize> {
        self.group_of_type
            .get(txn_type.0 as usize)
            .copied()
            .flatten()
    }

    /// Whether `replica` is an assigned holder of `group`.
    pub fn holds_group(&self, replica: usize, group: usize) -> bool {
        self.holders[group].binary_search(&replica).is_ok()
    }

    /// Whether `replica` keeps `rel` current (relations referenced by no
    /// group never change, so they count as held everywhere).
    pub fn holds(&self, replica: usize, rel: RelationId) -> bool {
        self.held[replica].contains(&rel) || !self.referenced.contains_key(&rel)
    }

    /// Whether `replica` may serve transactions of `txn_type`: its held set
    /// covers the type's whole relation group (holder sets qualify by
    /// construction; so does a replica covering the group through other
    /// groups' overlap) *and* none of those relations are still being
    /// backfilled — a still-backfilling holder must never receive dispatch.
    pub fn eligible(&self, txn_type: TxnTypeId, replica: usize) -> bool {
        match self.group_of_type(txn_type) {
            Some(g) => self.groups[g].relations.iter().all(|rel| {
                self.held[replica].contains(rel) && !self.pending[replica].contains(rel)
            }),
            None => true,
        }
    }

    /// Whether every group is held by every replica (the full-replication
    /// degenerate case, `min_copies >= cluster size`).
    pub fn is_full(&self) -> bool {
        self.holders.iter().all(|h| h.len() == self.n_replicas)
    }

    /// Adds `replica` to `group`'s holder set, extending its held
    /// relations; returns whether it was new.
    pub fn add_holder(&mut self, group: usize, replica: usize) -> bool {
        match self.holders[group].binary_search(&replica) {
            Ok(_) => false,
            Err(pos) => {
                self.holders[group].insert(pos, replica);
                let rels: Vec<RelationId> = self.groups[group].relations.iter().copied().collect();
                self.held[replica].extend(rels);
                true
            }
        }
    }

    /// Removes `replica` from `group`'s holder set, recomputing its held
    /// relations as the union over its remaining groups (a relation shared
    /// with another held group stays held); returns whether it was a
    /// holder. Pending relations the replica no longer holds are dropped
    /// with it.
    pub fn remove_holder(&mut self, group: usize, replica: usize) -> bool {
        match self.holders[group].binary_search(&replica) {
            Err(_) => false,
            Ok(pos) => {
                self.holders[group].remove(pos);
                let mut held = BTreeSet::new();
                for (g, holders) in self.holders.iter().enumerate() {
                    if holders.binary_search(&replica).is_ok() {
                        held.extend(self.groups[g].relations.iter().copied());
                    }
                }
                self.pending[replica].retain(|rel| held.contains(rel));
                self.held[replica] = held;
                true
            }
        }
    }

    /// Marks `rels` on `replica` as backfill-in-flight: held (the filter
    /// keeps the copy converging) but not dispatch-eligible.
    pub fn mark_pending(&mut self, replica: usize, rels: &BTreeSet<RelationId>) {
        self.pending[replica].extend(rels.iter().copied());
    }

    /// Clears the backfill-in-flight mark for `rels` on `replica`: the
    /// pages have arrived and the replica may serve types touching them.
    pub fn complete_backfill(&mut self, replica: usize, rels: &BTreeSet<RelationId>) {
        for rel in rels {
            self.pending[replica].remove(rel);
        }
    }

    /// Relations still being backfilled onto `replica`.
    pub fn pending_relations(&self, replica: usize) -> &BTreeSet<RelationId> {
        &self.pending[replica]
    }

    /// Relations `replica` keeps current (union over its groups).
    pub fn held_relations(&self, replica: usize) -> &BTreeSet<RelationId> {
        &self.held[replica]
    }

    /// Relations of `group` that `replica` does *not* yet hold — what a
    /// re-replication backfill must ship.
    pub fn missing_relations(&self, replica: usize, group: usize) -> BTreeSet<RelationId> {
        self.groups[group]
            .relations
            .difference(&self.held[replica])
            .copied()
            .collect()
    }

    /// Pages resident on `replica` under this placement (re-replication
    /// target selection weight).
    pub fn held_pages(&self, replica: usize) -> u64 {
        self.held[replica]
            .iter()
            .map(|rel| self.referenced.get(rel).copied().unwrap_or(0))
            .sum()
    }

    /// The update filter partial replication installs on `replica`:
    /// pass-through when it holds every group (full replication must stay
    /// bit-identical), otherwise exactly its held relations.
    pub fn filter_for(&self, replica: usize) -> UpdateFilter {
        if (0..self.groups.len()).all(|g| self.holds_group(replica, g)) {
            UpdateFilter::all()
        } else {
            UpdateFilter::only(self.held[replica].iter().copied())
        }
    }

    /// Per-type eligibility masks for the load balancer: `masks[t][r]` is
    /// whether replica `r` holds every relation transaction type `t`
    /// touches.
    pub fn type_masks(&self, n_types: usize) -> Vec<Vec<bool>> {
        (0..n_types)
            .map(|t| {
                (0..self.n_replicas)
                    .map(|r| self.eligible(TxnTypeId(t as u32), r))
                    .collect()
            })
            .collect()
    }
}

/// Computes a [`PlacementMap`] for a workload: one relation group per
/// distinct transaction-type relation set, holder sets by overlap-aware
/// balance under the `min_copies` durability constraint.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPlanner {
    /// Minimum up-to-date copies per relation group (clamped to
    /// `[1, cluster size]` when planning).
    pub min_copies: usize,
}

impl ReplicationPlanner {
    /// A planner with the given durability constraint.
    pub fn new(min_copies: usize) -> Self {
        ReplicationPlanner { min_copies }
    }

    /// Plans placement for `workload` over `replicas` nodes.
    ///
    /// Groups are assigned heaviest-first; each picks the `min_copies`
    /// replicas minimizing the resulting held pages (`held + newly added`,
    /// ties to the lowest replica id) — overlap makes a replica that
    /// already holds most of a group a cheap extra holder, while the
    /// balance term keeps the database spread. Deterministic throughout;
    /// this assignment is the object the skew-driven rebalancing follow-on
    /// will act on.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn plan(&self, workload: &Workload, replicas: usize) -> PlacementMap {
        assert!(replicas > 0, "placement needs at least one replica");
        let min_copies = self.min_copies.clamp(1, replicas);
        let catalog = &workload.catalog;
        let estimator = WorkingSetEstimator::new(catalog);

        // One group per distinct relation set; each index travels with its
        // base table so writeset application always finds both.
        let mut groups: Vec<RelationGroup> = Vec::new();
        let mut group_of_rels: BTreeMap<BTreeSet<RelationId>, usize> = BTreeMap::new();
        let mut group_of_type: Vec<Option<usize>> = vec![None; workload.types.len()];
        let mut referenced: BTreeMap<RelationId, u64> = BTreeMap::new();
        for t in &workload.types {
            let ws = estimator.estimate(t.id, &workload.explain(t.id));
            let mut rels: BTreeSet<RelationId> = ws.relations.keys().copied().collect();
            for rel in rels.clone() {
                let meta = catalog.get(rel);
                if let Some(table) = meta.table {
                    rels.insert(table);
                }
                for idx in catalog.indices_of(rel) {
                    rels.insert(idx.id);
                }
            }
            if rels.is_empty() {
                continue;
            }
            let gi = *group_of_rels.entry(rels.clone()).or_insert_with(|| {
                let mut pages = 0;
                for r in &rels {
                    let p = catalog.get(*r).pages as u64;
                    referenced.insert(*r, p);
                    pages += p;
                }
                groups.push(RelationGroup {
                    types: Vec::new(),
                    pages,
                    relations: rels.clone(),
                });
                groups.len() - 1
            });
            groups[gi].types.push(t.id);
            group_of_type[t.id.0 as usize] = Some(gi);
        }

        // Holder assignment: heaviest group first; each onto the
        // `min_copies` replicas minimizing resulting held pages.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|g| (std::cmp::Reverse(groups[*g].pages), *g));
        let mut held: Vec<BTreeSet<RelationId>> = vec![BTreeSet::new(); replicas];
        let mut held_pages = vec![0u64; replicas];
        let mut holders: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
        for g in order {
            let added: Vec<u64> = (0..replicas)
                .map(|r| {
                    groups[g]
                        .relations
                        .iter()
                        .filter(|rel| !held[r].contains(*rel))
                        .map(|rel| referenced[rel])
                        .sum()
                })
                .collect();
            let mut ranked: Vec<usize> = (0..replicas).collect();
            ranked.sort_by_key(|r| (held_pages[*r] + added[*r], *r));
            let mut chosen: Vec<usize> = ranked.into_iter().take(min_copies).collect();
            chosen.sort_unstable();
            for &r in &chosen {
                held_pages[r] += added[r];
                let rels: Vec<RelationId> = groups[g].relations.iter().copied().collect();
                held[r].extend(rels);
            }
            holders[g] = chosen;
        }

        PlacementMap {
            n_replicas: replicas,
            min_copies,
            groups,
            group_of_type,
            holders,
            held,
            pending: vec![BTreeSet::new(); replicas],
            referenced,
        }
    }
}

/// Assigns every relation to exactly one *certifier group* — the sharding
/// unit of certification. Groups are derived from the same distinct
/// transaction-type relation sets the [`ReplicationPlanner`] places (the
/// PR 4 placement unit), folded down to at most `max_groups` groups; a
/// relation shared by several relation sets is owned by the lowest-indexed
/// one, so ownership is a function — each item has exactly one certifying
/// group, which is what makes the sharded conflict probe equivalent to the
/// global one.
#[derive(Debug, Clone)]
pub struct CertMap {
    n_groups: usize,
    /// Owning certifier group per referenced relation; unreferenced
    /// relations (never written) default to group 0.
    owner: BTreeMap<RelationId, usize>,
}

/// Hard cap on certifier groups: touched-group sets travel as `u64`
/// bitmasks through events and the driver.
pub const MAX_CERT_GROUPS: usize = 64;

impl CertMap {
    /// Derives the certifier-group map for `workload`, folding the distinct
    /// relation sets down to at most `max_groups` (clamped to
    /// `[1, MAX_CERT_GROUPS]`) groups round-robin by relation-set index.
    pub fn build(workload: &Workload, max_groups: usize) -> Self {
        let catalog = &workload.catalog;
        let estimator = WorkingSetEstimator::new(catalog);
        // The same distinct-relation-set derivation as
        // `ReplicationPlanner::plan`, in first-seen type order.
        let mut rel_sets: Vec<BTreeSet<RelationId>> = Vec::new();
        let mut seen: BTreeMap<BTreeSet<RelationId>, usize> = BTreeMap::new();
        for t in &workload.types {
            let ws = estimator.estimate(t.id, &workload.explain(t.id));
            let mut rels: BTreeSet<RelationId> = ws.relations.keys().copied().collect();
            for rel in rels.clone() {
                let meta = catalog.get(rel);
                if let Some(table) = meta.table {
                    rels.insert(table);
                }
                for idx in catalog.indices_of(rel) {
                    rels.insert(idx.id);
                }
            }
            if rels.is_empty() {
                continue;
            }
            if !seen.contains_key(&rels) {
                seen.insert(rels.clone(), rel_sets.len());
                rel_sets.push(rels);
            }
        }
        let fold = rel_sets
            .len()
            .min(max_groups.clamp(1, MAX_CERT_GROUPS))
            .max(1);
        let mut owner: BTreeMap<RelationId, usize> = BTreeMap::new();
        for (idx, rels) in rel_sets.iter().enumerate() {
            for rel in rels {
                owner.entry(*rel).or_insert(idx % fold);
            }
        }
        // Compact away groups left owning nothing (every relation of their
        // sets was claimed by a lower-indexed set): each surviving group
        // must own at least one relation or it would never see traffic.
        let mut remap = vec![usize::MAX; fold];
        let mut n_groups = 0;
        for g in owner.values() {
            if remap[*g] == usize::MAX {
                remap[*g] = 0; // mark; ids assigned in ascending group order
            }
        }
        for slot in &mut remap {
            if *slot == 0 {
                *slot = n_groups;
                n_groups += 1;
            }
        }
        for g in owner.values_mut() {
            *g = remap[*g];
        }
        CertMap {
            n_groups: n_groups.max(1),
            owner,
        }
    }

    /// Number of certifier groups (1 ..= [`MAX_CERT_GROUPS`]).
    pub fn group_count(&self) -> usize {
        self.n_groups
    }

    /// The certifier group owning `rel`.
    pub fn group_of_rel(&self, rel: RelationId) -> usize {
        self.owner.get(&rel).copied().unwrap_or(0)
    }

    /// Bitmask of the certifier groups `ws` touches. Empty writesets
    /// certify against group 0 (any single group works; 0 is canonical).
    pub fn mask_for(&self, ws: &Writeset) -> u64 {
        if ws.items.is_empty() {
            return 1;
        }
        let mut mask = 0u64;
        for item in &ws.items {
            mask |= 1 << self.group_of_rel(item.rel);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    fn tpcw_map(replicas: usize, min_copies: usize) -> PlacementMap {
        let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        ReplicationPlanner::new(min_copies).plan(&workload, replicas)
    }

    #[test]
    fn every_type_has_a_group_and_indices_travel_with_tables() {
        let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let map = tpcw_map(4, 2);
        for t in &workload.types {
            let g = map
                .group_of_type(t.id)
                .unwrap_or_else(|| panic!("{} has no group", t.name));
            assert!(map.groups()[g].types.contains(&t.id));
            // Every table in the group brings its indices and vice versa.
            for rel in &map.groups()[g].relations {
                if let Some(table) = workload.catalog.get(*rel).table {
                    assert!(map.groups()[g].relations.contains(&table));
                }
            }
        }
    }

    #[test]
    fn every_type_is_servable_by_its_holder_set() {
        let map = tpcw_map(4, 2);
        for (g, group) in map.groups().iter().enumerate() {
            for t in &group.types {
                for &r in map.holders(g) {
                    assert!(map.eligible(*t, r), "holder {r} not eligible for {t}");
                }
                let eligible = (0..4).filter(|r| map.eligible(*t, *r)).count();
                assert!(eligible >= 2, "{t}: only {eligible} eligible");
            }
        }
    }

    #[test]
    fn holder_sets_honor_min_copies() {
        for mc in [1, 2, 3] {
            let map = tpcw_map(4, mc);
            assert_eq!(map.min_copies(), mc);
            for g in 0..map.group_count() {
                assert_eq!(map.holders(g).len(), mc, "group {g} at min_copies {mc}");
            }
        }
    }

    #[test]
    fn min_copies_at_cluster_size_is_full_replication() {
        let map = tpcw_map(4, 4);
        assert!(map.is_full());
        for r in 0..4 {
            assert_eq!(map.filter_for(r), UpdateFilter::all());
        }
        let masks = map.type_masks(13);
        assert!(masks.iter().all(|row| row.iter().all(|b| *b)));
        // Over-asking clamps to the cluster size.
        let clamped = tpcw_map(4, 99);
        assert!(clamped.is_full());
    }

    #[test]
    fn partial_placement_filters_and_spreads() {
        let map = tpcw_map(8, 2);
        assert!(!map.is_full());
        let total: u64 = map.referenced.values().sum();
        let mut any_filtering = false;
        for r in 0..8 {
            let filter = map.filter_for(r);
            if filter.is_filtering() {
                any_filtering = true;
                for rel in map.held_relations(r) {
                    assert!(filter.accepts(*rel));
                }
                assert!(map.held_pages(r) < total, "filtering replica holds all");
            }
        }
        assert!(
            any_filtering,
            "8 replicas at 2 copies must filter somewhere"
        );
        // Partial replication stores strictly less than n full copies.
        let stored: u64 = (0..8).map(|r| map.held_pages(r)).sum();
        assert!(stored < 8 * total, "no storage saved: {stored}");
    }

    #[test]
    fn add_holder_widens_the_map() {
        let mut map = tpcw_map(8, 2);
        let g = 0;
        let outsider = (0..8)
            .find(|r| !map.holds_group(*r, g))
            .expect("partial placement has non-holders");
        let missing = map.missing_relations(outsider, g);
        assert!(map.add_holder(g, outsider));
        assert!(map.holds_group(outsider, g));
        for rel in &missing {
            assert!(map.holds(outsider, *rel), "backfilled relation not held");
        }
        assert!(!map.add_holder(g, outsider), "idempotent");
        assert_eq!(map.holders(g).len(), 3);
        assert!(map.missing_relations(outsider, g).is_empty());
        let sorted = map.holders(g).windows(2).all(|w| w[0] < w[1]);
        assert!(sorted, "holders stay sorted");
        // The wider held set can make the replica eligible for the group's
        // types.
        for t in &map.groups()[g].types {
            assert!(map.eligible(*t, outsider));
        }
    }

    #[test]
    fn remove_holder_narrows_but_keeps_overlap_held() {
        let mut map = tpcw_map(8, 2);
        let g = 0;
        let outsider = (0..8)
            .find(|r| !map.holds_group(*r, g))
            .expect("partial placement has non-holders");
        map.add_holder(g, outsider);
        assert!(map.remove_holder(g, outsider));
        assert!(!map.holds_group(outsider, g));
        assert_eq!(map.holders(g).len(), 2);
        assert!(!map.remove_holder(g, outsider), "idempotent");
        // Held is exactly the union over the remaining groups: relations
        // shared with another held group stay, group-exclusive ones go.
        let mut expect = BTreeSet::new();
        for (og, group) in map.groups().iter().enumerate() {
            if map.holds_group(outsider, og) {
                expect.extend(group.relations.iter().copied());
            }
        }
        assert_eq!(*map.held_relations(outsider), expect);
    }

    #[test]
    fn pending_backfill_blocks_eligibility_until_complete() {
        let mut map = tpcw_map(8, 2);
        // A non-holder that actually misses some of the group's relations
        // (overlap through other groups can make a copy free).
        let (g, outsider, missing) = (0..map.group_count())
            .flat_map(|g| (0..8).map(move |r| (g, r)))
            .filter(|(g, r)| !map.holds_group(*r, *g))
            .map(|(g, r)| (g, r, map.missing_relations(r, g)))
            .find(|(_, _, missing)| !missing.is_empty())
            .expect("some non-holder misses relations of some group");
        map.add_holder(g, outsider);
        map.mark_pending(outsider, &missing);
        // Held (the filter must accept propagation) but not eligible.
        for rel in &missing {
            assert!(map.holds(outsider, *rel));
            assert!(map.filter_for(outsider).accepts(*rel));
        }
        for t in &map.groups()[g].types.clone() {
            assert!(!map.eligible(*t, outsider), "pending holder dispatched");
        }
        let masks = map.type_masks(13);
        for t in &map.groups()[g].types {
            assert!(!masks[t.0 as usize][outsider]);
        }
        map.complete_backfill(outsider, &missing);
        assert!(map.pending_relations(outsider).is_empty());
        for t in &map.groups()[g].types {
            assert!(map.eligible(*t, outsider), "completed holder stays barred");
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let a = tpcw_map(8, 2);
        let b = tpcw_map(8, 2);
        for g in 0..a.group_count() {
            assert_eq!(a.holders(g), b.holders(g));
        }
    }

    #[test]
    fn unreferenced_relations_count_as_held_everywhere() {
        let map = tpcw_map(8, 2);
        // Fabricate an id beyond the catalog range: no group references it.
        let ghost = RelationId(10_000);
        for r in 0..8 {
            assert!(map.holds(r, ghost));
        }
    }

    fn tpcw_cert_map(max_groups: usize) -> CertMap {
        let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        CertMap::build(&workload, max_groups)
    }

    #[test]
    fn cert_map_is_a_total_single_owner_function() {
        let cert = tpcw_cert_map(8);
        assert!(cert.group_count() >= 2, "TPC-W must shard into >1 group");
        assert!(cert.group_count() <= MAX_CERT_GROUPS);
        for g in cert.owner.values() {
            assert!(*g < cert.group_count());
        }
        // Unreferenced relations fall to group 0.
        assert_eq!(cert.group_of_rel(RelationId(10_000)), 0);
    }

    #[test]
    fn cert_map_degenerates_to_one_group() {
        let cert = tpcw_cert_map(1);
        assert_eq!(cert.group_count(), 1);
        let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        use tashkent_engine::{Snapshot, TxnId, Version, WritesetItem};
        for rel in 0..workload.catalog.len() as u32 {
            assert_eq!(cert.group_of_rel(RelationId(rel)), 0);
        }
        let ws = Writeset::new(
            TxnId(1),
            TxnTypeId(0),
            Snapshot::at(Version(0)),
            vec![WritesetItem {
                rel: RelationId(3),
                row: 9,
            }],
        );
        assert_eq!(cert.mask_for(&ws), 1);
        let empty = Writeset::new(TxnId(2), TxnTypeId(0), Snapshot::at(Version(0)), Vec::new());
        assert_eq!(empty.items.len(), 0);
        assert_eq!(cert.mask_for(&empty), 1, "empty writesets use group 0");
    }

    #[test]
    fn cert_masks_cover_every_type_and_are_deterministic() {
        let (workload, _) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let a = CertMap::build(&workload, 8);
        let b = CertMap::build(&workload, 8);
        assert_eq!(a.group_count(), b.group_count());
        let mut union = 0u64;
        for rel in &a.owner {
            assert_eq!(Some(rel.1), b.owner.get(rel.0));
            union |= 1 << *rel.1;
        }
        assert_eq!(
            union.count_ones() as usize,
            a.group_count(),
            "every group must own at least one relation"
        );
    }
}
