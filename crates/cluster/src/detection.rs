//! The `detection` scenario: suspicion-based failure detection under a
//! transient control-link partition and a real crash, without the
//! omniscient fault oracle.
//!
//! The paper's balancer must route around failed replicas, but a real
//! deployment only ever *infers* failure from missed heartbeats — and pays
//! for wrong inferences. This scenario exercises both sides of that
//! trade-off in one run, with the heartbeat detector on (so no handler acts
//! on oracle crash knowledge):
//!
//! 1. after a steady-state eighth of the measured window, the tail
//!    replica's control link partitions ([`Ev::LinkPartition`]) — it stays
//!    up, serving reads, but heartbeats, certification traffic, and
//!    propagation drop. The detector walks it `Live → Suspected`, retries
//!    its in-flight work on survivors, and — because the link heals before
//!    the dead threshold — re-trusts it with a cheap filter-widen and
//!    **zero** re-replication bytes;
//! 2. at the window midpoint, replica 0 really crashes. No oracle notifies
//!    the balancer: clients bridge the detection window with
//!    connection-refused retries under capped exponential backoff, the
//!    detector walks the victim through *Suspected* to *Dead*, and recovery
//!    replays a `checkpoint_lag`-deep redo window from the certifier log
//!    before heartbeats answer again and trust is restored.
//!
//! Timings derive from [`ScenarioKnobs`] like every other scenario, and the
//! injections are plain events, so both drivers observe identical failure
//! timing — the cross-driver equivalence suite runs this scenario too,
//! fault log (with detection latencies) included.

use tashkent_sim::SimTime;
use tashkent_workloads::tpcw::{self, TpcwScale};

use crate::config::PolicySpec;
use crate::events::{Ev, CONTROL_NODE};
use crate::experiment::{Experiment, Scenario, ScenarioKnobs};

/// When each injection of a [`Detection`] run fires — shared between the
/// experiment builder, the tests asserting detector behaviour, and the
/// `fig_detection` bench annotating its sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionSchedule {
    /// Control-link partition instant (the false-suspicion injection).
    pub partition_at_secs: u64,
    /// Partition heal instant, absolute milliseconds — early enough that
    /// the default detector suspects but never declares the victim dead.
    pub heal_at_ms: u64,
    /// Real crash instant.
    pub crash_at_secs: u64,
    /// Recovery instant (checkpoint-lag replay starts here).
    pub recover_at_secs: u64,
}

/// Heartbeat detection under a transient partition and a real crash, on the
/// TPC-W ordering mix — update-heavy, so dropped certification traffic and
/// the redo window both carry real weight.
pub struct Detection {
    /// Database scale.
    pub scale: TpcwScale,
}

/// Heartbeat period the scenario runs when the knobs leave it unset, µs.
pub const DEFAULT_HEARTBEAT_US: u64 = 500_000;
/// Client request timeout the scenario runs when the knobs leave it unset.
pub const DEFAULT_CLIENT_TIMEOUT_US: u64 = 3_000_000;
/// Checkpoint lag the scenario runs when the knobs leave it unset.
pub const DEFAULT_CHECKPOINT_LAG: u64 = 32;

impl Default for Detection {
    fn default() -> Self {
        Detection {
            scale: TpcwScale::Small,
        }
    }
}

impl Detection {
    /// The injection schedule these knobs imply: partition after a
    /// steady-state eighth, heal 2 s later (under the default detector
    /// that is past the suspect threshold, short of the dead one), crash
    /// at the midpoint, recover one downtime-eighth later.
    pub fn schedule(knobs: &ScenarioKnobs) -> DetectionSchedule {
        let partition_at_secs = knobs.warmup_secs + (knobs.measured_secs / 8).max(1);
        let crash_at_secs = knobs.warmup_secs + knobs.measured_secs / 2;
        DetectionSchedule {
            partition_at_secs,
            heal_at_ms: partition_at_secs * 1_000 + 2_000,
            crash_at_secs,
            recover_at_secs: crash_at_secs + (knobs.measured_secs / 8).max(2),
        }
    }

    /// The partitioned replica at a given scale: the tail of the cluster.
    pub fn partition_victim(replicas: usize) -> usize {
        replicas.saturating_sub(1)
    }

    /// The crashed replica: the head of the cluster (never the partition
    /// victim, so the two faults stay independent).
    pub fn crash_victim() -> usize {
        0
    }
}

impl Scenario for Detection {
    fn name(&self) -> &'static str {
        "detection"
    }

    fn summary(&self) -> &'static str {
        "heartbeat suspicion under a control-link partition + a real crash; no fault oracle"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, mix) = tpcw::workload_with_mix(self.scale, "ordering");
        let mut config = knobs.config(PolicySpec::malb_sc());
        // The scenario is about the detector: force it (and its companion
        // knobs) on unless the caller chose explicit values.
        if knobs.heartbeat_period_us.is_none() {
            config.heartbeat_period_us = DEFAULT_HEARTBEAT_US;
        }
        if knobs.client_timeout_us.is_none() {
            config.client_timeout_us = DEFAULT_CLIENT_TIMEOUT_US;
        }
        if knobs.checkpoint_lag.is_none() {
            config.checkpoint_lag = DEFAULT_CHECKPOINT_LAG;
        }
        let sched = Self::schedule(knobs);
        let mut exp = Experiment::new(config, workload, mix)
            .with_window(knobs.warmup_secs, knobs.measured_secs)
            .with_driver(knobs.driver);
        // Both injections need a survivor; a single-replica cluster gets
        // neither (nothing to route around).
        if knobs.replicas >= 2 {
            exp = exp
                .with_injection(
                    SimTime::from_secs(sched.partition_at_secs),
                    Ev::LinkPartition {
                        a: CONTROL_NODE,
                        b: Self::partition_victim(knobs.replicas),
                        heal_at: SimTime::from_millis(sched.heal_at_ms),
                    },
                )
                .with_injection(
                    SimTime::from_secs(sched.crash_at_secs),
                    Ev::ReplicaCrash {
                        replica: Self::crash_victim(),
                    },
                )
                .with_injection(
                    SimTime::from_secs(sched.recover_at_secs),
                    Ev::ReplicaRecover {
                        replica: Self::crash_victim(),
                    },
                );
        }
        exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FaultKind;

    #[test]
    fn schedule_orders_partition_heal_crash_recover() {
        let knobs = ScenarioKnobs::smoke();
        let s = Detection::schedule(&knobs);
        assert!(knobs.warmup_secs < s.partition_at_secs);
        assert!(s.partition_at_secs * 1_000 < s.heal_at_ms);
        assert!(s.heal_at_ms < s.crash_at_secs * 1_000);
        assert!(s.crash_at_secs < s.recover_at_secs);
        assert!(s.recover_at_secs < knobs.warmup_secs + knobs.measured_secs);
    }

    #[test]
    fn experiment_forces_the_detector_on() {
        let knobs = ScenarioKnobs::smoke();
        let exp = Detection::default().experiment(&knobs);
        assert_eq!(exp.config.heartbeat_period_us, DEFAULT_HEARTBEAT_US);
        assert_eq!(exp.config.client_timeout_us, DEFAULT_CLIENT_TIMEOUT_US);
        assert_eq!(exp.config.checkpoint_lag, DEFAULT_CHECKPOINT_LAG);
        assert_eq!(exp.injections.len(), 3, "partition + crash + recover");
        // Knob overrides win over the scenario's defaults.
        let tuned = Detection::default().experiment(
            &ScenarioKnobs::smoke()
                .with_heartbeat(Some(250_000))
                .with_checkpoint_lag(Some(0))
                .with_client_timeout(Some(0)),
        );
        assert_eq!(tuned.config.heartbeat_period_us, 250_000);
        assert_eq!(tuned.config.checkpoint_lag, 0);
        assert_eq!(tuned.config.client_timeout_us, 0);
    }

    #[test]
    fn smoke_run_detects_both_faults_without_an_oracle() {
        let knobs = ScenarioKnobs::smoke();
        let r = Detection::default()
            .run(&knobs)
            .expect("detection run completes");
        assert!(r.committed > 0, "cluster kept serving throughout");
        let kinds: Vec<FaultKind> = r.faults.iter().map(|f| f.kind).collect();
        let pv = Detection::partition_victim(knobs.replicas);
        let cv = Detection::crash_victim();
        // False suspicion: suspected during the partition, trusted after
        // heal, never declared dead.
        assert!(kinds.contains(&FaultKind::ReplicaSuspected(pv)));
        assert!(kinds.contains(&FaultKind::ReplicaTrusted(pv)));
        assert!(!kinds.contains(&FaultKind::ReplicaDead(pv)));
        // Real crash: the detector walks it to Dead and re-trusts it only
        // after recovery replay.
        assert!(kinds.contains(&FaultKind::ReplicaCrash(cv)));
        assert!(kinds.contains(&FaultKind::ReplicaDead(cv)));
        assert!(kinds.contains(&FaultKind::ReplicaTrusted(cv)));
        // Detection latency is observable: the suspicion records when the
        // partition was injected, strictly before it was detected.
        let s = Detection::schedule(&knobs);
        let suspect = r
            .faults
            .iter()
            .find(|f| f.kind == FaultKind::ReplicaSuspected(pv))
            .expect("suspicion recorded");
        assert_eq!(suspect.injected_at, SimTime::from_secs(s.partition_at_secs));
        assert!(suspect.at > suspect.injected_at);
        assert!(suspect.detection_latency_us() > 0);
        // Checkpoint-lag recovery replayed a real redo window.
        assert!(r.redo_bytes > 0, "redo window shipped bytes");
        assert!(r.redo_us > 0, "redo replay took time");
    }
}
