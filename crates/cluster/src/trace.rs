//! Deterministic run tracing: transaction lifecycle spans, per-replica
//! utilization timelines, and exportable trace artifacts.
//!
//! The [`Tracer`] records structured, simulated-time-stamped [`TraceEvent`]s
//! for every transaction's lifecycle (arrive → dispatch → execute steps →
//! certify → complete/abort/retry), periodic per-replica utilization
//! samples, and instant events for faults, balancer reconfigurations,
//! rebalance ticks, and backfill progress. Every emission site sits on the
//! coordinator's deterministic event order: handlers invoked through
//! [`crate::state::ClusterState::handle`] emit directly, while the one
//! worker-executed path — [`crate::components::ClusterNode::step_child`]
//! under the parallel driver — buffers its events on the node and the merge
//! replays them at the step's exact sequential pop slot. The full trace is
//! therefore **byte-equal across drivers**: a far finer-grained equivalence
//! oracle than the [`crate::metrics::RunResult`] fingerprint, and
//! `tests/trace_equivalence.rs` enforces it as its own test axis.
//!
//! Two exporters serialize the ring buffer: [`Tracer::export_jsonl`]
//! (schema-stable JSON Lines, one event per line, closed by a `summary`
//! trailer) and [`Tracer::export_chrome`] (Chrome `trace_event` JSON —
//! lifecycle slices per replica/cert-group track, utilization counters,
//! instant markers — viewable in `chrome://tracing` or Perfetto). The
//! buffer is capped at [`TraceConfig::max_events`]; overflow drops the
//! *oldest* events and the drop count is surfaced in the summary trailer
//! and [`TraceSummary`] — never silent truncation. Tracing is disabled by
//! default and every emission is gated on [`Tracer::on`], so an untraced
//! run pays only a branch per site.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use tashkent_sim::SimTime;

/// Number of distinct [`TraceData`] kinds (indexes [`KIND_NAMES`]).
pub const NKINDS: usize = 17;

/// JSONL `"k"` tag per [`TraceData`] kind, indexed by [`TraceData::kind`].
pub const KIND_NAMES: [&str; NKINDS] = [
    "arrive",
    "dispatch",
    "step",
    "certify",
    "complete",
    "gaveup",
    "util",
    "fault",
    "lb",
    "rebalance",
    "backfill_chunk",
    "backfill_done",
    "suspect",
    "unsuspect",
    "heartbeat_miss",
    "redo_start",
    "redo_done",
];

/// What to trace and where to write it. Carried on
/// [`crate::config::ClusterConfig::trace`]; tracing is enabled exactly when
/// at least one output path is set.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// JSON Lines output path (one event object per line plus a `summary`
    /// trailer). `None` disables the JSONL exporter.
    pub jsonl_path: Option<String>,
    /// Chrome `trace_event` JSON output path (open in `chrome://tracing` or
    /// Perfetto). `None` disables the Chrome exporter.
    pub chrome_path: Option<String>,
    /// Ring-buffer capacity: when the run emits more events, the oldest are
    /// dropped and the drop count is surfaced in the summary trailer.
    pub max_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            jsonl_path: None,
            chrome_path: None,
            max_events: 1_000_000,
        }
    }
}

impl TraceConfig {
    /// Whether any exporter is configured (tracing records only then).
    pub fn enabled(&self) -> bool {
        self.jsonl_path.is_some() || self.chrome_path.is_some()
    }
}

/// One structured trace event payload. The variants mirror the JSONL
/// schema (see the README's Observability section for the field table).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceData {
    /// A transaction instance was submitted (fresh arrival, client retry
    /// after an abort, or re-dispatch after a crash orphaned it).
    Arrive {
        /// Transaction id (fresh per submission — retries get new ids).
        txn: u64,
        /// Closed-loop client index.
        client: usize,
        /// Workload transaction-type id.
        txn_type: u32,
        /// Human-readable type name (escaped by the exporters).
        type_name: String,
        /// Retry count so far (0 for a fresh arrival).
        retries: u32,
    },
    /// The balancer routed the transaction to a replica.
    Dispatch {
        /// Transaction id.
        txn: u64,
        /// Chosen replica.
        replica: usize,
    },
    /// One execution quantum on a replica.
    Step {
        /// Transaction id.
        txn: u64,
        /// Executing replica.
        replica: usize,
        /// `"exec"` (more quanta follow), `"done"` (read-only completion),
        /// or `"cert"` (writeset ready, certification request sent).
        outcome: &'static str,
        /// Timestamp (µs) of the follow-up event this step scheduled.
        next_at: u64,
        /// Writeset bytes when `outcome == "cert"`, else 0.
        ws_bytes: u64,
    },
    /// The certifier's decision for one request.
    Certify {
        /// Transaction id.
        txn: u64,
        /// Touched-group bitmask (0 under unified certification).
        groups: u64,
        /// Committed (`version` set) or conflict-aborted.
        committed: bool,
        /// Global commit version when committed.
        version: Option<u64>,
    },
    /// The transaction left the cluster: committed or abort-returned.
    Complete {
        /// Transaction id.
        txn: u64,
        /// Origin replica.
        replica: usize,
        /// Whether it committed (aborts go back to the client for retry).
        committed: bool,
        /// Client-perceived response time, µs (arrival → response).
        response_us: u64,
    },
    /// A transaction exhausted its retries and was abandoned.
    GaveUp {
        /// Transaction id of the final failed attempt.
        txn: u64,
        /// The abandoning client.
        client: usize,
    },
    /// Periodic per-replica utilization sample (1 s cadence).
    Util {
        /// Sampled replica.
        replica: usize,
        /// Smoothed CPU busy fraction from the load daemon.
        cpu: f64,
        /// Smoothed disk busy fraction from the load daemon.
        disk: f64,
        /// Admission (Gatekeeper) queue depth, running + queued.
        queue: usize,
        /// Resident buffer-pool bytes (working-set / memory estimate).
        resident_bytes: u64,
        /// Bytes shipped so far by in-flight backfills onto this replica.
        backfill_bytes: u64,
    },
    /// A fault took effect (crash, recovery, certifier failover, holder
    /// shrink).
    Fault {
        /// Human-readable description (escaped by the exporters).
        desc: String,
    },
    /// A balancer reconfiguration tick ran.
    Lb {
        /// Update filters the tick asked to install.
        filters: usize,
        /// MALB replica moves the tick performed.
        moves: usize,
    },
    /// A skew-driven rebalance tick ran.
    Rebalance {
        /// `Some((group, from, to))` when the tick started a migration.
        migration: Option<(usize, usize, usize)>,
    },
    /// One bandwidth-capped backfill chunk shipped.
    BackfillChunk {
        /// Backfill task index.
        task: usize,
        /// Bytes this chunk shipped.
        bytes: u64,
    },
    /// A backfill completed; its target became dispatch-eligible.
    BackfillDone {
        /// Backfill task index.
        task: usize,
        /// Relation group copied.
        group: usize,
        /// The replica that became a holder.
        to: usize,
        /// Total bytes the task shipped.
        bytes: u64,
    },
    /// The failure detector suspected a replica: it leaves dispatch and its
    /// in-flight transactions are retried on survivors.
    Suspect {
        /// The suspected replica.
        replica: usize,
        /// Consecutive missed heartbeats at the transition.
        misses: u32,
    },
    /// A suspected (or dead-declared) replica answered a heartbeat again
    /// and was restored to dispatch via a filter-widen.
    Unsuspect {
        /// The re-trusted replica.
        replica: usize,
    },
    /// A heartbeat went unanswered without (yet) changing the replica's
    /// detector state.
    HeartbeatMiss {
        /// The unresponsive replica.
        replica: usize,
        /// Consecutive misses so far.
        misses: u32,
    },
    /// A recovering replica started replaying its redo window from the
    /// certifier log (checkpoint-lag recovery).
    RedoStart {
        /// The recovering replica.
        replica: usize,
        /// Version the replica rewound to (`applied − k`).
        from: u64,
        /// Certifier log head it must replay up to.
        head: u64,
    },
    /// A recovering replica finished its redo replay.
    RedoDone {
        /// The recovered replica.
        replica: usize,
        /// Bytes the replay shipped.
        bytes: u64,
        /// Simulated replay duration, µs.
        us: u64,
    },
}

impl TraceData {
    /// Kind index into [`KIND_NAMES`] and the per-kind counters.
    pub fn kind(&self) -> usize {
        match self {
            TraceData::Arrive { .. } => 0,
            TraceData::Dispatch { .. } => 1,
            TraceData::Step { .. } => 2,
            TraceData::Certify { .. } => 3,
            TraceData::Complete { .. } => 4,
            TraceData::GaveUp { .. } => 5,
            TraceData::Util { .. } => 6,
            TraceData::Fault { .. } => 7,
            TraceData::Lb { .. } => 8,
            TraceData::Rebalance { .. } => 9,
            TraceData::BackfillChunk { .. } => 10,
            TraceData::BackfillDone { .. } => 11,
            TraceData::Suspect { .. } => 12,
            TraceData::Unsuspect { .. } => 13,
            TraceData::HeartbeatMiss { .. } => 14,
            TraceData::RedoStart { .. } => 15,
            TraceData::RedoDone { .. } => 16,
        }
    }

    /// The kind's JSONL `"k"` tag.
    pub fn kind_name(&self) -> &'static str {
        KIND_NAMES[self.kind()]
    }
}

/// One recorded event: a simulated timestamp plus the structured payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Structured payload.
    pub data: TraceData,
}

/// Event counts for a run, attached to
/// [`crate::metrics::RunResult::trace_summary`]. Like `driver_stats`, it
/// describes the observation of the run rather than its outcome and is
/// excluded from cross-driver equivalence fingerprints (the trace *bytes*
/// have their own, stricter, equality axis).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Total events emitted, including any later dropped by the ring cap.
    pub emitted: u64,
    /// Events retained in the buffer at run end.
    pub recorded: u64,
    /// Events the ring cap dropped (oldest first); 0 means the trace is
    /// complete.
    pub dropped: u64,
    /// Per-kind emission counts, `(kind name, count)`, nonzero kinds only.
    pub by_kind: Vec<(&'static str, u64)>,
}

/// Records trace events into a bounded ring buffer and serializes them.
///
/// Owned by [`crate::state::ClusterState`]; disabled tracers reject every
/// emission at a single branch ([`Tracer::on`]), so instrumentation sites
/// cost nothing measurable on untraced runs.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    max_events: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    counts: [u64; NKINDS],
}

impl Tracer {
    /// Builds a tracer for the given config (enabled exactly when an
    /// exporter path is configured).
    pub fn new(config: &TraceConfig) -> Self {
        Tracer {
            enabled: config.enabled(),
            max_events: config.max_events.max(1),
            events: VecDeque::new(),
            dropped: 0,
            counts: [0; NKINDS],
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Self::new(&TraceConfig::default())
    }

    /// Whether the tracer records events. Instrumentation sites guard any
    /// non-trivial payload construction on this.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled). When the ring is full the
    /// oldest event is dropped and counted.
    #[inline]
    pub fn emit(&mut self, at: SimTime, data: TraceData) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent { at, data });
    }

    fn push(&mut self, ev: TraceEvent) {
        self.counts[ev.data.kind()] += 1;
        if self.events.len() >= self.max_events {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Appends events buffered elsewhere (a worker-executed shard's step
    /// events, replayed by the merge at their exact sequential pop slots).
    pub fn replay(&mut self, events: Vec<TraceEvent>) {
        if !self.enabled {
            return;
        }
        for ev in events {
            self.push(ev);
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events the ring cap has dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Summarizes emission counts and drops, for
    /// [`crate::metrics::RunResult::trace_summary`]. `None` when disabled.
    pub fn summary(&self) -> Option<TraceSummary> {
        if !self.enabled {
            return None;
        }
        Some(TraceSummary {
            emitted: self.counts.iter().sum(),
            recorded: self.events.len() as u64,
            dropped: self.dropped,
            by_kind: KIND_NAMES
                .iter()
                .zip(self.counts.iter())
                .filter(|(_, c)| **c > 0)
                .map(|(n, c)| (*n, *c))
                .collect(),
        })
    }

    /// Serializes the buffer as JSON Lines: one event object per line in
    /// recording order, closed by a `{"k":"summary",...}` trailer carrying
    /// the emitted/recorded/dropped counts (so consumers can detect ring
    /// truncation without counting lines).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64 + 128);
        for ev in &self.events {
            write_jsonl(ev, &mut out);
        }
        let _ = writeln!(
            out,
            "{{\"k\":\"summary\",\"events\":{},\"recorded\":{},\"dropped\":{}}}",
            self.counts.iter().sum::<u64>(),
            self.events.len(),
            self.dropped
        );
        out
    }

    /// Serializes the buffer as Chrome `trace_event` JSON (the object
    /// format, `{"traceEvents":[...]}`): transaction lifecycle slices
    /// (`ph:"X"`) on one track per replica (pid 1) and per certifier group
    /// (pid 2), utilization counters (`ph:"C"`), and instant markers
    /// (`ph:"i"`). Timestamps are simulated microseconds. Spans whose
    /// start fell off the ring are dropped from the view (the JSONL
    /// trailer still accounts for them).
    pub fn export_chrome(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(line);
        };
        push(
            &mut out,
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"replicas\"}}",
        );
        push(
            &mut out,
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,\"args\":{\"name\":\"certifier groups\"}}",
        );
        // Pair lifecycle endpoints at export time: dispatch → complete makes
        // the replica-track slice; the certify-send step → certify decision
        // makes the certifier-track slice.
        let mut names: HashMap<u64, String> = HashMap::new();
        let mut dispatched: HashMap<u64, (SimTime, usize)> = HashMap::new();
        let mut cert_sent: HashMap<u64, SimTime> = HashMap::new();
        for ev in &self.events {
            let ts = ev.at.as_micros();
            match &ev.data {
                TraceData::Arrive { txn, type_name, .. } => {
                    names.insert(*txn, json_escape(type_name));
                }
                TraceData::Dispatch { txn, replica } => {
                    dispatched.insert(*txn, (ev.at, *replica));
                }
                TraceData::Step { txn, outcome, .. } if *outcome == "cert" => {
                    cert_sent.insert(*txn, ev.at);
                }
                TraceData::Certify {
                    txn,
                    groups,
                    committed,
                    ..
                } => {
                    if let Some(sent) = cert_sent.remove(txn) {
                        let tid = if *groups == 0 {
                            0
                        } else {
                            groups.trailing_zeros() as usize
                        };
                        let name = names.get(txn).map_or("txn", String::as_str);
                        push(
                            &mut out,
                            &format!(
                                "{{\"ph\":\"X\",\"name\":\"certify {name}\",\"cat\":\"certify\",\
                                 \"pid\":2,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"txn\":{txn},\"committed\":{committed}}}}}",
                                sent.as_micros(),
                                ts.saturating_sub(sent.as_micros()).max(1),
                            ),
                        );
                    }
                }
                TraceData::Complete {
                    txn,
                    replica,
                    committed,
                    ..
                } => {
                    if let Some((start, _)) = dispatched.remove(txn) {
                        let name = names.get(txn).map_or("txn", String::as_str);
                        push(
                            &mut out,
                            &format!(
                                "{{\"ph\":\"X\",\"name\":\"{name}\",\"cat\":\"txn\",\
                                 \"pid\":1,\"tid\":{replica},\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"txn\":{txn},\"committed\":{committed}}}}}",
                                start.as_micros(),
                                ts.saturating_sub(start.as_micros()).max(1),
                            ),
                        );
                    }
                }
                TraceData::Util {
                    replica,
                    cpu,
                    disk,
                    queue,
                    resident_bytes,
                    backfill_bytes,
                } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"C\",\"name\":\"util r{replica}\",\"pid\":1,\
                             \"tid\":{replica},\"ts\":{ts},\
                             \"args\":{{\"cpu\":{cpu:.6},\"disk\":{disk:.6}}}}}"
                        ),
                    );
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"C\",\"name\":\"mem r{replica}\",\"pid\":1,\
                             \"tid\":{replica},\"ts\":{ts},\
                             \"args\":{{\"resident\":{resident_bytes},\
                             \"backfill\":{backfill_bytes},\"queue\":{queue}}}}}"
                        ),
                    );
                }
                TraceData::Fault { desc } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"{}\",\"cat\":\"fault\",\
                             \"pid\":1,\"tid\":0,\"ts\":{ts}}}",
                            json_escape(desc)
                        ),
                    );
                }
                TraceData::Lb { filters, moves } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"lb tick \
                             ({filters} filters, {moves} moves)\",\"cat\":\"lb\",\
                             \"pid\":1,\"tid\":0,\"ts\":{ts}}}"
                        ),
                    );
                }
                TraceData::Rebalance { migration } => {
                    let name = match migration {
                        Some((g, from, to)) => {
                            format!("migrate g{g} r{from}->r{to}")
                        }
                        None => "rebalance tick".to_string(),
                    };
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"{name}\",\
                             \"cat\":\"rebalance\",\"pid\":1,\"tid\":0,\"ts\":{ts}}}"
                        ),
                    );
                }
                TraceData::BackfillDone {
                    task,
                    group,
                    to,
                    bytes,
                } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"backfill {task} done \
                             (g{group} -> r{to}, {bytes} B)\",\"cat\":\"backfill\",\
                             \"pid\":1,\"tid\":0,\"ts\":{ts}}}"
                        ),
                    );
                }
                TraceData::Suspect { replica, misses } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"suspect r{replica} \
                             ({misses} misses)\",\"cat\":\"detector\",\
                             \"pid\":1,\"tid\":{replica},\"ts\":{ts}}}"
                        ),
                    );
                }
                TraceData::Unsuspect { replica } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"trust r{replica}\",\
                             \"cat\":\"detector\",\"pid\":1,\"tid\":{replica},\"ts\":{ts}}}"
                        ),
                    );
                }
                TraceData::RedoStart {
                    replica,
                    from,
                    head,
                } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"redo r{replica} \
                             v{from}->v{head}\",\"cat\":\"redo\",\
                             \"pid\":1,\"tid\":{replica},\"ts\":{ts}}}"
                        ),
                    );
                }
                TraceData::RedoDone { replica, bytes, us } => {
                    push(
                        &mut out,
                        &format!(
                            "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"redo r{replica} done \
                             ({bytes} B, {us} us)\",\"cat\":\"redo\",\
                             \"pid\":1,\"tid\":{replica},\"ts\":{ts}}}"
                        ),
                    );
                }
                // Per-quantum steps, per-chunk shipping, abandoned clients,
                // per-round heartbeat misses: visible in the JSONL stream,
                // too dense for the slice view.
                TraceData::Step { .. }
                | TraceData::BackfillChunk { .. }
                | TraceData::GaveUp { .. }
                | TraceData::HeartbeatMiss { .. } => {}
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Serializes one event as a JSONL line into `out`.
fn write_jsonl(ev: &TraceEvent, out: &mut String) {
    let t = ev.at.as_micros();
    let k = ev.data.kind_name();
    let _ = match &ev.data {
        TraceData::Arrive {
            txn,
            client,
            txn_type,
            type_name,
            retries,
        } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"client\":{client},\
             \"ty\":{txn_type},\"name\":\"{}\",\"retries\":{retries}}}",
            json_escape(type_name)
        ),
        TraceData::Dispatch { txn, replica } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"replica\":{replica}}}"
        ),
        TraceData::Step {
            txn,
            replica,
            outcome,
            next_at,
            ws_bytes,
        } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"replica\":{replica},\
             \"outcome\":\"{outcome}\",\"next\":{next_at},\"ws\":{ws_bytes}}}"
        ),
        TraceData::Certify {
            txn,
            groups,
            committed,
            version,
        } => match version {
            Some(v) => writeln!(
                out,
                "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"groups\":{groups},\
                 \"committed\":{committed},\"version\":{v}}}"
            ),
            None => writeln!(
                out,
                "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"groups\":{groups},\
                 \"committed\":{committed}}}"
            ),
        },
        TraceData::Complete {
            txn,
            replica,
            committed,
            response_us,
        } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"replica\":{replica},\
             \"committed\":{committed},\"resp_us\":{response_us}}}"
        ),
        TraceData::GaveUp { txn, client } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"txn\":{txn},\"client\":{client}}}"
        ),
        TraceData::Util {
            replica,
            cpu,
            disk,
            queue,
            resident_bytes,
            backfill_bytes,
        } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"replica\":{replica},\"cpu\":{cpu:.6},\
             \"disk\":{disk:.6},\"queue\":{queue},\"resident\":{resident_bytes},\
             \"backfill\":{backfill_bytes}}}"
        ),
        TraceData::Fault { desc } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"desc\":\"{}\"}}",
            json_escape(desc)
        ),
        TraceData::Lb { filters, moves } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"filters\":{filters},\"moves\":{moves}}}"
        ),
        TraceData::Rebalance { migration } => match migration {
            Some((group, from, to)) => writeln!(
                out,
                "{{\"k\":\"{k}\",\"t\":{t},\"migrated\":true,\"group\":{group},\
                 \"from\":{from},\"to\":{to}}}"
            ),
            None => writeln!(out, "{{\"k\":\"{k}\",\"t\":{t},\"migrated\":false}}"),
        },
        TraceData::BackfillChunk { task, bytes } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"task\":{task},\"bytes\":{bytes}}}"
        ),
        TraceData::BackfillDone {
            task,
            group,
            to,
            bytes,
        } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"task\":{task},\"group\":{group},\
             \"to\":{to},\"bytes\":{bytes}}}"
        ),
        TraceData::Suspect { replica, misses } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"replica\":{replica},\"misses\":{misses}}}"
        ),
        TraceData::Unsuspect { replica } => {
            writeln!(out, "{{\"k\":\"{k}\",\"t\":{t},\"replica\":{replica}}}")
        }
        TraceData::HeartbeatMiss { replica, misses } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"replica\":{replica},\"misses\":{misses}}}"
        ),
        TraceData::RedoStart {
            replica,
            from,
            head,
        } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"replica\":{replica},\"from\":{from},\"head\":{head}}}"
        ),
        TraceData::RedoDone { replica, bytes, us } => writeln!(
            out,
            "{{\"k\":\"{k}\",\"t\":{t},\"replica\":{replica},\"bytes\":{bytes},\"us\":{us}}}"
        ),
    };
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_config(max_events: usize) -> TraceConfig {
        TraceConfig {
            jsonl_path: Some("/tmp/unused.jsonl".into()),
            chrome_path: None,
            max_events,
        }
    }

    fn step(txn: u64) -> TraceData {
        TraceData::Step {
            txn,
            replica: 0,
            outcome: "exec",
            next_at: 10,
            ws_bytes: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.on());
        t.emit(SimTime::from_micros(1), step(0));
        t.replay(vec![TraceEvent {
            at: SimTime::from_micros(2),
            data: step(1),
        }]);
        assert_eq!(t.events().count(), 0);
        assert!(t.summary().is_none());
    }

    #[test]
    fn ring_buffer_drops_oldest_and_accounts() {
        let mut t = Tracer::new(&enabled_config(3));
        for i in 0..5 {
            t.emit(SimTime::from_micros(i), step(i));
        }
        assert_eq!(t.events().count(), 3);
        assert_eq!(t.dropped(), 2);
        // The survivors are the newest three.
        let first = t.events().next().unwrap();
        assert_eq!(first.at, SimTime::from_micros(2));
        let s = t.summary().unwrap();
        assert_eq!(s.emitted, 5);
        assert_eq!(s.recorded, 3);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.by_kind, vec![("step", 5)]);
        // The JSONL trailer carries the same accounting.
        let jsonl = t.export_jsonl();
        let trailer = jsonl.lines().last().unwrap();
        assert_eq!(
            trailer,
            "{\"k\":\"summary\",\"events\":5,\"recorded\":3,\"dropped\":2}"
        );
        assert_eq!(jsonl.lines().count(), 4, "3 events + trailer");
    }

    #[test]
    fn jsonl_escapes_type_names_and_descs() {
        let mut t = Tracer::new(&enabled_config(16));
        t.emit(
            SimTime::from_micros(5),
            TraceData::Arrive {
                txn: 1,
                client: 2,
                txn_type: 3,
                type_name: "odd \"name\"\\with\n controls \u{1}".into(),
                retries: 0,
            },
        );
        t.emit(
            SimTime::from_micros(6),
            TraceData::Fault {
                desc: "crash \"r1\"".into(),
            },
        );
        let jsonl = t.export_jsonl();
        assert!(
            jsonl.contains("odd \\\"name\\\"\\\\with\\n controls \\u0001"),
            "escaped name missing: {jsonl}"
        );
        assert!(jsonl.contains("crash \\\"r1\\\""));
        // No raw control characters survive in the output.
        assert!(jsonl.chars().all(|c| c == '\n' || (c as u32) >= 0x20));
    }

    #[test]
    fn json_escape_passes_plain_text_through() {
        assert_eq!(json_escape("OrderStatus"), "OrderStatus");
        assert_eq!(json_escape("a\tb"), "a\\tb");
    }

    #[test]
    fn chrome_export_pairs_lifecycle_slices() {
        let mut t = Tracer::new(&enabled_config(64));
        t.emit(
            SimTime::from_micros(100),
            TraceData::Arrive {
                txn: 7,
                client: 0,
                txn_type: 2,
                type_name: "BuyConfirm".into(),
                retries: 0,
            },
        );
        t.emit(
            SimTime::from_micros(100),
            TraceData::Dispatch { txn: 7, replica: 1 },
        );
        t.emit(SimTime::from_micros(400), {
            TraceData::Step {
                txn: 7,
                replica: 1,
                outcome: "cert",
                next_at: 550,
                ws_bytes: 96,
            }
        });
        t.emit(
            SimTime::from_micros(900),
            TraceData::Certify {
                txn: 7,
                groups: 0b100,
                committed: true,
                version: Some(3),
            },
        );
        t.emit(
            SimTime::from_micros(1200),
            TraceData::Complete {
                txn: 7,
                replica: 1,
                committed: true,
                response_us: 1100,
            },
        );
        let chrome = t.export_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"name\":\"BuyConfirm\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"certify BuyConfirm\""));
        assert!(chrome.contains("\"pid\":2,\"tid\":2"), "cert group track");
        assert!(chrome.contains("\"dur\":1100"), "dispatch->complete slice");
        assert!(chrome.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn detector_kinds_export_and_count() {
        let mut t = Tracer::new(&enabled_config(64));
        t.emit(
            SimTime::from_micros(10),
            TraceData::HeartbeatMiss {
                replica: 2,
                misses: 1,
            },
        );
        t.emit(
            SimTime::from_micros(20),
            TraceData::Suspect {
                replica: 2,
                misses: 2,
            },
        );
        t.emit(
            SimTime::from_micros(30),
            TraceData::Unsuspect { replica: 2 },
        );
        t.emit(
            SimTime::from_micros(40),
            TraceData::RedoStart {
                replica: 2,
                from: 10,
                head: 42,
            },
        );
        t.emit(
            SimTime::from_micros(50),
            TraceData::RedoDone {
                replica: 2,
                bytes: 4096,
                us: 700,
            },
        );
        let jsonl = t.export_jsonl();
        assert!(jsonl.contains("{\"k\":\"heartbeat_miss\",\"t\":10,\"replica\":2,\"misses\":1}"));
        assert!(jsonl.contains("{\"k\":\"suspect\",\"t\":20,\"replica\":2,\"misses\":2}"));
        assert!(jsonl.contains("{\"k\":\"unsuspect\",\"t\":30,\"replica\":2}"));
        assert!(
            jsonl.contains("{\"k\":\"redo_start\",\"t\":40,\"replica\":2,\"from\":10,\"head\":42}")
        );
        assert!(jsonl
            .contains("{\"k\":\"redo_done\",\"t\":50,\"replica\":2,\"bytes\":4096,\"us\":700}"));
        let s = t.summary().unwrap();
        assert_eq!(
            s.by_kind,
            vec![
                ("suspect", 1),
                ("unsuspect", 1),
                ("heartbeat_miss", 1),
                ("redo_start", 1),
                ("redo_done", 1)
            ]
        );
        // Suspicion/redo instants show on the Chrome timeline; per-round
        // misses stay JSONL-only.
        let chrome = t.export_chrome();
        assert!(chrome.contains("suspect r2 (2 misses)"), "{chrome}");
        assert!(chrome.contains("trust r2"));
        assert!(chrome.contains("redo r2 v10->v42"));
        assert!(!chrome.contains("heartbeat_miss"));
    }

    #[test]
    fn summary_counts_every_kind() {
        let mut t = Tracer::new(&enabled_config(64));
        t.emit(
            SimTime::ZERO,
            TraceData::Lb {
                filters: 1,
                moves: 0,
            },
        );
        t.emit(SimTime::ZERO, TraceData::Rebalance { migration: None });
        t.emit(
            SimTime::ZERO,
            TraceData::BackfillChunk { task: 0, bytes: 64 },
        );
        let s = t.summary().unwrap();
        assert_eq!(s.emitted, 3);
        assert_eq!(
            s.by_kind,
            vec![("lb", 1), ("rebalance", 1), ("backfill_chunk", 1)]
        );
    }
}
